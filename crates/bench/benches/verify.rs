//! Eq. 3 knowledge-closure verification throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_core::algorithms::Algorithm;
use hbar_core::verify::is_barrier;
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(20);
    for p in [16usize, 64, 120] {
        let members: Vec<usize> = (0..p).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            group.bench_with_input(
                BenchmarkId::new(format!("p{p}"), alg.tag()),
                &sched,
                |b, sched| b.iter(|| black_box(is_barrier(black_box(sched)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
