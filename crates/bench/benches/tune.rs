//! Full adaptive-tuning latency from a stored profile.
//!
//! §VIII of the paper: "With a topological model ready, the generation
//! and evaluation of adapted patterns requires on the order of 0.1
//! seconds" — the figure that makes periodic re-tuning plausible. This
//! bench reports our equivalent number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_bench::baseline::tune_hybrid_costs_baseline;
use hbar_core::compose::{tune_hybrid, tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use std::hint::black_box;

fn bench_tune(c: &mut Criterion) {
    let mut group = c.benchmark_group("tune");
    group.sample_size(10);
    for (label, machine, p) in [
        ("clusterA-22", MachineSpec::dual_quad_cluster(3), 22usize),
        ("clusterA-64", MachineSpec::dual_quad_cluster(8), 64),
        ("clusterB-120", MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        for (cfg_label, cfg) in [
            ("paper-set", TunerConfig::default()),
            ("extended", TunerConfig::extended()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, cfg_label),
                &profile,
                |b, profile| b.iter(|| black_box(tune_hybrid(black_box(profile), &cfg))),
            );
        }
    }
    group.finish();
}

/// Rank scaling of the tuner, optimized vs the frozen pre-optimization
/// baseline (`hbar_bench::baseline`). The `tuner-perf` binary runs the
/// same comparison standalone and records it in `BENCH_tuner.json`.
///
/// The optimized tuner runs out to P = 1024 (the blocked-kernel target
/// scale); the frozen baseline stops at P = 256, so a full optimized tune
/// at 1024 can be read directly against the seed-era P = 256 wall time.
fn bench_tune_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tune_scaling");
    group.sample_size(10);
    for p in [16usize, 32, 64, 128, 256, 1024] {
        // Dual quad-core nodes like cluster A, but without its 8-node
        // cap so the sweep can reach 128 ranks.
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();
        let cfg = TunerConfig::default();
        if p <= 256 {
            group.bench_with_input(BenchmarkId::new("baseline", p), &profile, |b, profile| {
                b.iter(|| {
                    black_box(tune_hybrid_costs_baseline(
                        black_box(&profile.cost),
                        &members,
                        &cfg,
                    ))
                })
            });
        }
        // A long-lived evaluator, as the adaptive re-tuning loop holds
        // one: scratch arenas and the score memo stay warm across calls.
        let mut eval = CostEvaluator::new(cfg.cost_params);
        group.bench_with_input(BenchmarkId::new("optimized", p), &profile, |b, profile| {
            b.iter(|| {
                black_box(tune_hybrid_costs_with(
                    black_box(&profile.cost),
                    &members,
                    &cfg,
                    &mut eval,
                ))
            })
        });
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    use hbar_core::compose::{search_optimal_barrier, SearchConfig};
    let mut group = c.benchmark_group("exhaustive_search");
    group.sample_size(10);
    // p = 4 is the largest size where the complete search is interactive.
    let machine = MachineSpec::new(2, 1, 2);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let greedy = tune_hybrid(&profile, &TunerConfig::default());
    group.bench_function("p4-seeded", |b| {
        b.iter(|| {
            black_box(search_optimal_barrier(
                &profile.cost,
                &SearchConfig {
                    max_stages: 5,
                    ..SearchConfig::default()
                },
                Some(&greedy.schedule),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tune, bench_tune_scaling, bench_exhaustive);
criterion_main!(benches);
