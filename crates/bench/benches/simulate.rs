//! Simulator throughput: executing one barrier on the discrete-event
//! fabric (the cost of a single "measurement" in the figure harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_core::algorithms::Algorithm;
use hbar_simnet::barrier::measure_schedule;
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for (label, machine, p) in [
        ("clusterA-64", MachineSpec::dual_quad_cluster(8), 64usize),
        ("clusterB-120", MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let members: Vec<usize> = (0..p).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            // One world per benchmark: the engine arenas are reused across
            // iterations, which is the intended amortized usage pattern.
            let mut world = SimWorld::new(
                SimConfig::exact(machine.clone(), RankMapping::RoundRobin),
                p,
            );
            group.bench_with_input(BenchmarkId::new(label, alg.tag()), &sched, |b, sched| {
                b.iter(|| black_box(measure_schedule(&mut world, black_box(sched), 1)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
