//! Reworked simulation-engine microbenchmarks: raw event throughput on a
//! reused world, and the amortized profiling sweep that the §IV-A cost
//! matrices are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_core::algorithms::Algorithm;
use hbar_simnet::barrier::schedule_programs;
use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use std::hint::black_box;

/// Steady-state interpreter throughput: a many-round dissemination barrier
/// re-run on one world, so arenas, matching pools and the event queue are
/// all reused between iterations.
fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for p in [16usize, 64] {
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Dissemination.full_schedule(p, &members);
        let programs = schedule_programs(&sched, 50);
        let mut world = SimWorld::new(
            SimConfig {
                machine,
                mapping: RankMapping::RoundRobin,
                noise: NoiseModel::realistic(42),
            },
            p,
        );
        group.bench_with_input(
            BenchmarkId::new("dissemination-50r", p),
            &programs,
            |b, programs| b.iter(|| black_box(world.run(black_box(programs)).expect("runs"))),
        );
    }
    group.finish();
}

/// The full profiling sweep on the reduced schedule: the end-to-end path
/// the BENCH_simnet harness measures, at criterion-friendly size.
fn bench_profile_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_sweep");
    group.sample_size(10);
    let cfg = ProfilingConfig::fast();
    let noise = NoiseModel::realistic(42);
    let mapping = RankMapping::RoundRobin;
    for p in [8usize, 16] {
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        group.bench_with_input(BenchmarkId::new("fast", p), &machine, |b, machine| {
            b.iter(|| {
                black_box(measure_profile(
                    black_box(machine),
                    &mapping,
                    p,
                    noise,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_profile_sweep);
criterion_main!(benches);
