//! Algorithmic-model kernel scaling: Eq. 3 knowledge closure and SSS
//! clustering at P = 64/256/1024, optimized vs the frozen baseline
//! (`hbar_bench::baseline_model`). The `model-perf` binary runs the same
//! comparison standalone and records it in `BENCH_model.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_bench::baseline_model::{
    baseline_knowledge_closure, baseline_sss_clusters, BaselineBitMat,
};
use hbar_core::clustering::{try_sss_clusters_with, SssScratch, SSS_DEFAULT_SPARSENESS};
use hbar_matrix::{BoolMatrix, ClosureWorkspace};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::metric::DistanceMetric;
use hbar_topo::profile::TopologyProfile;
use std::hint::black_box;

const RANKS: [usize; 3] = [64, 256, 1024];

/// ⌈log₂ n⌉ dissemination stages; saturation only at the final stage.
fn dissemination(n: usize) -> Vec<BoolMatrix> {
    let mut stages = Vec::new();
    let mut step = 1;
    while step < n {
        let mut s = BoolMatrix::zeros(n);
        for i in 0..n {
            s.set(i, (i + step) % n, true);
        }
        stages.push(s);
        step *= 2;
    }
    stages
}

fn bench_closure_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_scaling");
    group.sample_size(10);
    for p in RANKS {
        let stages = dissemination(p);
        let base_stages: Vec<BaselineBitMat> =
            stages.iter().map(BaselineBitMat::from_matrix).collect();
        group.bench_with_input(BenchmarkId::new("baseline", p), &base_stages, |b, s| {
            b.iter(|| black_box(baseline_knowledge_closure(p, black_box(s))))
        });
        let mut ws = ClosureWorkspace::new();
        group.bench_with_input(BenchmarkId::new("optimized", p), &stages, |b, s| {
            b.iter(|| {
                black_box(ws.closure(p, black_box(s)));
            })
        });
    }
    group.finish();
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    for p in RANKS {
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let metric = DistanceMetric::from_costs(&profile.cost);
        let members: Vec<usize> = (0..p).collect();
        let dia = metric.diameter();
        group.bench_with_input(BenchmarkId::new("baseline", p), &metric, |b, m| {
            b.iter(|| {
                black_box(baseline_sss_clusters(
                    black_box(m),
                    &members,
                    SSS_DEFAULT_SPARSENESS,
                    dia,
                ))
            })
        });
        let mut scratch = SssScratch::default();
        group.bench_with_input(BenchmarkId::new("optimized", p), &metric, |b, m| {
            b.iter(|| {
                black_box(
                    try_sss_clusters_with(
                        black_box(m),
                        &members,
                        SSS_DEFAULT_SPARSENESS,
                        dia,
                        &mut scratch,
                    )
                    .expect("ground-truth metric is finite"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure_scaling, bench_cluster_scaling);
criterion_main!(benches);
