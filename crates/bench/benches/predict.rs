//! Cost-model evaluation throughput: predicting one barrier's execution
//! time from a profile (the inner loop of the tuner's greedy search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_core::algorithms::Algorithm;
use hbar_core::cost::{predict_barrier_cost, CostEvaluator, CostParams};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict");
    group.sample_size(20);
    for (label, machine, p) in [
        ("clusterA-64", MachineSpec::dual_quad_cluster(8), 64usize),
        ("clusterB-120", MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            group.bench_with_input(BenchmarkId::new(label, alg.tag()), &sched, |b, sched| {
                b.iter(|| {
                    black_box(predict_barrier_cost(
                        black_box(sched),
                        &profile.cost,
                        &params,
                        None,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// The zero-allocation evaluator against the reference predictor on the
/// same schedules: the steady-state cost of one prediction once the
/// scratch arenas and the compiled-stage cache are warm.
fn bench_predict_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_evaluator");
    group.sample_size(20);
    for (label, machine, p) in [
        ("clusterA-64", MachineSpec::dual_quad_cluster(8), 64usize),
        ("clusterB-120", MachineSpec::dual_hex_cluster(10), 120),
    ] {
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        let mut eval = CostEvaluator::new(params);
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            group.bench_with_input(BenchmarkId::new(label, alg.tag()), &sched, |b, sched| {
                b.iter(|| black_box(eval.barrier_cost(black_box(sched), &profile.cost, None)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_predict, bench_predict_evaluator);
criterion_main!(benches);
