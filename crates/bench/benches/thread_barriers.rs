//! Real-thread barrier execution on the host machine: generated
//! schedules vs classical shared-memory baselines.
//!
//! Thread counts are kept small: the benchmark box may have very few
//! cores, and oversubscribed spin barriers measure scheduler behaviour
//! rather than barrier structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbar_core::algorithms::Algorithm;
use hbar_core::codegen::compile_schedule;
use hbar_core::compose::{tune_hybrid, TunerConfig};
use hbar_threadrun::baselines::{time_thread_barrier, CentralCounterBarrier, StdSyncBarrier};
use hbar_threadrun::executor::ThreadExecutor;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use std::hint::black_box;

const ITERS_PER_SAMPLE: usize = 20;

fn bench_thread_barriers(c: &mut Criterion) {
    let p = std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 4))
        .unwrap_or(2);
    let mut group = c.benchmark_group(format!("thread_barriers/p{p}"));
    group.sample_size(10);
    let members: Vec<usize> = (0..p).collect();

    for alg in Algorithm::PAPER_SET {
        let sched = alg.full_schedule(p, &members);
        group.bench_with_input(
            BenchmarkId::new("schedule", alg.tag()),
            &sched,
            |b, sched| {
                let mut ex = ThreadExecutor::new(compile_schedule(sched).unwrap());
                b.iter(|| black_box(ex.time_barrier(ITERS_PER_SAMPLE)));
            },
        );
    }

    // A tuned hybrid for a small machine whose shape matches p.
    let machine = MachineSpec::new(1, 1, p);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    group.bench_function("schedule/hybrid", |b| {
        let mut ex = ThreadExecutor::new(compile_schedule(&tuned.schedule).unwrap());
        b.iter(|| black_box(ex.time_barrier(ITERS_PER_SAMPLE)));
    });

    group.bench_function("baseline/central-counter", |b| {
        let barrier = CentralCounterBarrier::new(p);
        b.iter(|| black_box(time_thread_barrier(&barrier, p, ITERS_PER_SAMPLE)));
    });
    group.bench_function("baseline/std-sync", |b| {
        let barrier = StdSyncBarrier::new(p);
        b.iter(|| black_box(time_thread_barrier(&barrier, p, ITERS_PER_SAMPLE)));
    });
    group.finish();
}

criterion_group!(benches, bench_thread_barriers);
criterion_main!(benches);
