//! Series/table data structures and gnuplot-style `.dat` output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One labelled curve: `(x, y)` points, x = process count, y = seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// Largest y value (0 for an empty series).
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// The y value of the last point, if any.
    pub fn y_last(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }
}

/// A group of series sharing an x axis (one panel of a figure).
#[derive(Clone, Debug, Default)]
pub struct SeriesGroup {
    pub title: String,
    pub series: Vec<Series>,
}

impl SeriesGroup {
    /// Creates an empty group.
    pub fn new(title: impl Into<String>) -> Self {
        SeriesGroup {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn get(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All distinct x values, ascending.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        xs
    }

    /// Renders a fixed-width text table: one row per x, one column per
    /// series (µs values), suitable for terminals and EXPERIMENTS.md.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = write!(out, "{:>6}", "P");
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{:>6}", x);
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {:>12.1}us", y * 1e6);
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes a gnuplot-style `.dat` file: a comment header, then one row
    /// per x with a column per series (seconds; `nan` where missing).
    pub fn write_dat(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        let _ = write!(out, "# {}\n# P", self.title);
        for s in &self.series {
            let _ = write!(out, " {}", s.label.replace(' ', "_"));
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:.9}");
                    }
                    None => {
                        let _ = write!(out, " nan");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SeriesGroup {
        let mut g = SeriesGroup::new("Test figure");
        let mut a = Series::new("D");
        a.push(2.0, 1e-4);
        a.push(4.0, 2e-4);
        let mut b = Series::new("T");
        b.push(2.0, 1.5e-4);
        g.series.push(a);
        g.series.push(b);
        g
    }

    #[test]
    fn xs_are_sorted_and_deduped() {
        assert_eq!(group().xs(), vec![2.0, 4.0]);
    }

    #[test]
    fn y_queries() {
        let g = group();
        assert_eq!(g.get("D").unwrap().y_at(4.0), Some(2e-4));
        assert_eq!(g.get("T").unwrap().y_at(4.0), None);
        assert_eq!(g.get("D").unwrap().y_max(), 2e-4);
        assert_eq!(g.get("D").unwrap().y_last(), Some(2e-4));
        assert!(g.get("X").is_none());
    }

    #[test]
    fn table_contains_values_and_dashes() {
        let table = group().render_table();
        assert!(table.contains("## Test figure"));
        assert!(table.contains("100.0us"));
        assert!(table.contains("-"));
    }

    #[test]
    fn dat_roundtrip_structure() {
        let g = group();
        let dir = std::env::temp_dir().join("hbar_bench_dat_test");
        let path = dir.join("fig.dat");
        g.write_dat(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Test figure"));
        assert!(text.contains("# P D T"));
        assert!(text.contains("2 0.000100000 0.000150000"));
        assert!(text.contains("4 0.000200000 nan"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
