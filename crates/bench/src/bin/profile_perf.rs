//! Decomposed-profiling-sweep regression harness.
//!
//! Gates the clustered sweep (`measure_profile_clustered`) against the
//! frozen exhaustive baseline
//! (`hbar_bench::baseline_profile::measure_profile_exhaustive_baseline`)
//! and records the results to `BENCH_profile.json`:
//!
//! 1. **Bit-parity** — in the singleton-class regime
//!    (`SweepConfig::exact`) the clustered sweep must reproduce the
//!    frozen exhaustive sweep bit for bit (asserted entry by entry before
//!    any timing is reported).
//! 2. **Error bound** — with topology classing, every `(O, L)` entry must
//!    stay within the recorded relative error bound of the exhaustive
//!    profile. The gate runs under [`NoiseModel::quiet`] (the pinned,
//!    dedicated-node regime every serious profiling methodology
//!    prescribes): ≤ 5% on the full schedule, 20% on the `--quick` fast
//!    schedule. A separate **informational** pass records the same
//!    comparison under [`NoiseModel::realistic`]: there the dominant
//!    term is the exhaustive sweep's own per-pair Hockney-intercept
//!    scatter (4% multiplicative jitter amplified through the size
//!    sweep), which clustering smooths over — so the number is reported,
//!    not gated.
//! 3. **Timing** — exhaustive vs clustered wall clock per rank count as
//!    interval estimates (median + 95% nonparametric CI, adaptive rep
//!    counts — the sweeps are seed-deterministic, so repeated runs
//!    re-execute identical measurement plans and the dispersion is pure
//!    harness noise), plus the headline clustered-only sweep at
//!    P = 4096 on the dual-quad-derived synthetic machine, with the
//!    exhaustive cost at that scale extrapolated from the measured
//!    per-pair cost (and recorded as an extrapolation, not a
//!    measurement).
//!
//! ```text
//! profile-perf [--out FILE] [--reps N] [--quick] [--skip-4096]
//! ```

use hbar_bench::baseline_profile::measure_profile_exhaustive_baseline;
use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{ratio_interval, time_estimate, EstimatorSettings, RunManifest};
use hbar_simnet::profiling::ProfilingConfig;
use hbar_simnet::sweep::{measure_profile_clustered, SweepConfig};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use serde::{Serialize, Value};
use std::hint::black_box;

const SEED: u64 = 42;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Dual quad-core nodes (cluster-A-derived), enough of them for `p`.
fn machine_for(p: usize) -> MachineSpec {
    MachineSpec::new(p.div_ceil(8), 2, 4)
}

/// Max and mean relative error of `a` against reference `b` over every
/// off-diagonal `(O, L)` entry, and the diagonal `O` entries.
fn rel_errors(a: &TopologyProfile, b: &TopologyProfile) -> (f64, f64) {
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut track = |x: f64, y: f64| {
        let e = (x - y).abs() / y.abs().max(1e-300);
        max = max.max(e);
        sum += e;
        count += 1;
    };
    for i in 0..a.p {
        for j in 0..a.p {
            if i == j {
                track(a.cost.o[(i, i)], b.cost.o[(i, i)]);
            } else {
                track(a.cost.o[(i, j)], b.cost.o[(i, j)]);
                track(a.cost.l[(i, j)], b.cost.l[(i, j)]);
            }
        }
    }
    (max, sum / count as f64)
}

fn assert_bit_parity(a: &TopologyProfile, b: &TopologyProfile, label: &str) {
    for (idx, (x, y)) in a
        .cost
        .o
        .as_slice()
        .iter()
        .zip(b.cost.o.as_slice())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: O diverged at entry {idx}"
        );
    }
    for (idx, (x, y)) in a
        .cost
        .l
        .as_slice()
        .iter()
        .zip(b.cost.l.as_slice())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: L diverged at entry {idx}"
        );
    }
}

fn main() {
    let args = PerfArgs::parse("BENCH_profile.json");
    let quick = args.quick;
    // The sweeps under test run for seconds each; a handful of adaptive
    // reps is what the budget affords.
    let adaptive = if quick {
        args.adaptive(2, 3)
    } else {
        args.adaptive(3, 5)
    };

    // Parity is exercised under the *noisy* regime (bit-identity must
    // hold under any noise); the error bound is gated under the *quiet*
    // regime, where per-pair intercepts are tight enough for entrywise
    // comparison to measure clustering bias rather than jitter.
    let parity_noise = NoiseModel::realistic(SEED);
    let noise = if quick {
        NoiseModel::realistic(SEED)
    } else {
        NoiseModel::quiet(SEED)
    };
    let mapping = RankMapping::Block;
    let (schedule, parity_ranks, error_ranks, error_bound) = if quick {
        (
            ProfilingConfig::fast(),
            vec![8usize, 12],
            vec![16usize, 32],
            0.2,
        )
    } else {
        (
            ProfilingConfig::default(),
            vec![8usize, 16],
            vec![64usize, 128, 256],
            0.05,
        )
    };

    // 1. Bit-parity gate: singleton-class clustered sweep vs the frozen
    // exhaustive baseline.
    for &p in &parity_ranks {
        let machine = machine_for(p);
        let exhaustive =
            measure_profile_exhaustive_baseline(&machine, &mapping, p, parity_noise, &schedule);
        let (clustered, report) = measure_profile_clustered(
            &machine,
            &mapping,
            p,
            parity_noise,
            &SweepConfig::exact(schedule.clone()),
        );
        assert_eq!(
            report.measurements,
            p * (p - 1) / 2 + p,
            "singleton regime must perform exactly the exhaustive measurements"
        );
        assert_bit_parity(&exhaustive, &clustered, &format!("parity P={p}"));
        println!(
            "parity  P={p:>4}: bit-identical over {} entries x 2 matrices",
            p * p
        );
    }

    // 2 + 3. Error bound and timing, per rank count.
    let sweep_cfg = SweepConfig {
        profiling: schedule.clone(),
        ..if quick {
            SweepConfig::fast()
        } else {
            SweepConfig::default()
        }
    };
    let mut rows = Vec::new();
    let mut last_per_pair_cost = 0.0f64;
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>7} {:>9} {:>9} {:>9}",
        "P", "exhaustive", "clustered", "speedup", "reps", "classes", "max_err", "mean_err"
    );
    for &p in &error_ranks {
        let machine = machine_for(p);
        // The sweeps are seed-deterministic: every adaptive rep re-runs
        // the identical measurement plan, so one captured result speaks
        // for all reps.
        let mut exhaustive_result = None;
        let before = time_estimate(&adaptive, 1, || {
            exhaustive_result = Some(black_box(measure_profile_exhaustive_baseline(
                &machine, &mapping, p, noise, &schedule,
            )));
        });
        let exhaustive = exhaustive_result.take().expect("at least one rep ran");
        let mut clustered_result = None;
        let after = time_estimate(&adaptive, 1, || {
            clustered_result = Some(black_box(measure_profile_clustered(
                &machine, &mapping, p, noise, &sweep_cfg,
            )));
        });
        let (clustered, report) = clustered_result.take().expect("at least one rep ran");
        let (max_err, mean_err) = rel_errors(&clustered, &exhaustive);
        assert!(
            max_err <= error_bound,
            "P={p}: clustered max relative error {max_err} exceeds bound {error_bound}"
        );
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        last_per_pair_cost = before.median / (p * (p - 1) / 2 + p) as f64;
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.1}x {:>3}/{:<3} {:>9} {:>8.4} {:>8.4}",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            before.n,
            after.n,
            report.pair_classes + report.diag_classes,
            max_err,
            mean_err
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("exhaustive_s", Value::Float(before.median)),
            ("clustered_s", Value::Float(after.median)),
            ("speedup", Value::Float(speedup)),
            ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
            ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
            ("exhaustive", before.to_value()),
            ("clustered", after.to_value()),
            ("pair_classes", Value::UInt(report.pair_classes as u64)),
            ("diag_classes", Value::UInt(report.diag_classes as u64)),
            ("measurements", Value::UInt(report.measurements as u64)),
            (
                "exhaustive_measurements",
                Value::UInt((p * (p - 1) / 2 + p) as u64),
            ),
            ("max_rel_error", Value::Float(max_err)),
            ("mean_rel_error", Value::Float(mean_err)),
            (
                "within_class_max_spread",
                Value::Float(report.max_rel_spread),
            ),
        ]));
    }

    // Informational pass: the same comparison under the noisy regime.
    // Not gated — under 4% multiplicative jitter the exhaustive sweep's
    // own per-pair intercepts scatter up to ~20% around the class
    // center (the size sweep amplifies jitter into the intercept), so
    // entrywise deviation measures jitter, not clustering bias. The
    // within-class spread recorded alongside is the evidence.
    let mut noisy_regime = Value::Null;
    if !quick {
        let p = 64usize;
        let machine = machine_for(p);
        let loud = NoiseModel::realistic(SEED);
        let exhaustive =
            measure_profile_exhaustive_baseline(&machine, &mapping, p, loud, &schedule);
        let (clustered, report) =
            measure_profile_clustered(&machine, &mapping, p, loud, &sweep_cfg);
        let (max_err, mean_err) = rel_errors(&clustered, &exhaustive);
        println!(
            "noisy (informational) P={p}: max_err {max_err:.4} mean_err {mean_err:.4} \
             within-class spread {:.4}",
            report.max_rel_spread
        );
        noisy_regime = obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("jitter_sigma", Value::Float(loud.jitter_sigma)),
            ("spike_prob", Value::Float(loud.spike_prob)),
            ("max_rel_error", Value::Float(max_err)),
            ("mean_rel_error", Value::Float(mean_err)),
            (
                "within_class_max_spread",
                Value::Float(report.max_rel_spread),
            ),
            (
                "note",
                Value::Str(
                    "informational, not gated: under realistic noise the exhaustive \
                     sweep's own per-pair Hockney intercepts scatter by up to ~20% \
                     around the class center, so entrywise deviation is dominated by \
                     jitter in the reference, not by clustering bias"
                        .to_string(),
                ),
            ),
        ]);
    }

    // The headline run: P = 4096 on the dual-quad-derived machine,
    // clustered only — the exhaustive sweep at this scale (8.4M pair
    // benchmarks) is exactly what the decomposition exists to avoid, so
    // its cost is extrapolated from the measured per-pair cost above.
    let mut headline = Value::Null;
    if !args.skip_4096 && !quick {
        let p = 4096usize;
        let machine = MachineSpec::new(512, 2, 4);
        let mut headline_result = None;
        let clustered_est = time_estimate(&adaptive, 1, || {
            headline_result = Some(black_box(measure_profile_clustered(
                &machine, &mapping, p, noise, &sweep_cfg,
            )));
        });
        let (profile, report) = headline_result.take().expect("at least one rep ran");
        assert_eq!(profile.p, p);
        let pairs = p * (p - 1) / 2 + p;
        let extrapolated_exhaustive_s = last_per_pair_cost * pairs as f64;
        let speedup = extrapolated_exhaustive_s / clustered_est.median;
        println!(
            "P=4096: clustered {:.2}s (n={}) over {} classes / {} measurements; \
             exhaustive extrapolates to {:.0}s ({:.0}x)",
            clustered_est.median,
            clustered_est.n,
            report.pair_classes + report.diag_classes,
            report.measurements,
            extrapolated_exhaustive_s,
            speedup
        );
        headline = obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("clustered_s", Value::Float(clustered_est.median)),
            ("clustered", clustered_est.to_value()),
            ("pair_classes", Value::UInt(report.pair_classes as u64)),
            ("diag_classes", Value::UInt(report.diag_classes as u64)),
            ("measurements", Value::UInt(report.measurements as u64)),
            ("exhaustive_measurements", Value::UInt(pairs as u64)),
            (
                "exhaustive_s_extrapolated",
                Value::Float(extrapolated_exhaustive_s),
            ),
            ("speedup_extrapolated", Value::Float(speedup)),
            (
                "extrapolation",
                Value::Str(
                    "exhaustive cost = measured per-pair cost at the largest exhaustively \
                     measured P, times |P|(|P|-1)/2 + |P|; the exhaustive sweep was not run \
                     at P=4096"
                        .to_string(),
                ),
            ),
        ]);
    }

    let manifest = RunManifest::capture(
        "measure_profile_clustered",
        SEED,
        if quick {
            "ProfilingConfig::fast (--quick); SweepConfig::fast classing"
        } else {
            "ProfilingConfig::default (paper §IV-A); SweepConfig::default classing"
        },
        "dual quad-core nodes (cluster-A-derived), block placement",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        (
            "benchmark",
            Value::Str("measure_profile_clustered".to_string()),
        ),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str(
                "frozen exhaustive sweep (hbar_bench::baseline_profile): every pair of \
                 |P|(|P|-1)/2 benchmarked individually, statically-chunked parallel map"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "decomposed sweep: feature-vector pair clustering (interconnect class, \
                 hop signature, socket relation, noise regime), one representative + \
                 validation probes per class with adaptive repetition growth \
                 (hbar_stats::StoppingRule), work-stealing local fan-out, estimates \
                 scattered into the |P|^2 matrices"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual quad-core nodes (cluster-A-derived), block placement".to_string()),
        ),
        (
            "schedule",
            Value::Str(if quick {
                "ProfilingConfig::fast (--quick)".to_string()
            } else {
                "ProfilingConfig::default (paper §IV-A)".to_string()
            }),
        ),
        (
            "statistic",
            Value::Str(
                "median wall-clock seconds with 95% binomial order-statistic CI; reps \
                 adaptive (see manifest.estimator). The timed sweeps are \
                 seed-deterministic, so rep dispersion is harness noise, not \
                 measurement noise"
                    .to_string(),
            ),
        ),
        (
            "parity",
            Value::Str(format!(
                "clustered sweep in the singleton-class regime (SweepConfig::exact) is \
                 bit-identical to the frozen exhaustive baseline at P in {parity_ranks:?} \
                 (asserted before timing)"
            )),
        ),
        ("error_bound", Value::Float(error_bound)),
        (
            "error_semantics",
            Value::Str(
                "max/mean relative deviation of every clustered (O, L) entry from the \
                 frozen exhaustive profile of the same machine, mapping, noise seed, \
                 and schedule"
                    .to_string(),
            ),
        ),
        (
            "gate_noise_regime",
            obj(vec![
                ("jitter_sigma", Value::Float(noise.jitter_sigma)),
                ("spike_prob", Value::Float(noise.spike_prob)),
                (
                    "note",
                    Value::Str(
                        "error bound gated under the quiet (pinned, dedicated-node) \
                         regime; parity gated under the realistic noisy regime"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        ("results", Value::Array(rows)),
        ("noisy_regime_informational", noisy_regime),
        ("headline_p4096", headline),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_profile.json");
    println!("wrote {}", args.out.display());
}
