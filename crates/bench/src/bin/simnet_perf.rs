//! Simulation-engine performance regression harness.
//!
//! Times the full §IV-A profiling sweep (`measure_profile`, the
//! reusable-engine/amortized-program path) against the frozen pre-rework
//! stack (`hbar_bench::baseline_engine` with its verbatim Box–Muller
//! sampler) across rank counts, and writes interval estimates (median +
//! 95% nonparametric CI, adaptive rep counts), a single-run events/sec
//! estimate, and a reproducibility manifest to `BENCH_simnet.json`.
//!
//! Correctness and speed are checked against two baseline variants:
//! the **parity** sweep runs the frozen engine with the reworked shared
//! sampler injected ([`BaselineNoise::Shared`]), so both stacks see the
//! same noise draws and the topology profiles must agree bit-for-bit;
//! the **timing** sweep runs the fully frozen stack
//! ([`BaselineNoise::Frozen`]) so the "before" number honestly includes
//! the pre-rework Box–Muller sampling cost.
//!
//! ```text
//! simnet-perf [--out FILE] [--reps N] [--quick]
//! ```
//!
//! `--quick` shrinks the schedule to a CI-sized parity smoke test: the
//! bit-parity assertions still run on every matrix entry, but with the
//! reduced [`ProfilingConfig::fast`] schedule and a tiny rep budget.

use hbar_bench::baseline_engine::{measure_profile_baseline, BaselineNoise};
use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{ratio_interval, time_estimate, EstimatorSettings, RunManifest};
use hbar_core::algorithms::Algorithm;
use hbar_simnet::barrier::schedule_programs;
use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use serde::{Serialize, Value};
use std::hint::black_box;

const RANKS: [usize; 3] = [8, 16, 32];
const SEED: u64 = 42;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Engine throughput: events per wall-clock second executing a
/// many-round dissemination barrier on a reused world, with the run
/// time itself measured adaptively.
fn events_per_sec(
    machine: &MachineSpec,
    p: usize,
    adaptive: &hbar_bench::stats::AdaptiveConfig,
) -> (f64, f64, f64) {
    let members: Vec<usize> = (0..p).collect();
    let sched = Algorithm::Dissemination.full_schedule(p, &members);
    let programs = schedule_programs(&sched, 50);
    let mut world = SimWorld::new(
        SimConfig {
            machine: machine.clone(),
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::realistic(SEED),
        },
        p,
    );
    // Warm the arenas once so the figure reflects steady-state reuse.
    let events = world.run(&programs).expect("barrier runs").events as f64;
    let run_time = time_estimate(adaptive, 1, || {
        black_box(world.run(&programs).expect("barrier runs"));
    });
    // Events per run are deterministic, so the throughput CI is the
    // reciprocal image of the run-time CI.
    (
        events / run_time.median,
        events / run_time.ci_hi,
        events / run_time.ci_lo,
    )
}

fn main() {
    let args = PerfArgs::parse("BENCH_simnet.json");
    let adaptive = if args.quick {
        args.adaptive(2, 3)
    } else {
        args.adaptive(5, 15)
    };
    let cfg = if args.quick {
        ProfilingConfig::fast()
    } else {
        ProfilingConfig::default()
    };
    let noise = NoiseModel::realistic(SEED);
    let mapping = RankMapping::RoundRobin;

    let mut rows = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>18} {:>7} {:>12}",
        "P", "before", "after", "speedup", "95% CI", "reps", "events/s"
    );
    for p in RANKS {
        // Dual quad-core nodes like cluster A, but without its 8-node cap.
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);

        // Both sweeps must agree bit-for-bit before timings mean anything;
        // the parity run injects the shared sampler into the frozen engine
        // so the comparison isolates engine mechanics.
        let base =
            measure_profile_baseline(&machine, &mapping, p, noise, BaselineNoise::Shared, &cfg);
        let opt = measure_profile(&machine, &mapping, p, noise, &cfg);
        for (idx, (a, b)) in base
            .cost
            .o
            .as_slice()
            .iter()
            .zip(opt.cost.o.as_slice())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "O diverged at p={p}, entry {idx}");
        }
        for (idx, (a, b)) in base
            .cost
            .l
            .as_slice()
            .iter()
            .zip(opt.cost.l.as_slice())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "L diverged at p={p}, entry {idx}");
        }

        let before = time_estimate(&adaptive, 1, || {
            black_box(measure_profile_baseline(
                black_box(&machine),
                &mapping,
                p,
                noise,
                BaselineNoise::Frozen,
                &cfg,
            ));
        });
        let after = time_estimate(&adaptive, 1, || {
            black_box(measure_profile(
                black_box(&machine),
                &mapping,
                p,
                noise,
                &cfg,
            ));
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        let (eps, eps_lo, eps_hi) = events_per_sec(&machine, p, &adaptive);
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x [{:>6.2}, {:>6.2}] {:>3}/{:<3} {:>10.2}M",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            speedup_ci.lo,
            speedup_ci.hi,
            before.n,
            after.n,
            eps / 1e6
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("before_s", Value::Float(before.median)),
            ("after_s", Value::Float(after.median)),
            ("speedup", Value::Float(speedup)),
            ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
            ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
            ("before", before.to_value()),
            ("after", after.to_value()),
            ("events_per_sec", Value::Float(eps)),
            ("events_per_sec_ci_lo", Value::Float(eps_lo)),
            ("events_per_sec_ci_hi", Value::Float(eps_hi)),
        ]));
    }

    let manifest = RunManifest::capture(
        "measure_profile",
        SEED,
        if args.quick {
            "ProfilingConfig::fast (--quick)"
        } else {
            "ProfilingConfig::default (paper §IV-A)"
        },
        "dual quad-core nodes (P/8), round-robin placement, NoiseModel::realistic",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        ("benchmark", Value::Str("measure_profile".to_string())),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str(
                "frozen pre-rework stack (hbar_bench::baseline_engine, Frozen): fresh \
                 engine and cloned ground truth per run, binary-heap event queue, \
                 VecDeque matching pools, per-run program clones with owned mark \
                 labels, Box-Muller noise sampler with libm round"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "reusable engine: arenas built once per pair and reset between runs, \
                 radix-heap event queue, flat index-based matching pools cleared \
                 O(touched), Copy instructions with interned mark labels, in-place \
                 program rebuilds via PairBench, ziggurat noise sampler"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual quad-core nodes, round-robin placement".to_string()),
        ),
        (
            "schedule",
            Value::Str(if args.quick {
                "ProfilingConfig::fast (--quick)".to_string()
            } else {
                "ProfilingConfig::default (paper §IV-A)".to_string()
            }),
        ),
        (
            "statistic",
            Value::Str(
                "median wall-clock seconds of one full sweep with 95% binomial \
                 order-statistic CI, reps adaptive (see manifest.estimator); every \
                 sweep sample point is itself a median of independent single-round \
                 runs"
                    .to_string(),
            ),
        ),
        (
            "parity",
            Value::Str(
                "O and L matrices bit-identical at every entry to the frozen engine \
                 running the shared sampler (asserted before timing)"
                    .to_string(),
            ),
        ),
        ("results", Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_simnet.json");
    println!("wrote {}", args.out.display());
}
