//! Simulation-engine performance regression harness.
//!
//! Times the full §IV-A profiling sweep (`measure_profile`, the
//! reusable-engine/amortized-program path) against the frozen pre-rework
//! stack (`hbar_bench::baseline_engine` with its verbatim Box–Muller
//! sampler) across rank counts, and writes the numbers to
//! `BENCH_simnet.json` together with a single-run events/sec figure.
//!
//! Correctness and speed are checked against two baseline variants:
//! the **parity** sweep runs the frozen engine with the reworked shared
//! sampler injected ([`BaselineNoise::Shared`]), so both stacks see the
//! same noise draws and the topology profiles must agree bit-for-bit;
//! the **timing** sweep runs the fully frozen stack
//! ([`BaselineNoise::Frozen`]) so the "before" number honestly includes
//! the pre-rework Box–Muller sampling cost.
//!
//! ```text
//! simnet-perf [--out FILE] [--reps N] [--quick]
//! ```
//!
//! `--quick` shrinks the schedule to a CI-sized parity smoke test: the
//! bit-parity assertions still run on every matrix entry, but with the
//! reduced [`ProfilingConfig::fast`] schedule and fewer timing samples.

use hbar_bench::baseline_engine::{measure_profile_baseline, BaselineNoise};
use hbar_core::algorithms::Algorithm;
use hbar_simnet::barrier::schedule_programs;
use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use serde::Value;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const RANKS: [usize; 3] = [8, 16, 32];
const SEED: u64 = 42;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Median wall-clock seconds of `f` over `reps` samples. Unlike the tuner
/// harness there is no batching: one full profiling sweep already runs for
/// long enough to time directly.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Single-run engine throughput: events per wall-clock second executing a
/// many-round dissemination barrier on a reused world.
fn events_per_sec(machine: &MachineSpec, p: usize) -> f64 {
    let members: Vec<usize> = (0..p).collect();
    let sched = Algorithm::Dissemination.full_schedule(p, &members);
    let programs = schedule_programs(&sched, 50);
    let mut world = SimWorld::new(
        SimConfig {
            machine: machine.clone(),
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::realistic(SEED),
        },
        p,
    );
    // Warm the arenas once so the figure reflects steady-state reuse.
    world.run(&programs).expect("barrier runs");
    let t = Instant::now();
    let result = world.run(&programs).expect("barrier runs");
    result.events as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let mut out = PathBuf::from("BENCH_simnet.json");
    let mut reps = 5usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--quick" => quick = true,
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = if quick {
        reps = reps.min(2);
        ProfilingConfig::fast()
    } else {
        ProfilingConfig::default()
    };
    let noise = NoiseModel::realistic(SEED);
    let mapping = RankMapping::RoundRobin;

    let mut rows = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>14}",
        "P", "before", "after", "speedup", "events/s"
    );
    for p in RANKS {
        // Dual quad-core nodes like cluster A, but without its 8-node cap.
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);

        // Both sweeps must agree bit-for-bit before timings mean anything;
        // the parity run injects the shared sampler into the frozen engine
        // so the comparison isolates engine mechanics.
        let base =
            measure_profile_baseline(&machine, &mapping, p, noise, BaselineNoise::Shared, &cfg);
        let opt = measure_profile(&machine, &mapping, p, noise, &cfg);
        for (idx, (a, b)) in base
            .cost
            .o
            .as_slice()
            .iter()
            .zip(opt.cost.o.as_slice())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "O diverged at p={p}, entry {idx}");
        }
        for (idx, (a, b)) in base
            .cost
            .l
            .as_slice()
            .iter()
            .zip(opt.cost.l.as_slice())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "L diverged at p={p}, entry {idx}");
        }

        let before = time_median(reps, || {
            black_box(measure_profile_baseline(
                black_box(&machine),
                &mapping,
                p,
                noise,
                BaselineNoise::Frozen,
                &cfg,
            ));
        });
        let after = time_median(reps, || {
            black_box(measure_profile(
                black_box(&machine),
                &mapping,
                p,
                noise,
                &cfg,
            ));
        });
        let speedup = before / after;
        let eps = events_per_sec(&machine, p);
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x {:>12.2}M",
            p,
            before * 1e3,
            after * 1e3,
            speedup,
            eps / 1e6
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("before_s", Value::Float(before)),
            ("after_s", Value::Float(after)),
            ("speedup", Value::Float(speedup)),
            ("events_per_sec", Value::Float(eps)),
        ]));
    }

    let doc = obj(vec![
        ("benchmark", Value::Str("measure_profile".to_string())),
        (
            "before",
            Value::Str(
                "frozen pre-rework stack (hbar_bench::baseline_engine, Frozen): fresh \
                 engine and cloned ground truth per run, binary-heap event queue, \
                 VecDeque matching pools, per-run program clones with owned mark \
                 labels, Box-Muller noise sampler with libm round"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "reusable engine: arenas built once per pair and reset between runs, \
                 radix-heap event queue, flat index-based matching pools cleared \
                 O(touched), Copy instructions with interned mark labels, in-place \
                 program rebuilds via PairBench, ziggurat noise sampler"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual quad-core nodes, round-robin placement".to_string()),
        ),
        (
            "schedule",
            Value::Str(if quick {
                "ProfilingConfig::fast (--quick)".to_string()
            } else {
                "ProfilingConfig::default (paper §IV-A)".to_string()
            }),
        ),
        ("reps_per_sample", Value::UInt(reps as u64)),
        (
            "statistic",
            Value::Str(
                "median wall-clock seconds of one full sweep; every sweep sample \
                 point is itself a median of independent single-round runs"
                    .to_string(),
            ),
        ),
        (
            "parity",
            Value::Str(
                "O and L matrices bit-identical at every entry to the frozen engine \
                 running the shared sampler (asserted before timing)"
                    .to_string(),
            ),
        ),
        ("results", Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, json + "\n").expect("write BENCH_simnet.json");
    println!("wrote {}", out.display());
}
