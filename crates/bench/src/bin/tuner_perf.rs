//! Tuner performance regression harness.
//!
//! Times the full tuning pipeline (`tune_hybrid_costs_with`, the
//! zero-allocation/memoized/parallel path) against the frozen
//! pre-optimization baseline (`hbar_bench::baseline`) across rank
//! counts, checks both emit bit-identical results, and writes the
//! numbers to `BENCH_tuner.json`.
//!
//! ```text
//! tuner-perf [--out FILE] [--reps N]
//! ```

use hbar_bench::baseline::tune_hybrid_costs_baseline;
use hbar_core::compose::{tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use serde::Value;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const RANKS: [usize; 4] = [16, 32, 64, 128];

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Per-call seconds: median over `reps` samples, each sample averaging
/// `BATCH` consecutive calls (the tuner runs in tens of microseconds, so
/// single calls are too jittery to time directly).
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    const BATCH: usize = 20;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..BATCH {
                f();
            }
            t.elapsed().as_secs_f64() / BATCH as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut out = PathBuf::from("BENCH_tuner.json");
    let mut reps = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = TunerConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "P", "before", "after", "speedup"
    );
    for p in RANKS {
        // Dual quad-core nodes like cluster A, but without its 8-node
        // cap so the sweep can reach 128 ranks.
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();

        // Both paths must agree before their timings mean anything.
        let mut eval = CostEvaluator::new(cfg.cost_params);
        let base = tune_hybrid_costs_baseline(&profile.cost, &members, &cfg);
        let opt = tune_hybrid_costs_with(&profile.cost, &members, &cfg, &mut eval);
        assert_eq!(base.schedule, opt.schedule, "schedule diverged at p={p}");
        assert_eq!(
            base.predicted_cost.to_bits(),
            opt.predicted_cost.to_bits(),
            "prediction diverged at p={p}"
        );

        let before = time_median(reps, || {
            black_box(tune_hybrid_costs_baseline(
                black_box(&profile.cost),
                &members,
                &cfg,
            ));
        });
        let after = time_median(reps, || {
            black_box(tune_hybrid_costs_with(
                black_box(&profile.cost),
                &members,
                &cfg,
                &mut eval,
            ));
        });
        let speedup = before / after;
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x",
            p,
            before * 1e3,
            after * 1e3,
            speedup
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("before_s", Value::Float(before)),
            ("after_s", Value::Float(after)),
            ("speedup", Value::Float(speedup)),
        ]));
    }

    let doc = obj(vec![
        ("benchmark", Value::Str("tune_hybrid_costs".to_string())),
        (
            "before",
            Value::Str("frozen pre-optimization tuner (hbar_bench::baseline)".to_string()),
        ),
        (
            "after",
            Value::Str(
                "tune_hybrid_costs_with: scratch-arena evaluator, score memo, \
                 compiled-stage cache, rayon root-sibling parallelism"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual_quad_cluster ground truth".to_string()),
        ),
        ("reps_per_sample", Value::UInt(reps as u64)),
        (
            "statistic",
            Value::Str("median wall-clock seconds".to_string()),
        ),
        ("results", Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, json + "\n").expect("write BENCH_tuner.json");
    println!("wrote {}", out.display());
}
