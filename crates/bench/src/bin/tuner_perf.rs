//! Tuner performance regression harness.
//!
//! Times the full tuning pipeline (`tune_hybrid_costs_with`, the
//! zero-allocation/memoized/parallel path) against the frozen
//! pre-optimization baseline (`hbar_bench::baseline`) across rank
//! counts, checks both emit bit-identical results, and writes interval
//! estimates (median + 95% nonparametric CI, adaptive rep counts) and a
//! reproducibility manifest to `BENCH_tuner.json`.
//!
//! ```text
//! tuner-perf [--out FILE] [--reps N] [--quick]
//! ```
//!
//! `--reps` bounds the adaptive rep budget per measurement; `--quick`
//! shrinks it for CI smokes.

use hbar_bench::baseline::tune_hybrid_costs_baseline;
use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{ratio_interval, time_estimate, EstimatorSettings, RunManifest};
use hbar_core::compose::{tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use serde::{Serialize, Value};
use std::hint::black_box;

const RANKS: [usize; 4] = [16, 32, 64, 128];

/// Samples average `BATCH` consecutive calls: the tuner runs in tens of
/// microseconds, so single calls are too jittery to time directly.
const BATCH: usize = 20;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args = PerfArgs::parse("BENCH_tuner.json");
    let adaptive = if args.quick {
        args.adaptive(3, 5)
    } else {
        args.adaptive(10, 40)
    };

    let cfg = TunerConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>18} {:>7}",
        "P", "before", "after", "speedup", "95% CI", "reps"
    );
    for p in RANKS {
        // Dual quad-core nodes like cluster A, but without its 8-node
        // cap so the sweep can reach 128 ranks.
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let members: Vec<usize> = (0..p).collect();

        // Both paths must agree before their timings mean anything.
        let mut eval = CostEvaluator::new(cfg.cost_params);
        let base = tune_hybrid_costs_baseline(&profile.cost, &members, &cfg);
        let opt = tune_hybrid_costs_with(&profile.cost, &members, &cfg, &mut eval);
        assert_eq!(base.schedule, opt.schedule, "schedule diverged at p={p}");
        assert_eq!(
            base.predicted_cost.to_bits(),
            opt.predicted_cost.to_bits(),
            "prediction diverged at p={p}"
        );

        let before = time_estimate(&adaptive, BATCH, || {
            black_box(tune_hybrid_costs_baseline(
                black_box(&profile.cost),
                &members,
                &cfg,
            ));
        });
        let after = time_estimate(&adaptive, BATCH, || {
            black_box(tune_hybrid_costs_with(
                black_box(&profile.cost),
                &members,
                &cfg,
                &mut eval,
            ));
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x [{:>6.2}, {:>6.2}] {:>3}/{:<3}",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            speedup_ci.lo,
            speedup_ci.hi,
            before.n,
            after.n
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("before_s", Value::Float(before.median)),
            ("after_s", Value::Float(after.median)),
            ("speedup", Value::Float(speedup)),
            ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
            ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
            ("before", before.to_value()),
            ("after", after.to_value()),
        ]));
    }

    let manifest = RunManifest::capture(
        "tune_hybrid_costs",
        0, // the tuner path is deterministic: ground-truth profiles, no noise
        "TunerConfig::default over ground-truth profiles; samples average 20-call batches",
        "dual quad-core nodes (P/8), round-robin placement",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        ("benchmark", Value::Str("tune_hybrid_costs".to_string())),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str("frozen pre-optimization tuner (hbar_bench::baseline)".to_string()),
        ),
        (
            "after",
            Value::Str(
                "tune_hybrid_costs_with: scratch-arena evaluator, score memo, \
                 compiled-stage cache, rayon root-sibling parallelism"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual_quad_cluster ground truth".to_string()),
        ),
        (
            "statistic",
            Value::Str(
                "median wall-clock seconds with 95% binomial order-statistic CI; \
                 reps adaptive until the relative CI half-width meets the target \
                 or the budget is spent (see manifest.estimator)"
                    .to_string(),
            ),
        ),
        ("results", Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_tuner.json");
    println!("wrote {}", args.out.display());
}
