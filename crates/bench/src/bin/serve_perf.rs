//! Warm-path perf harness for the tune service (`hbar serve`) and its
//! `BENCH_serve.json` record.
//!
//! Four phases against one in-process loopback server:
//!
//! 1. **Per-P rows** — local `tune_hybrid_costs` wall clock (before)
//!    vs a warm cache-hit round trip over loopback TCP (after), as
//!    adaptive interval estimates with a conservative speedup CI. This
//!    is the service's reason to exist: a cached answer must be orders
//!    of magnitude cheaper than re-tuning.
//! 2. **Cold pass + parity** — every one of the `--topologies` distinct
//!    cost matrices is tuned through the server once and (all of them
//!    in the full run, a sample under `--quick`) asserted bit-identical
//!    to a local tune of the same request. A parity failure panics; it
//!    never just lowers a number.
//! 3. **Latency** — synchronous Zipf(`--zipf`) requests on one
//!    connection; the warm-path p99 is computed over the *hit-flagged*
//!    round trips (misses pay a tune and are accounted separately) with
//!    a percentile-bootstrap CI.
//! 4. **Throughput** — `--conns` connections pipeline windowed bursts
//!    of Zipf requests concurrently; sustained req/s is total requests
//!    over the barrier-to-join wall clock.
//!
//! The cache is deliberately capped at 3/4 of the distinct-topology
//! count, so the run exercises eviction and re-tune, not just an
//! ever-growing map; the Zipf head keeps the hit rate high anyway.
//!
//! ```text
//! serve-perf [--out FILE] [--reps N] [--quick]
//!            [--topologies N] [--zipf S] [--conns N]
//! ```

use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{
    bootstrap_ci, ratio_interval, time_estimate, Estimate, EstimatorSettings, RunManifest,
};
use hbar_core::compose::tune_hybrid_costs;
use hbar_serve::cache::CacheConfig;
use hbar_serve::client::TuneClient;
use hbar_serve::proto::{TuneRequest, REQ_EXTENDED, REQ_SCORE_EXACT};
use hbar_serve::server::{ServeConfig, ServerHandle};
use hbar_serve::workload::{synthetic_topologies, SplitMix64, ZipfSampler};
use serde::{Serialize, Value};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const SEED: u64 = 42;
/// Seed for the dedicated per-P row topologies (disjoint from the Zipf
/// fleet so the rows don't perturb its popularity order).
const ROW_SEED: u64 = 4242;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The canonical local answer a served schedule must match bit for bit.
fn local_schedule_json(req: &TuneRequest) -> String {
    let members: Vec<usize> = (0..req.cost.p()).collect();
    let tuned = tune_hybrid_costs(&req.cost, &members, &req.tuner_config());
    serde_json::to_string(&tuned.schedule).expect("schedule serializes")
}

/// Empirical q-quantile by the nearest-rank rule (sorts a copy; the
/// `fn`-pointer shape is what [`bootstrap_ci`] resamples).
fn p99(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let idx = ((v.len() as f64) * 0.99).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

fn main() {
    let (args, extras) = PerfArgs::parse_with("BENCH_serve.json", &["topologies", "zipf", "conns"]);
    let quick = args.quick;
    let parse = |key: &str, default: usize| -> usize {
        extras
            .get(key)
            .map(|v| {
                v.parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| panic!("--{key} needs a positive integer"))
            })
            .unwrap_or(default)
    };
    let topologies = parse("topologies", if quick { 96 } else { 1024 });
    let zipf_s: f64 = extras
        .get("zipf")
        .map(|v| v.parse().expect("--zipf needs a number"))
        .unwrap_or(1.0);
    let conns = parse("conns", 4);
    let (latency_reqs, window, rounds) = if quick {
        (2_000usize, 64usize, 8usize)
    } else {
        (30_000, 64, 256)
    };
    let adaptive = if quick {
        args.adaptive(3, 6)
    } else {
        args.adaptive(8, 30)
    };

    // Cap the cache below the distinct-key count: the run must evict.
    let capacity = (topologies * 3) / 4;
    let cfg = ServeConfig {
        cache: CacheConfig {
            capacity,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let workers = cfg.workers;
    let shards = cfg.cache.shards;
    let server = ServerHandle::spawn("127.0.0.1:0", &cfg).expect("spawn server");
    let addr = server.addr();
    println!(
        "serve-perf: {topologies} topologies, cache cap {capacity} ({shards} shards), \
         {workers} workers, Zipf({zipf_s}), loopback {addr}"
    );

    // 1. Per-P rows: local tune vs warm served hit.
    let next_id = Arc::new(AtomicU64::new(1_000_000));
    let mut rows = Vec::new();
    let mut client = TuneClient::connect(addr).expect("connect");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>7}",
        "P", "local tune", "warm hit", "speedup", "reps"
    );
    for cost in synthetic_topologies(3, ROW_SEED) {
        let p = cost.p();
        // The rows time the production-quality configuration (extended
        // candidate set, exact scoring) — the tune worth memoizing.
        let mut req = TuneRequest::new(next_id.fetch_add(1, Ordering::Relaxed), cost);
        req.flags |= REQ_EXTENDED | REQ_SCORE_EXACT;
        let before = time_estimate(&adaptive, 1, || {
            let members: Vec<usize> = (0..req.cost.p()).collect();
            black_box(tune_hybrid_costs(&req.cost, &members, &req.tuner_config()));
        });
        // Prime the cache, then time pure hits.
        let primed = client.request(&req).expect("prime");
        assert!(!primed.cache_hit, "row key must start cold");
        let after = time_estimate(&adaptive, 32, || {
            let resp = client.request(&req).expect("warm hit");
            debug_assert!(resp.cache_hit);
            black_box(resp.predicted_cost);
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        println!(
            "{:>6} {:>12.3}ms {:>12.1}us {:>9.0}x {:>3}/{:<3}",
            p,
            before.median * 1e3,
            after.median * 1e6,
            speedup,
            before.n,
            after.n
        );
        rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("local_tune_s", Value::Float(before.median)),
            ("warm_hit_s", Value::Float(after.median)),
            ("speedup", Value::Float(speedup)),
            ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
            ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
            ("before", before.to_value()),
            ("after", after.to_value()),
        ]));
    }

    // 2. Cold pass + parity over the whole fleet.
    let fleet = synthetic_topologies(topologies, SEED);
    let parity_stride = if quick { 8 } else { 1 };
    let mut parity_checked = 0usize;
    let cold_start = Instant::now();
    for (k, cost) in fleet.iter().enumerate() {
        let req = TuneRequest::new(next_id.fetch_add(1, Ordering::Relaxed), cost.clone());
        let resp = client.request(&req).expect("cold tune");
        if k % parity_stride == 0 {
            assert_eq!(
                resp.schedule_json,
                local_schedule_json(&req),
                "PARITY FAILURE: served schedule for topology {k} differs from a local tune"
            );
            parity_checked += 1;
        }
    }
    let cold_s = cold_start.elapsed().as_secs_f64();
    println!(
        "cold pass: {topologies} tunes in {cold_s:.2}s, {parity_checked} parity-checked, \
         all bit-identical to local tunes"
    );

    // 3. Latency: synchronous Zipf round trips, p99 over hits only.
    let zipf = ZipfSampler::new(topologies, zipf_s);
    let mut rng = SplitMix64(SEED.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut hit_lat = Vec::with_capacity(latency_reqs);
    let mut miss_lat = Vec::new();
    for _ in 0..latency_reqs {
        let k = zipf.sample(&mut rng);
        let req = TuneRequest::new(next_id.fetch_add(1, Ordering::Relaxed), fleet[k].clone());
        let t = Instant::now();
        let resp = client.request(&req).expect("zipf request");
        let dt = t.elapsed().as_secs_f64();
        if resp.cache_hit {
            hit_lat.push(dt);
        } else {
            miss_lat.push(dt);
        }
    }
    assert!(!hit_lat.is_empty(), "the Zipf head must produce hits");
    let warm = Estimate::from_samples(&hit_lat, 0.95, 0.05);
    let warm_p99 = p99(&hit_lat);
    let warm_p99_ci = bootstrap_ci(&hit_lat, 0.95, 400, SEED, p99);
    let lat_hit_rate = hit_lat.len() as f64 / latency_reqs as f64;
    println!(
        "latency: {latency_reqs} sync requests, hit rate {:.3}; warm p50 {:.1}us, \
         p99 {:.1}us [{:.1}, {:.1}], {} misses (median {:.2}ms)",
        lat_hit_rate,
        warm.median * 1e6,
        warm_p99 * 1e6,
        warm_p99_ci.lo * 1e6,
        warm_p99_ci.hi * 1e6,
        miss_lat.len(),
        if miss_lat.is_empty() {
            0.0
        } else {
            hbar_bench::stats::median(&miss_lat) * 1e3
        },
    );
    client.drain().expect("drain row/latency connection");

    // 4. Throughput: pipelined windows across `conns` connections.
    let fleet = Arc::new(fleet);
    let barrier = Arc::new(Barrier::new(conns + 1));
    let zipf = Arc::new(zipf);
    let threads: Vec<_> = (0..conns)
        .map(|t| {
            let fleet = Arc::clone(&fleet);
            let barrier = Arc::clone(&barrier);
            let zipf = Arc::clone(&zipf);
            let next_id = Arc::clone(&next_id);
            std::thread::spawn(move || {
                let mut client = TuneClient::connect(addr).expect("connect");
                let mut rng = SplitMix64(SEED ^ (t as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
                let mut hits = 0u64;
                barrier.wait();
                for _ in 0..rounds {
                    for _ in 0..window {
                        let k = zipf.sample(&mut rng);
                        let req = TuneRequest::new(
                            next_id.fetch_add(1, Ordering::Relaxed),
                            fleet[k].clone(),
                        );
                        client.send(&req).expect("pipelined send");
                    }
                    for _ in 0..window {
                        match client.recv().expect("pipelined recv") {
                            hbar_serve::client::TuneReply::Ok(resp) => {
                                hits += u64::from(resp.cache_hit);
                            }
                            hbar_serve::client::TuneReply::Err { id, reason } => {
                                panic!("request {id} failed under load: {reason}")
                            }
                        }
                    }
                }
                client.drain().expect("drain throughput connection");
                hits
            })
        })
        .collect();
    barrier.wait();
    let t = Instant::now();
    let tp_hits: u64 = threads.into_iter().map(|h| h.join().expect("conn")).sum();
    let tp_elapsed = t.elapsed().as_secs_f64();
    let tp_reqs = (conns * rounds * window) as u64;
    let rps = tp_reqs as f64 / tp_elapsed;
    let tp_hit_rate = tp_hits as f64 / tp_reqs as f64;
    println!(
        "throughput: {tp_reqs} requests over {conns} conns (window {window}) in \
         {tp_elapsed:.2}s = {rps:.0} req/s, hit rate {tp_hit_rate:.3}"
    );

    let mut client = TuneClient::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    client.drain().expect("drain stats connection");
    server.shutdown().expect("shutdown");

    let zipf_reqs = latency_reqs as u64 + tp_reqs;
    let zipf_hits = hit_lat.len() as u64 + tp_hits;
    let hit_rate = zipf_hits as f64 / zipf_reqs as f64;
    println!(
        "combined Zipf hit rate {hit_rate:.3} over {zipf_reqs} requests; \
         server counters: {} tunes, {} coalesced, {} evictions, {} errors",
        stats.tunes, stats.coalesced, stats.cache_evictions, stats.errors
    );
    assert_eq!(stats.errors, 0, "no request may fail: {stats:?}");
    assert!(
        stats.cache_evictions > 0,
        "capacity {capacity} < {topologies} keys must evict: {stats:?}"
    );
    if !quick {
        assert!(
            hit_rate >= 0.9,
            "Zipf({zipf_s}) over {topologies} keys at capacity {capacity} \
             must stay >=90% warm, got {hit_rate:.3}"
        );
    }

    let manifest = RunManifest::capture(
        "hbar_serve_warm_path",
        SEED,
        if quick {
            "TunerConfig::default per request; --quick smoke workload"
        } else {
            "TunerConfig::default per request; full Zipf workload"
        },
        "loopback TCP, synthetic jittered dual-quad-derived fleet (P in {8, 12, 16})",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        ("benchmark", Value::Str("hbar_serve_warm_path".to_string())),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str(
                "local tune_hybrid_costs of the request's cost matrices (what every \
                 caller paid before the service existed)"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "warm cache hit served over loopback TCP: sharded LRU keyed by the \
                 versioned cost fingerprint, request coalescing, bounded tuner pool"
                    .to_string(),
            ),
        ),
        (
            "statistic",
            Value::Str(
                "row estimates: median seconds with 95% nonparametric CI, adaptive reps \
                 (warm hits timed in batches of 32). Warm p99: nearest-rank percentile \
                 over hit-flagged synchronous round trips with a 400-resample \
                 percentile-bootstrap CI. Throughput: total pipelined requests over \
                 barrier-to-join wall clock"
                    .to_string(),
            ),
        ),
        ("results", Value::Array(rows)),
        (
            "serve",
            obj(vec![
                ("topologies", Value::UInt(topologies as u64)),
                ("cache_capacity", Value::UInt(capacity as u64)),
                ("cache_shards", Value::UInt(shards as u64)),
                ("workers", Value::UInt(workers as u64)),
                ("zipf_s", Value::Float(zipf_s)),
                ("hit_rate", Value::Float(hit_rate)),
                ("zipf_requests", Value::UInt(zipf_reqs)),
                (
                    "parity",
                    obj(vec![
                        ("checked", Value::UInt(parity_checked as u64)),
                        ("stride", Value::UInt(parity_stride as u64)),
                        ("cold_tunes", Value::UInt(topologies as u64)),
                        ("cold_pass_s", Value::Float(cold_s)),
                        (
                            "semantics",
                            Value::Str(
                                "every checked response is byte-identical to a local \
                                 tune of the same request (asserted, not scored)"
                                    .to_string(),
                            ),
                        ),
                    ]),
                ),
                (
                    "latency",
                    obj(vec![
                        ("requests", Value::UInt(latency_reqs as u64)),
                        ("hit_rate", Value::Float(lat_hit_rate)),
                        ("warm_p99_s", Value::Float(warm_p99)),
                        ("warm_p99_ci_lo", Value::Float(warm_p99_ci.lo)),
                        ("warm_p99_ci_hi", Value::Float(warm_p99_ci.hi)),
                        ("warm_hit", warm.to_value()),
                        ("miss_samples", Value::UInt(miss_lat.len() as u64)),
                        (
                            "miss_median_s",
                            if miss_lat.is_empty() {
                                Value::Null
                            } else {
                                Value::Float(hbar_bench::stats::median(&miss_lat))
                            },
                        ),
                    ]),
                ),
                (
                    "throughput",
                    obj(vec![
                        ("conns", Value::UInt(conns as u64)),
                        ("window", Value::UInt(window as u64)),
                        ("requests", Value::UInt(tp_reqs)),
                        ("seconds", Value::Float(tp_elapsed)),
                        ("rps", Value::Float(rps)),
                        ("hit_rate", Value::Float(tp_hit_rate)),
                    ]),
                ),
                ("stats", stats.to_value()),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", args.out.display());
}
