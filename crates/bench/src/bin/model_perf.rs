//! Model-kernel performance regression harness.
//!
//! Times the optimized algorithmic-model kernels — the blocked/scatter
//! Eq. 3 knowledge closure (`ClosureWorkspace`) and the maintained-array
//! SSS clustering — against the frozen pre-optimization copies in
//! `hbar_bench::baseline_model` across rank counts, asserts bit-parity on
//! every output (closures, cluster assignments, and tuned schedules), and
//! writes the numbers to `BENCH_model.json`.
//!
//! ```text
//! model-perf [--out FILE] [--reps N] [--quick]
//! ```
//!
//! `--quick` restricts the sweep to P = 64/256 for CI smoke runs; the full
//! sweep adds P = 1024.

use hbar_bench::baseline::tune_hybrid_costs_baseline;
use hbar_bench::baseline_model::{
    baseline_knowledge_closure, baseline_sss_clusters, BaselineBitMat,
};
use hbar_core::clustering::{try_sss_clusters_with, SssScratch, SSS_DEFAULT_SPARSENESS};
use hbar_core::compose::{tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_matrix::{BoolMatrix, ClosureWorkspace};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::metric::DistanceMetric;
use hbar_topo::profile::TopologyProfile;
use serde::Value;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Per-call seconds: median over `reps` samples, each sample averaging
/// `batch` consecutive calls. The batch shrinks with P so the frozen
/// kernels (tens of milliseconds at P = 1024) keep the sweep short.
fn time_median<F: FnMut()>(reps: usize, batch: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// ⌈log₂ n⌉ dissemination stages: stage s sends i → (i + 2^s) mod n.
/// Knowledge saturates only at the last stage, so the closure cannot
/// coast on its early exit.
fn dissemination(n: usize) -> Vec<BoolMatrix> {
    let mut stages = Vec::new();
    let mut step = 1;
    while step < n {
        let mut s = BoolMatrix::zeros(n);
        for i in 0..n {
            s.set(i, (i + step) % n, true);
        }
        stages.push(s);
        step *= 2;
    }
    stages
}

fn main() {
    let mut out = PathBuf::from("BENCH_model.json");
    let mut reps = 9usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--quick" => quick = true,
            other => panic!("unknown argument {other}"),
        }
    }
    let ranks: &[usize] = if quick { &[64, 256] } else { &[64, 256, 1024] };

    let mut closure_rows = Vec::new();
    let mut cluster_rows = Vec::new();
    let mut tune_parity = Vec::new();
    let mut ws = ClosureWorkspace::new();
    let mut scratch = SssScratch::default();

    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>8}",
        "kernel", "P", "before", "after", "speedup"
    );
    for &p in ranks {
        let batch = match p {
            0..=127 => 20,
            128..=511 => 8,
            _ => 2,
        };

        // --- Eq. 3 knowledge closure over a dissemination schedule. ---
        let stages = dissemination(p);
        let base_stages: Vec<BaselineBitMat> =
            stages.iter().map(BaselineBitMat::from_matrix).collect();

        // Both kernels must agree bit-for-bit before timings mean anything.
        let base_k = baseline_knowledge_closure(p, &base_stages);
        assert_eq!(
            base_k.to_matrix(),
            *ws.closure(p, &stages),
            "closure diverged at p={p}"
        );
        assert_eq!(
            base_k.is_all_true(),
            ws.is_barrier(p, &stages),
            "barrier verdict diverged at p={p}"
        );

        let before = time_median(reps, batch, || {
            black_box(baseline_knowledge_closure(p, black_box(&base_stages)));
        });
        let after = time_median(reps, batch, || {
            black_box(ws.closure(p, black_box(&stages)));
        });
        let speedup = before / after;
        println!(
            "{:>10} {:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x",
            "closure",
            p,
            before * 1e3,
            after * 1e3,
            speedup
        );
        closure_rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("stages", Value::UInt(stages.len() as u64)),
            ("before_s", Value::Float(before)),
            ("after_s", Value::Float(after)),
            ("speedup", Value::Float(speedup)),
        ]));

        // --- SSS clustering over a two-level machine metric. ---
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let metric = DistanceMetric::from_costs(&profile.cost);
        let members: Vec<usize> = (0..p).collect();
        let dia = metric.diameter();

        let base_clusters = baseline_sss_clusters(&metric, &members, SSS_DEFAULT_SPARSENESS, dia);
        let opt_clusters =
            try_sss_clusters_with(&metric, &members, SSS_DEFAULT_SPARSENESS, dia, &mut scratch)
                .expect("ground-truth metric is finite");
        assert_eq!(base_clusters, opt_clusters, "clusters diverged at p={p}");

        let before = time_median(reps, batch, || {
            black_box(baseline_sss_clusters(
                black_box(&metric),
                &members,
                SSS_DEFAULT_SPARSENESS,
                dia,
            ));
        });
        let after = time_median(reps, batch, || {
            black_box(
                try_sss_clusters_with(
                    black_box(&metric),
                    &members,
                    SSS_DEFAULT_SPARSENESS,
                    dia,
                    &mut scratch,
                )
                .expect("finite"),
            );
        });
        let speedup = before / after;
        println!(
            "{:>10} {:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x",
            "sss",
            p,
            before * 1e3,
            after * 1e3,
            speedup
        );
        cluster_rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("clusters", Value::UInt(base_clusters.len() as u64)),
            ("before_s", Value::Float(before)),
            ("after_s", Value::Float(after)),
            ("speedup", Value::Float(speedup)),
        ]));

        // --- Tuned-schedule parity: the end-to-end tune over the reworked
        // kernels must still emit the seed-era schedule. The frozen tuner is
        // quadratic-ish, so the comparison stops at P = 256.
        if p <= 256 {
            let cfg = TunerConfig::default();
            let mut eval = CostEvaluator::new(cfg.cost_params);
            let base = tune_hybrid_costs_baseline(&profile.cost, &members, &cfg);
            let opt = tune_hybrid_costs_with(&profile.cost, &members, &cfg, &mut eval);
            assert_eq!(base.schedule, opt.schedule, "schedule diverged at p={p}");
            assert_eq!(
                base.predicted_cost.to_bits(),
                opt.predicted_cost.to_bits(),
                "prediction diverged at p={p}"
            );
            tune_parity.push(Value::UInt(p as u64));
        }
    }

    let doc = obj(vec![
        ("benchmark", Value::Str("model_kernels".to_string())),
        (
            "before",
            Value::Str(
                "frozen pre-optimization kernels (hbar_bench::baseline_model): \
                 per-set-bit row-OR product, allocating per-stage closure, \
                 min_by SSS over recomputed distances"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "ClosureWorkspace: CSR scatter/row-OR adaptive Eq. 3 with \
                 row-saturation early exit; SSS with maintained \
                 nearest-center arrays over contiguous metric rows"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("P/8 dual quad-core nodes, round-robin mapping".to_string()),
        ),
        ("reps_per_sample", Value::UInt(reps as u64)),
        (
            "statistic",
            Value::Str("median wall-clock seconds".to_string()),
        ),
        ("closure", Value::Array(closure_rows)),
        ("clustering", Value::Array(cluster_rows)),
        ("tune_parity_ranks", Value::Array(tune_parity)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, json + "\n").expect("write BENCH_model.json");
    println!("wrote {}", out.display());
}
