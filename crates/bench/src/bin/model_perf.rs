//! Model-kernel performance regression harness.
//!
//! Times the optimized algorithmic-model kernels — the blocked/scatter
//! Eq. 3 knowledge closure (`ClosureWorkspace`) and the maintained-array
//! SSS clustering — against the frozen pre-optimization copies in
//! `hbar_bench::baseline_model` across rank counts, asserts bit-parity on
//! every output (closures, cluster assignments, and tuned schedules), and
//! writes interval estimates (median + 95% nonparametric CI, adaptive rep
//! counts) and a reproducibility manifest to `BENCH_model.json`.
//!
//! ```text
//! model-perf [--out FILE] [--reps N] [--quick]
//! ```
//!
//! `--quick` restricts the sweep to P = 64/256 for CI smoke runs (the
//! full sweep adds P = 1024) and shrinks the adaptive rep budget.

use hbar_bench::baseline::tune_hybrid_costs_baseline;
use hbar_bench::baseline_model::{
    baseline_knowledge_closure, baseline_sss_clusters, BaselineBitMat,
};
use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{
    ratio_interval, time_estimate, Estimate, EstimatorSettings, Interval, RunManifest,
};
use hbar_core::clustering::{try_sss_clusters_with, SssScratch, SSS_DEFAULT_SPARSENESS};
use hbar_core::compose::{tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_matrix::{BoolMatrix, ClosureWorkspace};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::metric::DistanceMetric;
use hbar_topo::profile::TopologyProfile;
use serde::{Serialize, Value};
use std::hint::black_box;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One harness row: point estimates for humans, intervals for rigor.
fn row_entries(
    before: &Estimate,
    after: &Estimate,
    speedup: f64,
    speedup_ci: Interval,
) -> Vec<(&'static str, Value)> {
    vec![
        ("before_s", Value::Float(before.median)),
        ("after_s", Value::Float(after.median)),
        ("speedup", Value::Float(speedup)),
        ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
        ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
        ("before", before.to_value()),
        ("after", after.to_value()),
    ]
}

/// ⌈log₂ n⌉ dissemination stages: stage s sends i → (i + 2^s) mod n.
/// Knowledge saturates only at the last stage, so the closure cannot
/// coast on its early exit.
fn dissemination(n: usize) -> Vec<BoolMatrix> {
    let mut stages = Vec::new();
    let mut step = 1;
    while step < n {
        let mut s = BoolMatrix::zeros(n);
        for i in 0..n {
            s.set(i, (i + step) % n, true);
        }
        stages.push(s);
        step *= 2;
    }
    stages
}

fn main() {
    let args = PerfArgs::parse("BENCH_model.json");
    let adaptive = if args.quick {
        args.adaptive(3, 5)
    } else {
        args.adaptive(7, 25)
    };
    let ranks: &[usize] = if args.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };

    let mut closure_rows = Vec::new();
    let mut cluster_rows = Vec::new();
    let mut tune_parity = Vec::new();
    let mut ws = ClosureWorkspace::new();
    let mut scratch = SssScratch::default();

    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>8} {:>18} {:>7}",
        "kernel", "P", "before", "after", "speedup", "95% CI", "reps"
    );
    for &p in ranks {
        let batch = match p {
            0..=127 => 20,
            128..=511 => 8,
            _ => 2,
        };

        // --- Eq. 3 knowledge closure over a dissemination schedule. ---
        let stages = dissemination(p);
        let base_stages: Vec<BaselineBitMat> =
            stages.iter().map(BaselineBitMat::from_matrix).collect();

        // Both kernels must agree bit-for-bit before timings mean anything.
        let base_k = baseline_knowledge_closure(p, &base_stages);
        assert_eq!(
            base_k.to_matrix(),
            *ws.closure(p, &stages),
            "closure diverged at p={p}"
        );
        assert_eq!(
            base_k.is_all_true(),
            ws.is_barrier(p, &stages),
            "barrier verdict diverged at p={p}"
        );

        let before = time_estimate(&adaptive, batch, || {
            black_box(baseline_knowledge_closure(p, black_box(&base_stages)));
        });
        let after = time_estimate(&adaptive, batch, || {
            black_box(ws.closure(p, black_box(&stages)));
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        println!(
            "{:>10} {:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x [{:>6.2}, {:>6.2}] {:>3}/{:<3}",
            "closure",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            speedup_ci.lo,
            speedup_ci.hi,
            before.n,
            after.n
        );
        let mut entries = vec![
            ("ranks", Value::UInt(p as u64)),
            ("stages", Value::UInt(stages.len() as u64)),
        ];
        entries.extend(row_entries(&before, &after, speedup, speedup_ci));
        closure_rows.push(obj(entries));

        // --- SSS clustering over a two-level machine metric. ---
        let machine = MachineSpec::new(p.div_ceil(8), 2, 4);
        let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
        let metric = DistanceMetric::from_costs(&profile.cost);
        let members: Vec<usize> = (0..p).collect();
        let dia = metric.diameter();

        let base_clusters = baseline_sss_clusters(&metric, &members, SSS_DEFAULT_SPARSENESS, dia);
        let opt_clusters =
            try_sss_clusters_with(&metric, &members, SSS_DEFAULT_SPARSENESS, dia, &mut scratch)
                .expect("ground-truth metric is finite");
        assert_eq!(base_clusters, opt_clusters, "clusters diverged at p={p}");

        let before = time_estimate(&adaptive, batch, || {
            black_box(baseline_sss_clusters(
                black_box(&metric),
                &members,
                SSS_DEFAULT_SPARSENESS,
                dia,
            ));
        });
        let after = time_estimate(&adaptive, batch, || {
            black_box(
                try_sss_clusters_with(
                    black_box(&metric),
                    &members,
                    SSS_DEFAULT_SPARSENESS,
                    dia,
                    &mut scratch,
                )
                .expect("finite"),
            );
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        println!(
            "{:>10} {:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x [{:>6.2}, {:>6.2}] {:>3}/{:<3}",
            "sss",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            speedup_ci.lo,
            speedup_ci.hi,
            before.n,
            after.n
        );
        let mut entries = vec![
            ("ranks", Value::UInt(p as u64)),
            ("clusters", Value::UInt(base_clusters.len() as u64)),
        ];
        entries.extend(row_entries(&before, &after, speedup, speedup_ci));
        cluster_rows.push(obj(entries));

        // --- Tuned-schedule parity: the end-to-end tune over the reworked
        // kernels must still emit the seed-era schedule. The frozen tuner is
        // quadratic-ish, so the comparison stops at P = 256.
        if p <= 256 {
            let cfg = TunerConfig::default();
            let mut eval = CostEvaluator::new(cfg.cost_params);
            let base = tune_hybrid_costs_baseline(&profile.cost, &members, &cfg);
            let opt = tune_hybrid_costs_with(&profile.cost, &members, &cfg, &mut eval);
            assert_eq!(base.schedule, opt.schedule, "schedule diverged at p={p}");
            assert_eq!(
                base.predicted_cost.to_bits(),
                opt.predicted_cost.to_bits(),
                "prediction diverged at p={p}"
            );
            tune_parity.push(Value::UInt(p as u64));
        }
    }

    let manifest = RunManifest::capture(
        "model_kernels",
        0, // deterministic kernels over ground-truth inputs, no noise
        "dissemination-stage closure + SSS over ground-truth metrics; samples \
         average size-scaled batches (20/8/2 calls at P=64/256/1024)",
        "P/8 dual quad-core nodes, round-robin mapping",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        ("benchmark", Value::Str("model_kernels".to_string())),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str(
                "frozen pre-optimization kernels (hbar_bench::baseline_model): \
                 per-set-bit row-OR product, allocating per-stage closure, \
                 min_by SSS over recomputed distances"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "ClosureWorkspace: CSR scatter/row-OR adaptive Eq. 3 with \
                 row-saturation early exit; SSS with maintained \
                 nearest-center arrays over contiguous metric rows"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("P/8 dual quad-core nodes, round-robin mapping".to_string()),
        ),
        (
            "statistic",
            Value::Str(
                "median wall-clock seconds with 95% binomial order-statistic CI; \
                 reps adaptive until the relative CI half-width meets the target \
                 or the budget is spent (see manifest.estimator)"
                    .to_string(),
            ),
        ),
        ("closure", Value::Array(closure_rows)),
        ("clustering", Value::Array(cluster_rows)),
        ("tune_parity_ranks", Value::Array(tune_parity)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_model.json");
    println!("wrote {}", args.out.display());
}
