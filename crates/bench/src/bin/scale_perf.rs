//! Large-P memory-wall regression harness.
//!
//! Gates the class-compressed cost model and the out-of-core scatter
//! against the dense pipeline and records the results to
//! `BENCH_scale.json`:
//!
//! 1. **Bit-parity** — at P ≤ 256 the compressed clustered sweep must
//!    reproduce the dense clustered sweep exactly: `to_dense()` is
//!    bit-identical entry by entry, the cost fingerprints agree, and a
//!    full tune over either backing emits the identical schedule and
//!    prediction (asserted before any timing is reported).
//! 2. **Cold-tune timing** — dense vs compressed end-to-end tunes
//!    (clustering metric build included — the dense path allocates an
//!    O(|P|²) distance matrix, the compressed path aliases the class
//!    grid zero-copy) per rank count as interval estimates, with the
//!    resident cost-model bytes of both backings recorded alongside.
//! 3. **Headline** — the P = 16384 compressed clustered profile and
//!    warm tune under `--mem-budget` (default 2 GiB): the scatter runs
//!    tile-at-a-time against a staging budget of one eighth of the
//!    memory budget (256 MiB at the default, which is less than the
//!    512 MiB class grid, so the spill path demonstrably executes), and
//!    the kernel's own peak-RSS gauge (`VmHWM`) is recorded and gated
//!    against the budget. The dense pipeline would need 4 GiB for the
//!    O/L matrices alone before tuning could even start.
//!
//! ```text
//! scale-perf [--out FILE] [--reps N] [--quick] [--skip-4096] [--mem-budget BYTES]
//! ```
//!
//! `--quick` shrinks the sweep (parity at P = 8/64, timing at P = 256,
//! headline at P = 2048) for CI smoke runs; pairing it with a tiny
//! `--mem-budget` forces every scatter tile through the spill
//! directory, which is exactly what the CI smoke does. The peak-RSS
//! gate only applies when the budget is ≥ 1 GiB (a deliberately tiny
//! budget proves spilling, not residency).

use hbar_bench::perf_cli::PerfArgs;
use hbar_bench::stats::{
    peak_rss_bytes, ratio_interval, time_estimate, EstimatorSettings, RunManifest,
};
use hbar_core::compose::{tune_hybrid_costs, tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::CostEvaluator;
use hbar_simnet::profiling::ProfilingConfig;
use hbar_simnet::sweep::{measure_profile_clustered, SweepConfig};
use hbar_simnet::{measure_profile_clustered_compressed, NoiseModel, SpillConfig};
use hbar_topo::cost::CostProvider;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use serde::{Serialize, Value};
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 42;

/// Default memory budget: 2 GiB, the headline residency claim.
const DEFAULT_MEM_BUDGET: u64 = 2 << 30;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Dual quad-core nodes (cluster-A-derived), enough of them for `p`.
fn machine_for(p: usize) -> MachineSpec {
    MachineSpec::new(p.div_ceil(8), 2, 4)
}

/// A scratch spill directory unique to this process.
fn spill_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hbar-scale-{}-{tag}", std::process::id()))
}

/// Dense-equivalent resident bytes of a `p`-rank cost model: two
/// `p × p` f64 matrices (O and L).
fn dense_bytes(p: usize) -> u64 {
    2 * (p as u64) * (p as u64) * 8
}

fn main() {
    let (args, extras) = PerfArgs::parse_with("BENCH_scale.json", &["mem-budget"]);
    let quick = args.quick;
    let mem_budget: u64 = extras
        .get("mem-budget")
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&n: &u64| n > 0)
                .expect("--mem-budget needs a positive byte count")
        })
        .unwrap_or(DEFAULT_MEM_BUDGET);
    // The scatter's staging budget: tiles beyond this spill to disk.
    // One eighth of the memory budget keeps staged tiles comfortably
    // below the ceiling while still forcing spills whenever the grid is
    // larger than budget/8 (512 MiB grid vs 256 MiB staging at P=16384
    // under the default budget).
    let staging_budget = (mem_budget / 8).max(1) as usize;
    let adaptive = if quick {
        args.adaptive(2, 3)
    } else {
        args.adaptive(3, 5)
    };
    let noise = NoiseModel::realistic(SEED);
    let mapping = RankMapping::Block;
    let profiling = if quick {
        ProfilingConfig::fast()
    } else {
        ProfilingConfig::default()
    };
    let sweep_cfg = SweepConfig {
        profiling,
        ..if quick {
            SweepConfig::fast()
        } else {
            SweepConfig::default()
        }
    };
    let tuner_cfg = TunerConfig::default();

    let parity_ranks: &[usize] = if quick { &[8, 64] } else { &[8, 64, 256] };
    let mut timing_ranks: Vec<usize> = if quick {
        vec![256]
    } else {
        vec![256, 1024, 4096]
    };
    if args.skip_4096 {
        timing_ranks.retain(|&p| p != 4096);
    }
    let headline_p = if quick { 2048 } else { 16384 };

    // 1. Bit-parity gate: the compressed clustered sweep against the
    // dense clustered sweep, same machine / mapping / noise / config.
    let mut parity_rows = Vec::new();
    for &p in parity_ranks {
        let machine = machine_for(p);
        let (dense_profile, dense_report) =
            measure_profile_clustered(&machine, &mapping, p, noise, &sweep_cfg);
        let spill = SpillConfig::in_memory(spill_dir(&format!("parity{p}")));
        let (model, comp_report, _) =
            measure_profile_clustered_compressed(&machine, &mapping, p, noise, &sweep_cfg, &spill)
                .expect("compressed sweep at parity scale");
        assert_eq!(
            dense_report.measurements, comp_report.measurements,
            "P={p}: the two sweeps must execute the same measurement plan"
        );
        let roundtrip = model.to_dense();
        for (idx, (x, y)) in roundtrip
            .o
            .as_slice()
            .iter()
            .zip(dense_profile.cost.o.as_slice())
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "P={p}: O diverged at entry {idx}");
        }
        for (idx, (x, y)) in roundtrip
            .l
            .as_slice()
            .iter()
            .zip(dense_profile.cost.l.as_slice())
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "P={p}: L diverged at entry {idx}");
        }
        assert_eq!(
            model.fingerprint(),
            dense_profile.cost.fingerprint(),
            "P={p}: fingerprints diverged"
        );
        let members: Vec<usize> = (0..p).collect();
        let dense_tune = tune_hybrid_costs(&dense_profile.cost, &members, &tuner_cfg);
        let comp_tune = tune_hybrid_costs(&model, &members, &tuner_cfg);
        assert_eq!(
            dense_tune.schedule, comp_tune.schedule,
            "P={p}: tuned schedules diverged across backings"
        );
        assert_eq!(
            dense_tune.predicted_cost.to_bits(),
            comp_tune.predicted_cost.to_bits(),
            "P={p}: predictions diverged across backings"
        );
        println!(
            "parity  P={p:>4}: bit-identical over {} entries x 2 matrices, {} classes, \
             identical {}-stage tune",
            p * p,
            model.classes(),
            comp_tune.schedule.len()
        );
        parity_rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("classes", Value::UInt(model.classes() as u64)),
            ("dense_roundtrip_equal", Value::Bool(true)),
            ("fingerprint_equal", Value::Bool(true)),
            ("tune_equal", Value::Bool(true)),
        ]));
    }

    // 2. Cold-tune timing: dense vs compressed backing, clustering
    // metric build included.
    let mut timing_rows = Vec::new();
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>18} {:>7} {:>12} {:>12}",
        "P", "dense", "compressed", "speedup", "95% CI", "reps", "dense_B", "compr_B"
    );
    for &p in &timing_ranks {
        let machine = machine_for(p);
        let (profile, _) = measure_profile_clustered(&machine, &mapping, p, noise, &sweep_cfg);
        let spill = SpillConfig::in_memory(spill_dir(&format!("timing{p}")));
        let (model, _, _) =
            measure_profile_clustered_compressed(&machine, &mapping, p, noise, &sweep_cfg, &spill)
                .expect("compressed sweep at timing scale");
        assert_eq!(
            model.fingerprint(),
            profile.cost.fingerprint(),
            "P={p}: timing inputs diverged"
        );
        let members: Vec<usize> = (0..p).collect();
        // Outputs must agree before the timings mean anything.
        let dense_tune = tune_hybrid_costs(&profile.cost, &members, &tuner_cfg);
        let comp_tune = tune_hybrid_costs(&model, &members, &tuner_cfg);
        assert_eq!(
            dense_tune.schedule, comp_tune.schedule,
            "P={p}: tuned schedules diverged across backings"
        );
        let before = time_estimate(&adaptive, 1, || {
            black_box(tune_hybrid_costs(
                black_box(&profile.cost),
                &members,
                &tuner_cfg,
            ));
        });
        let after = time_estimate(&adaptive, 1, || {
            black_box(tune_hybrid_costs(black_box(&model), &members, &tuner_cfg));
        });
        let speedup = before.median / after.median;
        let speedup_ci = ratio_interval(&before, &after);
        println!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>7.2}x [{:>6.2}, {:>6.2}] {:>3}/{:<3} {:>12} {:>12}",
            p,
            before.median * 1e3,
            after.median * 1e3,
            speedup,
            speedup_ci.lo,
            speedup_ci.hi,
            before.n,
            after.n,
            dense_bytes(p),
            model.heap_bytes()
        );
        timing_rows.push(obj(vec![
            ("ranks", Value::UInt(p as u64)),
            ("dense_s", Value::Float(before.median)),
            ("compressed_s", Value::Float(after.median)),
            ("speedup", Value::Float(speedup)),
            ("speedup_ci_lo", Value::Float(speedup_ci.lo)),
            ("speedup_ci_hi", Value::Float(speedup_ci.hi)),
            ("dense", before.to_value()),
            ("compressed", after.to_value()),
            ("dense_model_bytes", Value::UInt(dense_bytes(p))),
            (
                "compressed_model_bytes",
                Value::UInt(model.heap_bytes() as u64),
            ),
            ("classes", Value::UInt(model.classes() as u64)),
            ("stages", Value::UInt(comp_tune.schedule.len() as u64)),
        ]));
    }

    // 3. Headline: the compressed clustered profile and warm tune at
    // P = 16384 (2048 under --quick) inside the memory budget. Single
    // timed executions — at this scale the sweep is the benchmark, and
    // it is seed-deterministic.
    let p = headline_p;
    let machine = machine_for(p);
    let spill = SpillConfig::budgeted(spill_dir("headline"), staging_budget);
    let profile_started = Instant::now();
    let (model, report, spill_report) =
        measure_profile_clustered_compressed(&machine, &mapping, p, noise, &sweep_cfg, &spill)
            .expect("headline compressed sweep");
    let profile_s = profile_started.elapsed().as_secs_f64();
    let grid_bytes = model.heap_bytes();
    let spill_forced = grid_bytes > staging_budget;
    if spill_forced {
        assert!(
            spill_report.spilled_tiles >= 1,
            "staging budget {staging_budget} is below the {grid_bytes}-byte grid, \
             yet no tile spilled: {spill_report:?}"
        );
    }
    let members: Vec<usize> = (0..p).collect();
    let mut eval = CostEvaluator::new(tuner_cfg.cost_params);
    let tune_started = Instant::now();
    let cold_tune = tune_hybrid_costs_with(&model, &members, &tuner_cfg, &mut eval);
    let tune_s = tune_started.elapsed().as_secs_f64();
    // Warm: same evaluator, memoized scores and derived caches intact.
    let warm_started = Instant::now();
    let warm_tune = tune_hybrid_costs_with(&model, &members, &tuner_cfg, &mut eval);
    let warm_tune_s = warm_started.elapsed().as_secs_f64();
    assert_eq!(
        cold_tune.predicted_cost.to_bits(),
        warm_tune.predicted_cost.to_bits(),
        "warm tune must be bit-stable"
    );
    assert_eq!(cold_tune.schedule, warm_tune.schedule);
    let peak = peak_rss_bytes();
    // The residency gate: only meaningful for real budgets — a tiny
    // --mem-budget exists to prove spilling, and the process image
    // alone exceeds it.
    let gate_budget = mem_budget >= 1 << 30;
    let budget_respected = match peak {
        Some(rss) => rss <= mem_budget,
        None => false,
    };
    if gate_budget {
        let rss = peak.expect("peak-RSS gauge required for the headline claim");
        assert!(
            rss <= mem_budget,
            "peak RSS {rss} exceeds the {mem_budget}-byte budget"
        );
    }
    println!(
        "P={p}: compressed profile {profile_s:.2}s ({} classes, {} measurements, \
         {}/{} tiles spilled, {} spill bytes), tune {tune_s:.2}s (warm {warm_tune_s:.3}s, \
         {} stages, predicted {:.1} us), model {} B vs dense {} B, peak RSS {:?} \
         (budget {mem_budget})",
        report.pair_classes + report.diag_classes,
        report.measurements,
        spill_report.spilled_tiles,
        spill_report.tiles,
        spill_report.spill_bytes,
        warm_tune.schedule.len(),
        warm_tune.predicted_cost * 1e6,
        grid_bytes,
        dense_bytes(p),
        peak
    );
    let headline = obj(vec![
        ("ranks", Value::UInt(p as u64)),
        ("profile_s", Value::Float(profile_s)),
        ("tune_s", Value::Float(tune_s)),
        ("warm_tune_s", Value::Float(warm_tune_s)),
        ("predicted_cost_s", Value::Float(warm_tune.predicted_cost)),
        ("stages", Value::UInt(warm_tune.schedule.len() as u64)),
        (
            "signals",
            Value::UInt(warm_tune.schedule.total_signals() as u64),
        ),
        ("pair_classes", Value::UInt(report.pair_classes as u64)),
        ("diag_classes", Value::UInt(report.diag_classes as u64)),
        ("measurements", Value::UInt(report.measurements as u64)),
        ("compressed_model_bytes", Value::UInt(grid_bytes as u64)),
        ("dense_equivalent_bytes", Value::UInt(dense_bytes(p))),
        ("mem_budget_bytes", Value::UInt(mem_budget)),
        ("staging_budget_bytes", Value::UInt(staging_budget as u64)),
        (
            "peak_rss_bytes",
            match peak {
                Some(rss) => Value::UInt(rss),
                None => Value::Null,
            },
        ),
        ("budget_respected", Value::Bool(budget_respected)),
        ("spill_forced", Value::Bool(spill_forced)),
        (
            "spill",
            obj(vec![
                ("tiles", Value::UInt(spill_report.tiles as u64)),
                (
                    "spilled_tiles",
                    Value::UInt(spill_report.spilled_tiles as u64),
                ),
                (
                    "staged_peak_bytes",
                    Value::UInt(spill_report.staged_peak_bytes as u64),
                ),
                ("spill_bytes", Value::UInt(spill_report.spill_bytes)),
                ("tile_rows", Value::UInt(spill_report.tile_rows as u64)),
            ]),
        ),
    ]);

    // Captured after the workload, so manifest.peak_rss_bytes gauges
    // the whole run.
    let manifest = RunManifest::capture(
        "scale_compressed",
        SEED,
        if quick {
            "ProfilingConfig::fast (--quick); SweepConfig::fast classing"
        } else {
            "ProfilingConfig::default (paper §IV-A); SweepConfig::default classing"
        },
        "dual quad-core nodes (cluster-A-derived), block placement",
        EstimatorSettings::for_adaptive(&adaptive),
    );
    let doc = obj(vec![
        ("benchmark", Value::Str("scale_compressed".to_string())),
        ("manifest", manifest.to_value()),
        (
            "before",
            Value::Str(
                "dense |P|^2 cost storage: two p x p f64 matrices (O, L) plus an \
                 O(|P|^2) f64 distance matrix materialized per tune for clustering"
                    .to_string(),
            ),
        ),
        (
            "after",
            Value::Str(
                "class-compressed cost model: u16 pair-class grid + per-class value \
                 tables built straight from the sweep's classify_pairs buckets via \
                 budget-bounded scatter tiles (overflow spills to disk, merged \
                 deterministically by tile id); the clustering metric aliases the \
                 grid zero-copy"
                    .to_string(),
            ),
        ),
        (
            "machine",
            Value::Str("dual quad-core nodes (cluster-A-derived), block placement".to_string()),
        ),
        (
            "statistic",
            Value::Str(
                "cold-tune rows: median wall-clock seconds with 95% binomial \
                 order-statistic CI, adaptive reps (see manifest.estimator); the \
                 headline profile/tune are single timed executions of \
                 seed-deterministic work"
                    .to_string(),
            ),
        ),
        (
            "parity_semantics",
            Value::Str(
                "compressed clustered sweep vs dense clustered sweep of the same \
                 machine, mapping, noise seed, and schedule: to_dense() bit-equal \
                 entrywise, cost fingerprints equal, full tunes emit identical \
                 schedules and bit-identical predictions (asserted before timing)"
                    .to_string(),
            ),
        ),
        ("mem_budget_bytes", Value::UInt(mem_budget)),
        ("parity", Value::Array(parity_rows)),
        ("cold_tune", Value::Array(timing_rows)),
        ("headline", headline),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&args.out, json + "\n").expect("write BENCH_scale.json");
    println!("wrote {}", args.out.display());
}
