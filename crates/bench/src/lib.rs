//! Reproduction harness for every figure of Meyer & Elster (IPDPS 2011).
//!
//! The paper's evaluation consists of Figures 5–11:
//!
//! | Figure | Content | Module |
//! |---|---|---|
//! | 5 | predicted vs measured D/T/L, cluster A (8 × dual quad) | [`validation`] |
//! | 6 | predicted vs measured D/T/L, cluster B (10 × dual hex) | [`validation`] |
//! | 7 | per-algorithm overlays, cluster A | [`validation`] |
//! | 8 | per-algorithm overlays, cluster B | [`validation`] |
//! | 9 | `L`-matrix heat map of one dual quad-core node | [`heatmap`] |
//! | 10 | hybrid construction walkthrough, 3 nodes / 22 procs | [`construction`] |
//! | 11 | hybrid vs MPI barrier on both clusters | [`performance`] |
//!
//! Every experiment follows the paper's methodology end to end: profiles
//! are *measured* on the noisy simulator by the §IV-A benchmarks (never
//! read from the ground truth), predictions come from the Eq. 1–3 model,
//! and measurements come from executing compiled schedules on the same
//! simulated fabric.

pub mod ablation;
pub mod baseline;
pub mod baseline_engine;
pub mod baseline_model;
pub mod baseline_profile;
pub mod construction;
pub mod context;
pub mod data;
pub mod delay;
pub mod heatmap;
pub mod perf_cli;
pub mod performance;
pub mod plot;
pub mod stats;
pub mod validation;

pub use context::ExperimentContext;
pub use data::{Series, SeriesGroup};
