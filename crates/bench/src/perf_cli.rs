//! The one argument parser shared by the four `*-perf` bins.
//!
//! Before this module each bin carried its own copy-pasted
//! `--out`/`--reps`/`--quick` loop; they have a single flag vocabulary
//! now:
//!
//! ```text
//! *-perf [--out FILE] [--reps N] [--quick] [--skip-4096]
//! ```
//!
//! `--reps` sets the *adaptive rep budget* (the most samples any single
//! measurement may draw — sampling stops earlier once the CI is tight),
//! `--quick` selects each bin's reduced CI-smoke configuration, and
//! `--skip-4096` is honored by `profile-perf` and ignored by the rest.

use crate::stats::AdaptiveConfig;
use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed command line of a `*-perf` bin.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfArgs {
    /// Output document path (each bin's `BENCH_*.json` by default).
    pub out: PathBuf,
    /// Adaptive rep budget override (`--reps`).
    pub reps: Option<usize>,
    /// Reduced CI-smoke configuration (`--quick`).
    pub quick: bool,
    /// Skip the P = 4096 headline run (`--skip-4096`).
    pub skip_4096: bool,
}

impl PerfArgs {
    /// Parses the process arguments, with `default_out` as the output
    /// path when `--out` is absent.
    ///
    /// # Panics
    /// Panics (with the same messages the bins have always used) on an
    /// unknown flag or a malformed value.
    pub fn parse(default_out: &str) -> PerfArgs {
        PerfArgs::parse_from(std::env::args().skip(1), default_out)
    }

    /// [`PerfArgs::parse`] over an explicit argument stream (testable).
    ///
    /// # Panics
    /// Panics on an unknown flag or a malformed value.
    pub fn parse_from(args: impl Iterator<Item = String>, default_out: &str) -> PerfArgs {
        let (parsed, _) = PerfArgs::parse_from_with(args, default_out, &[]);
        parsed
    }

    /// [`PerfArgs::parse`] plus a bin-specific flag vocabulary: each
    /// name in `extra` (without the `--`) is accepted as a value flag
    /// and returned verbatim in the map. `serve-perf` uses this for its
    /// workload knobs without re-rolling `--out/--reps/--quick`.
    ///
    /// # Panics
    /// As [`PerfArgs::parse`], for flags in neither vocabulary.
    pub fn parse_with(default_out: &str, extra: &[&str]) -> (PerfArgs, HashMap<String, String>) {
        PerfArgs::parse_from_with(std::env::args().skip(1), default_out, extra)
    }

    /// [`PerfArgs::parse_with`] over an explicit argument stream.
    ///
    /// # Panics
    /// Panics on an unknown flag or a malformed value.
    pub fn parse_from_with(
        args: impl Iterator<Item = String>,
        default_out: &str,
        extra: &[&str],
    ) -> (PerfArgs, HashMap<String, String>) {
        let mut parsed = PerfArgs {
            out: PathBuf::from(default_out),
            reps: None,
            quick: false,
            skip_4096: false,
        };
        let mut extras = HashMap::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--out" => parsed.out = PathBuf::from(args.next().expect("--out needs a path")),
                "--reps" => {
                    parsed.reps = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .expect("--reps needs a positive integer"),
                    );
                }
                "--quick" => parsed.quick = true,
                "--skip-4096" => parsed.skip_4096 = true,
                other => match other.strip_prefix("--").filter(|n| extra.contains(n)) {
                    Some(name) => {
                        let v = args
                            .next()
                            .unwrap_or_else(|| panic!("--{name} needs a value"));
                        extras.insert(name.to_string(), v);
                    }
                    None => panic!("unknown argument {other}"),
                },
            }
        }
        (parsed, extras)
    }

    /// The adaptive measurement policy this command line asks for:
    /// `--reps` overrides the budget (and pulls the floor down with it
    /// when smaller), everything else keeps the bin's defaults.
    pub fn adaptive(&self, default_min: usize, default_max: usize) -> AdaptiveConfig {
        let max = self.reps.unwrap_or(default_max);
        AdaptiveConfig::with_budget(default_min.min(max), max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> impl Iterator<Item = String> {
        parts
            .iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_and_overrides() {
        let d = PerfArgs::parse_from(argv(&[]), "BENCH_x.json");
        assert_eq!(d.out, PathBuf::from("BENCH_x.json"));
        assert_eq!(d.reps, None);
        assert!(!d.quick && !d.skip_4096);

        let p = PerfArgs::parse_from(
            argv(&[
                "--quick",
                "--reps",
                "7",
                "--out",
                "/tmp/o.json",
                "--skip-4096",
            ]),
            "BENCH_x.json",
        );
        assert_eq!(p.out, PathBuf::from("/tmp/o.json"));
        assert_eq!(p.reps, Some(7));
        assert!(p.quick && p.skip_4096);
    }

    #[test]
    fn reps_budget_pulls_the_floor_down() {
        let p = PerfArgs::parse_from(argv(&["--reps", "3"]), "o");
        let cfg = p.adaptive(10, 50);
        assert_eq!((cfg.min_reps, cfg.max_reps), (3, 3));
        let d = PerfArgs::parse_from(argv(&[]), "o");
        let cfg = d.adaptive(10, 50);
        assert_eq!((cfg.min_reps, cfg.max_reps), (10, 50));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flags_panic() {
        PerfArgs::parse_from(argv(&["--frobnicate"]), "o");
    }

    #[test]
    fn extra_vocabulary_passes_through() {
        let (p, extras) = PerfArgs::parse_from_with(
            argv(&["--quick", "--topologies", "256", "--zipf", "1.2"]),
            "BENCH_x.json",
            &["topologies", "zipf"],
        );
        assert!(p.quick);
        assert_eq!(extras.get("topologies").map(String::as_str), Some("256"));
        assert_eq!(extras.get("zipf").map(String::as_str), Some("1.2"));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn extra_vocabulary_does_not_swallow_strangers() {
        PerfArgs::parse_from_with(argv(&["--conns", "4"]), "o", &["topologies"]);
    }
}
