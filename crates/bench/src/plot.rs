//! Minimal self-contained SVG line charts.
//!
//! The paper's figures are gnuplot line charts (execution time in
//! seconds vs number of processes). [`render_svg`] draws a
//! [`SeriesGroup`] in that style — axes, tick labels, one polyline per
//! series, legend — with no dependencies, so `experiments` can emit
//! viewable figures next to the `.dat` files.

use crate::data::SeriesGroup;
use std::fmt::Write as _;

/// Plot geometry and style.
#[derive(Clone, Debug)]
pub struct PlotStyle {
    pub width: f64,
    pub height: f64,
    pub margin_left: f64,
    pub margin_bottom: f64,
    pub margin_top: f64,
    pub margin_right: f64,
    /// Stroke colours cycled per series.
    pub palette: Vec<&'static str>,
}

impl Default for PlotStyle {
    fn default() -> Self {
        PlotStyle {
            width: 640.0,
            height: 420.0,
            margin_left: 70.0,
            margin_bottom: 48.0,
            margin_top: 28.0,
            margin_right: 16.0,
            palette: vec![
                "#c0392b", "#27ae60", "#2980b9", "#8e44ad", "#d35400", "#16a085",
            ],
        }
    }
}

/// Renders a series group as an SVG document. The y axis is labelled in
/// microseconds; the x axis in process counts, matching the paper's
/// figures.
pub fn render_svg(group: &SeriesGroup, style: &PlotStyle) -> String {
    let (x_min, x_max) = group
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    let y_max = group
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max);
    let (x_min, x_max) = if x_min.is_finite() && x_max > x_min {
        (x_min, x_max)
    } else {
        (0.0, 1.0)
    };
    let y_max = if y_max > 0.0 { y_max * 1.05 } else { 1.0 };

    let plot_w = style.width - style.margin_left - style.margin_right;
    let plot_h = style.height - style.margin_top - style.margin_bottom;
    let sx = |x: f64| style.margin_left + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| style.margin_top + (1.0 - y / y_max) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
        w = style.width,
        h = style.height
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        style.width, style.height
    );
    // Title.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="18" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
        style.width / 2.0,
        xml_escape(&group.title)
    );
    // Axes.
    let x0 = style.margin_left;
    let y0 = style.margin_top + plot_h;
    let _ = writeln!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        x0 + plot_w
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{x0}" y1="{}" x2="{x0}" y2="{y0}" stroke="black"/>"#,
        style.margin_top
    );
    // Ticks: 5 on each axis.
    for t in 0..=5 {
        let fx = x_min + (x_max - x_min) * t as f64 / 5.0;
        let px = sx(fx);
        let _ = writeln!(
            svg,
            r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/>"#,
            y0 + 4.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{px}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{:.0}</text>"#,
            y0 + 18.0,
            fx
        );
        let fy = y_max * t as f64 / 5.0;
        let py = sy(fy);
        let _ = writeln!(
            svg,
            r#"<line x1="{}" y1="{py}" x2="{x0}" y2="{py}" stroke="black"/>"#,
            x0 - 4.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{:.0}</text>"#,
            x0 - 8.0,
            py + 4.0,
            fy * 1e6
        );
    }
    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle"># of processes</text>"#,
        x0 + plot_w / 2.0,
        style.height - 10.0
    );
    let _ = writeln!(
        svg,
        r#"<text x="14" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 {})">Execution time [us]</text>"#,
        style.margin_top + plot_h / 2.0,
        style.margin_top + plot_h / 2.0
    );
    // Series.
    for (idx, s) in group.series.iter().enumerate() {
        let colour = style.palette[idx % style.palette.len()];
        let mut path = String::new();
        for &(x, y) in &s.points {
            let _ = write!(path, "{},{} ", sx(x), sy(y));
        }
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="1.6"/>"#,
            path.trim_end()
        );
        // Legend entry.
        let ly = style.margin_top + 14.0 * idx as f64 + 6.0;
        let lx = x0 + plot_w - 110.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{colour}" stroke-width="2"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes the SVG to `path`, creating parent directories.
pub fn write_svg(group: &SeriesGroup, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render_svg(group, &PlotStyle::default()))
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Series;

    fn group() -> SeriesGroup {
        let mut g = SeriesGroup::new("Validation <demo>");
        let mut d = Series::new("D");
        d.push(2.0, 1e-4);
        d.push(16.0, 3e-4);
        let mut t = Series::new("T");
        t.push(2.0, 1.2e-4);
        t.push(16.0, 2e-4);
        g.series.push(d);
        g.series.push(t);
        g
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = render_svg(&group(), &PlotStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Title escaped.
        assert!(svg.contains("Validation &lt;demo&gt;"));
        assert!(!svg.contains("<demo>"));
        // Legend labels present.
        assert!(svg.contains(">D</text>"));
        assert!(svg.contains(">T</text>"));
        // Axis labels.
        assert!(svg.contains("# of processes"));
        assert!(svg.contains("Execution time [us]"));
    }

    #[test]
    fn points_map_into_plot_area() {
        let style = PlotStyle::default();
        let svg = render_svg(&group(), &style);
        // Every polyline coordinate must be inside the canvas.
        for line in svg.lines().filter(|l| l.contains("<polyline")) {
            let pts = line
                .split("points=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            for pair in pts.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let (x, y): (f64, f64) = (x.parse().unwrap(), y.parse().unwrap());
                assert!(x >= 0.0 && x <= style.width, "{x}");
                assert!(y >= 0.0 && y <= style.height, "{y}");
            }
        }
    }

    #[test]
    fn empty_group_renders_without_panic() {
        let g = SeriesGroup::new("empty");
        let svg = render_svg(&g, &PlotStyle::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn write_svg_creates_file() {
        let dir = std::env::temp_dir().join("hbar_plot_test");
        let path = dir.join("fig.svg");
        write_svg(&group(), &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
