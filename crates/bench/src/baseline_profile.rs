//! Frozen exhaustive profiling sweep — the "before" of the decomposed
//! (pair-clustered, work-stealing, distributable) sweep rework.
//!
//! This is a verbatim copy of `hbar_simnet::profiling::measure_profile`
//! as it stood when the clustered sweep landed: every one of the
//! `|P|(|P|−1)/2` pairs benchmarked individually (statically-chunked
//! rayon map), plus `|P|` diagonal tests, with the SplitMix64 per-pair
//! sub-seed scheme. It must never track later changes to the live
//! drivers — its entire value is pinning the exhaustive sweep's exact
//! numbers so `profile-perf` can assert, release after release, that
//!
//! 1. the clustered sweep in the singleton-class regime reproduces this
//!    baseline **bit for bit**, and
//! 2. the clustered sweep with topology classing stays within the
//!    recorded relative error bound of it at every matrix entry.
//!
//! The sub-seed derivation and the SplitMix64 constants are duplicated
//! here (not imported) for the same reason: if the live scheme drifts,
//! parity must *fail*, not silently follow.

use hbar_matrix::DenseMatrix;
use hbar_simnet::benchprog::PairBench;
use hbar_simnet::profiling::ProfilingConfig;
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::cost::CostMatrices;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use hbar_topo::regress::{hockney_intercept, latency_gradient};
use rayon::prelude::*;

/// Frozen copy of the SplitMix64 finalizer.
fn splitmix64_frozen(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Frozen copy of the per-pair sub-seed derivation.
pub fn pair_sub_seed_frozen(i: usize, j: usize, seed: u64) -> u64 {
    splitmix64_frozen(
        splitmix64_frozen(splitmix64_frozen(seed ^ 0x9E37_79B9_7F4A_7C15) ^ i as u64) ^ j as u64,
    )
}

/// Frozen copy of the diagonal sub-seed derivation.
pub fn diag_sub_seed_frozen(i: usize, seed: u64) -> u64 {
    splitmix64_frozen(splitmix64_frozen(seed ^ 0x000D_D1A6_u64) ^ i as u64)
}

/// Frozen copy of the §IV-A message-size schedule regression for one
/// pair: ping-pong size sweep, then burst sweep, medians regressed to
/// `(O, L)`.
fn measure_pair_frozen(bench: &mut PairBench, cfg: &ProfilingConfig) -> (f64, f64) {
    let o_points: Vec<(f64, f64)> = cfg
        .sizes
        .iter()
        .map(|&s| (s as f64, bench.one_way(s, cfg.reps)))
        .collect();
    let l_points: Vec<(f64, f64)> = (1..=cfg.max_messages)
        .map(|k| (k as f64, bench.burst(k, cfg.burst_reps)))
        .collect();
    (hockney_intercept(&o_points), latency_gradient(&l_points))
}

/// Frozen copy of the two-rank benchmark-world construction.
fn pair_bench_frozen(
    machine: &MachineSpec,
    core_a: usize,
    core_b: usize,
    noise: NoiseModel,
    sub_seed: u64,
) -> PairBench {
    let per_pair_noise = NoiseModel {
        seed: sub_seed,
        ..noise
    };
    let cfg = SimConfig {
        machine: machine.clone(),
        mapping: RankMapping::Custom(vec![core_a, core_b]),
        noise: per_pair_noise,
    };
    PairBench::new(SimWorld::new(cfg, 2))
}

/// The frozen exhaustive sweep: benchmark every pair, no classing, no
/// probes, no adaptive growth, statically-chunked parallel map.
///
/// # Panics
/// Panics if `p < 2` or the mapping cannot place `p` ranks.
pub fn measure_profile_exhaustive_baseline(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &ProfilingConfig,
) -> TopologyProfile {
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);
    let directed_pairs: Vec<(usize, usize)> = if cfg.symmetric {
        (0..p)
            .flat_map(|i| ((i + 1)..p).map(move |j| (i, j)))
            .collect()
    } else {
        (0..p)
            .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect()
    };

    let measured: Vec<(usize, usize, f64, f64)> = directed_pairs
        .par_iter()
        .map(|&(i, j)| {
            let mut bench = pair_bench_frozen(
                machine,
                cores[i],
                cores[j],
                noise,
                pair_sub_seed_frozen(i, j, noise.seed),
            );
            let (o, l) = measure_pair_frozen(&mut bench, cfg);
            (i, j, o, l)
        })
        .collect();

    let diag: Vec<f64> = (0..p)
        .into_par_iter()
        .map(|i| {
            let partner = cores[(i + 1) % p];
            let mut bench = pair_bench_frozen(
                machine,
                cores[i],
                partner,
                noise,
                diag_sub_seed_frozen(i, noise.seed),
            );
            bench.noop(cfg.noop_calls)
        })
        .collect();

    let mut o = DenseMatrix::new(p);
    let mut l = DenseMatrix::new(p);
    for (i, j, oij, lij) in measured {
        o[(i, j)] = oij;
        l[(i, j)] = lij;
        if cfg.symmetric {
            o[(j, i)] = oij;
            l[(j, i)] = lij;
        }
    }
    for (i, &oii) in diag.iter().enumerate() {
        o[(i, i)] = oii;
        l[(i, i)] = 0.0;
    }

    TopologyProfile {
        machine: machine.clone(),
        mapping: mapping.clone(),
        p,
        cost: CostMatrices { o, l },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_simnet::profiling::{diag_sub_seed, measure_profile, pair_sub_seed};

    #[test]
    fn frozen_sub_seeds_match_live_scheme() {
        for (i, j, seed) in [(0usize, 1usize, 0u64), (3, 128, 42), (4095, 17, u64::MAX)] {
            assert_eq!(pair_sub_seed_frozen(i, j, seed), pair_sub_seed(i, j, seed));
            assert_eq!(diag_sub_seed_frozen(i, seed), diag_sub_seed(i, seed));
        }
    }

    #[test]
    fn frozen_baseline_matches_live_exhaustive_sweep() {
        let machine = MachineSpec::new(2, 2, 2);
        let mapping = RankMapping::RoundRobin;
        let noise = NoiseModel::realistic(9);
        let cfg = ProfilingConfig::fast();
        let live = measure_profile(&machine, &mapping, 6, noise, &cfg);
        let frozen = measure_profile_exhaustive_baseline(&machine, &mapping, 6, noise, &cfg);
        for (a, b) in live
            .cost
            .o
            .as_slice()
            .iter()
            .zip(frozen.cost.o.as_slice())
            .chain(live.cost.l.as_slice().iter().zip(frozen.cost.l.as_slice()))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
