//! Frozen pre-rework simulation stack, kept verbatim for regression
//! measurement.
//!
//! This is the discrete-event engine, two-rank world, benchmark program
//! builders, noise sampler and `measure_profile` driver exactly as they
//! stood before the reusable zero-allocation rework of `hbar_simnet`:
//! every run constructs a fresh `Engine` (fresh `BinaryHeap`, `2p`
//! `VecDeque`s per process, a cloned `GroundTruth` and core list),
//! programs are re-cloned for every run (the engine consumes them by
//! value), the interpreter clones each instruction (forced by `Mark`'s
//! `String` label), and jitter draws go through the pre-rework Box–Muller
//! sampler (`ln` + `sqrt` + `cos` per draw). It must NOT be optimized.
//!
//! The noise sampler is injected ([`NoiseSource`]), because the perf
//! harness needs the frozen stack in two roles:
//!
//! * **timing** ([`BaselineNoise::Frozen`]) — the honest "before"
//!   wall-clock, drawing from the verbatim [`BoxMullerNoise`];
//! * **parity** ([`BaselineNoise::Shared`]) — the same engine mechanics
//!   fed the *reworked* sampler, which must reproduce the reworked
//!   engine's `TopologyProfile` bit-for-bit. Draw-for-draw identical
//!   noise isolates the engine rework: any ordering or arithmetic drift
//!   in the new engine shows up as a parity failure.

use hbar_matrix::DenseMatrix;
use hbar_simnet::noise::{NoiseModel, NoiseState};
use hbar_simnet::profiling::{diag_sub_seed, pair_sub_seed, ProfilingConfig};
use hbar_simnet::{ns_to_sec, Time};
use hbar_topo::cost::CostMatrices;
use hbar_topo::machine::{CoreId, GroundTruth, LinkClass, MachineSpec};
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use hbar_topo::regress::{hockney_intercept, latency_gradient};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The injected noise sampler (see the module docs for why the frozen
/// stack is generic over it).
pub trait NoiseSource {
    fn sample(&mut self, base_ns: Time) -> Time;
}

impl NoiseSource for NoiseState {
    #[inline]
    fn sample(&mut self, base_ns: Time) -> Time {
        NoiseState::sample(self, base_ns)
    }
}

/// The verbatim pre-rework sampler: a Box–Muller jitter draw (`ln`,
/// `sqrt` and `cos` per sample), an `f64` Bernoulli spike check and a
/// libm `round` — its cost is part of the "before" stack the perf
/// harness measures.
pub struct BoxMullerNoise {
    model: NoiseModel,
    rng: SmallRng,
}

impl BoxMullerNoise {
    pub fn new(model: NoiseModel, run_salt: u64) -> Self {
        BoxMullerNoise {
            model,
            rng: SmallRng::seed_from_u64(
                model
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(run_salt),
            ),
        }
    }
}

impl NoiseSource for BoxMullerNoise {
    fn sample(&mut self, base_ns: Time) -> Time {
        if self.model.is_deterministic() || base_ns == 0 {
            return base_ns;
        }
        let mut t = base_ns as f64;
        if self.model.jitter_sigma > 0.0 {
            t *= 1.0 + self.model.jitter_sigma * box_muller_half_normal(&mut self.rng);
        }
        if self.model.spike_prob > 0.0 && self.rng.random::<f64>() < self.model.spike_prob {
            t += exponential(&mut self.rng, self.model.spike_mean_ns);
        }
        t.round() as Time
    }
}

/// |z| for z ~ N(0, 1), via Box–Muller (the pre-rework implementation).
fn box_muller_half_normal(rng: &mut SmallRng) -> f64 {
    let u1 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.abs()
}

/// Exponentially distributed with the given mean.
fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Which sampler the frozen stack draws from (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineNoise {
    /// The verbatim pre-rework Box–Muller sampler: the honest "before"
    /// stack for wall-clock measurement.
    Frozen,
    /// The reworked shared sampler: draw-for-draw identical noise to the
    /// reworked engine, isolating engine mechanics for the bit-parity
    /// assertion.
    Shared,
}

/// One instruction of a simulated process (pre-rework layout: `Mark`
/// carries an owned `String`, so the enum is `Clone` but not `Copy`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    Issend { dst: usize, bytes: usize },
    Irecv { src: usize },
    WaitAll,
    Delay { ns: Time },
    NoOpCall,
    Mark { label: String },
}

/// A straight-line program built by value, reallocating as it grows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    pub instrs: Vec<Instr>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn issend(mut self, dst: usize) -> Self {
        self.instrs.push(Instr::Issend { dst, bytes: 0 });
        self
    }

    pub fn issend_bytes(mut self, dst: usize, bytes: usize) -> Self {
        self.instrs.push(Instr::Issend { dst, bytes });
        self
    }

    pub fn irecv(mut self, src: usize) -> Self {
        self.instrs.push(Instr::Irecv { src });
        self
    }

    pub fn wait_all(mut self) -> Self {
        self.instrs.push(Instr::WaitAll);
        self
    }

    pub fn noop_call(mut self) -> Self {
        self.instrs.push(Instr::NoOpCall);
        self
    }

    pub fn mark(mut self, label: &str) -> Self {
        self.instrs.push(Instr::Mark {
            label: label.to_string(),
        });
        self
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Resource {
    free_at: Time,
}

impl Resource {
    fn acquire(&mut self, at: Time, dur: Time) -> Time {
        let start = self.free_at.max(at);
        self.free_at = start + dur;
        self.free_at
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EventKind {
    Resume {
        proc: usize,
    },
    Arrive {
        dst: usize,
        src: usize,
        class: LinkClass,
    },
    RecvComplete {
        proc: usize,
    },
    SendComplete {
        proc: usize,
    },
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Proc {
    program: Vec<Instr>,
    pc: usize,
    outstanding: usize,
    waiting: bool,
    done: bool,
    posted: Vec<VecDeque<Time>>,
    ready: Vec<VecDeque<(Time, LinkClass)>>,
    finish: Option<Time>,
    marks: Vec<(String, Time)>,
}

/// Outcome of one baseline engine run.
pub struct EngineResult {
    pub finish: Vec<Time>,
    pub marks: Vec<Vec<(String, Time)>>,
    pub events: u64,
}

/// The pre-rework event-driven interpreter: one engine per run.
pub struct Engine<N> {
    procs: Vec<Proc>,
    cores: Vec<CoreId>,
    gt: GroundTruth,
    cpu: Vec<Resource>,
    nic_tx: Vec<Resource>,
    nic_rx: Vec<Resource>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    noise: N,
    events: u64,
}

impl<N: NoiseSource> Engine<N> {
    pub fn new(programs: Vec<Program>, cores: Vec<CoreId>, gt: GroundTruth, noise: N) -> Self {
        assert_eq!(programs.len(), cores.len(), "one core per program required");
        let p = programs.len();
        for (r, prog) in programs.iter().enumerate() {
            for ins in &prog.instrs {
                match ins {
                    Instr::Issend { dst, .. } => {
                        assert!(*dst < p, "rank {r} sends to out-of-range {dst}");
                        assert_ne!(*dst, r, "rank {r} sends to itself");
                    }
                    Instr::Irecv { src } => {
                        assert!(*src < p, "rank {r} receives from out-of-range {src}");
                        assert_ne!(*src, r, "rank {r} receives from itself");
                    }
                    _ => {}
                }
            }
        }
        let max_node = cores.iter().map(|c| c.node).max().unwrap_or(0);
        let procs = programs
            .into_iter()
            .map(|prog| Proc {
                program: prog.instrs,
                pc: 0,
                outstanding: 0,
                waiting: false,
                done: false,
                posted: vec![VecDeque::new(); p],
                ready: vec![VecDeque::new(); p],
                finish: None,
                marks: Vec::new(),
            })
            .collect();
        Engine {
            procs,
            cores,
            gt,
            cpu: vec![Resource::default(); p],
            nic_tx: vec![Resource::default(); max_node + 1],
            nic_rx: vec![Resource::default(); max_node + 1],
            queue: BinaryHeap::new(),
            seq: 0,
            noise,
            events: 0,
        }
    }

    fn schedule(&mut self, time: Time, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn link_class(&self, a: usize, b: usize) -> LinkClass {
        self.cores[a].link_class(&self.cores[b])
    }

    pub fn run(mut self) -> EngineResult {
        let p = self.procs.len();
        for r in 0..p {
            self.schedule(0, EventKind::Resume { proc: r });
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.events += 1;
            match ev.kind {
                EventKind::Resume { proc } => self.run_program(proc, ev.time),
                EventKind::Arrive { dst, src, class } => {
                    let available = if class == LinkClass::InterNode {
                        let dur = self.noise.sample(self.gt.link(class).nic_rx_ns);
                        self.nic_rx[self.cores[dst].node].acquire(ev.time, dur)
                    } else {
                        ev.time
                    };
                    if let Some(post_time) = self.procs[dst].posted[src].pop_front() {
                        self.complete_match(src, dst, class, available.max(post_time));
                    } else {
                        self.procs[dst].ready[src].push_back((available, class));
                    }
                }
                EventKind::RecvComplete { proc } | EventKind::SendComplete { proc } => {
                    let pr = &mut self.procs[proc];
                    debug_assert!(pr.outstanding > 0, "completion without outstanding request");
                    pr.outstanding -= 1;
                    if pr.waiting && pr.outstanding == 0 {
                        pr.waiting = false;
                        self.run_program(proc, ev.time);
                    }
                }
            }
        }
        assert!(
            self.procs.iter().all(|pr| pr.done),
            "baseline benchmark programs cannot deadlock"
        );
        EngineResult {
            finish: self
                .procs
                .iter()
                .map(|pr| pr.finish.expect("done implies finish"))
                .collect(),
            marks: self
                .procs
                .iter_mut()
                .map(|pr| std::mem::take(&mut pr.marks))
                .collect(),
            events: self.events,
        }
    }

    fn complete_match(&mut self, src: usize, dst: usize, class: LinkClass, at: Time) {
        let dur = self.noise.sample(self.gt.link(class).cpu_recv_ns);
        let done = self.cpu[dst].acquire(at, dur);
        self.schedule(done, EventKind::RecvComplete { proc: dst });
        let ack = self.noise.sample(self.gt.link(class).wire_ns);
        self.schedule(done + ack, EventKind::SendComplete { proc: src });
    }

    fn run_program(&mut self, proc: usize, now: Time) {
        let mut now = now;
        loop {
            let pr = &self.procs[proc];
            if pr.done {
                return;
            }
            if pr.pc >= pr.program.len() {
                let pr = &mut self.procs[proc];
                if pr.outstanding == 0 {
                    pr.done = true;
                    pr.finish = Some(now);
                } else {
                    pr.waiting = true;
                }
                return;
            }
            let instr = pr.program[pr.pc].clone();
            match instr {
                Instr::Delay { ns } => {
                    self.procs[proc].pc += 1;
                    self.schedule(now + ns, EventKind::Resume { proc });
                    return;
                }
                Instr::Mark { label } => {
                    self.procs[proc].marks.push((label, now));
                    self.procs[proc].pc += 1;
                }
                Instr::NoOpCall => {
                    let dur = self.noise.sample(self.gt.call_overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                }
                Instr::WaitAll => {
                    if self.procs[proc].outstanding == 0 {
                        self.procs[proc].pc += 1;
                    } else {
                        self.procs[proc].waiting = true;
                        self.procs[proc].pc += 1;
                        return;
                    }
                }
                Instr::Irecv { src } => {
                    let dur = self.noise.sample(self.gt.call_overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    if let Some((available, class)) = self.procs[proc].ready[src].pop_front() {
                        self.complete_match(src, proc, class, available.max(now));
                    } else {
                        self.procs[proc].posted[src].push_back(now);
                    }
                }
                Instr::Issend { dst, bytes } => {
                    let class = self.link_class(proc, dst);
                    let lc = *self.gt.link(class);
                    let inject = self.noise.sample(self.gt.call_overhead_ns + lc.cpu_send_ns);
                    now = self.cpu[proc].acquire(now, inject);
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    let after_tx = if class == LinkClass::InterNode {
                        let dur = self.noise.sample(lc.nic_tx_ns);
                        self.nic_tx[self.cores[proc].node].acquire(now, dur)
                    } else {
                        now
                    };
                    let wire = self
                        .noise
                        .sample(lc.wire_ns + (bytes as f64 * lc.ns_per_byte).round() as Time);
                    self.schedule(
                        after_tx + wire,
                        EventKind::Arrive {
                            dst,
                            src: proc,
                            class,
                        },
                    );
                }
            }
        }
    }
}

/// The pre-rework world: a fresh engine (and cloned ground truth and core
/// list) per run, noise decorrelated by an internal run counter.
pub struct World {
    machine: MachineSpec,
    noise: NoiseModel,
    kind: BaselineNoise,
    cores: Vec<CoreId>,
    run_counter: u64,
}

impl World {
    pub fn new(
        machine: &MachineSpec,
        cores: Vec<usize>,
        noise: NoiseModel,
        kind: BaselineNoise,
    ) -> Self {
        let cores = RankMapping::Custom(cores).cores(machine, 2);
        World {
            machine: machine.clone(),
            noise,
            kind,
            cores,
            run_counter: 0,
        }
    }

    pub fn run(&mut self, programs: Vec<Program>) -> EngineResult {
        self.run_counter += 1;
        let cores = self.cores.clone();
        let gt = self.machine.ground_truth.clone();
        match self.kind {
            BaselineNoise::Frozen => Engine::new(
                programs,
                cores,
                gt,
                BoxMullerNoise::new(self.noise, self.run_counter),
            )
            .run(),
            BaselineNoise::Shared => Engine::new(
                programs,
                cores,
                gt,
                NoiseState::new(self.noise, self.run_counter),
            )
            .run(),
        }
    }
}

/// Pre-rework ping-pong builder: by-value chaining, a fresh pair per
/// call (one round trip).
pub fn ping_pong(bytes: usize) -> (Program, Program) {
    let a = Program::new()
        .issend_bytes(1, bytes)
        .wait_all()
        .irecv(1)
        .wait_all();
    let b = Program::new()
        .irecv(0)
        .wait_all()
        .issend_bytes(0, bytes)
        .wait_all();
    (a, b)
}

/// Pre-rework multi-message burst builder: the destination pre-posts `k`
/// receives and signals readiness; the source waits, records a
/// `burst_start` mark, then bursts `k` zero-byte sends. Same shape as the
/// reworked `hbar_simnet::benchprog::multi_message`.
pub fn multi_message(k: usize) -> (Program, Program) {
    let mut a = Program::new().irecv(1).wait_all().mark("burst_start");
    let mut b = Program::new();
    for _ in 0..k {
        a = a.issend(1);
        b = b.irecv(0);
    }
    a = a.wait_all();
    b = b.issend(0).wait_all();
    (a, b)
}

/// Pre-rework transmission-free call builder.
pub fn noop_calls(k: usize) -> Program {
    let mut p = Program::new();
    for _ in 0..k {
        p = p.noop_call();
    }
    p
}

/// Median of `values`, sorting them in place — kept textually identical
/// to `hbar_simnet::benchprog::median` so both drivers summarize
/// repetitions with bit-identical arithmetic.
fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of no measurements");
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Median one-way time over `reps` independent single-round runs. The
/// frozen `Engine::new` consumes its programs by value, so every run
/// re-clones the benchmark pair — the per-run construction cost the
/// reworked driver amortizes away.
pub fn measure_one_way(world: &mut World, bytes: usize, reps: usize) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let (a, b) = ping_pong(bytes);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let res = world.run(vec![a.clone(), b.clone()]);
            ns_to_sec(res.finish[0]) / 2.0
        })
        .collect();
    median(&mut times)
}

/// Median burst span (readiness mark → sender completion) over `reps`
/// independent single-burst runs.
pub fn measure_burst(world: &mut World, k: usize, reps: usize) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let (a, b) = multi_message(k);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let res = world.run(vec![a.clone(), b.clone()]);
            ns_to_sec(res.finish[0] - res.marks[0][0].1)
        })
        .collect();
    median(&mut times)
}

pub fn measure_noop(world: &mut World, k: usize) -> f64 {
    let res = world.run(vec![noop_calls(k), Program::new()]);
    ns_to_sec(res.finish[0]) / k as f64
}

// The per-pair sub-seed scheme is part of the *sweep driver* contract, not
// the engine mechanics this module freezes: for the Shared-noise parity
// gate both stacks must derive identical per-pair streams, so this calls
// the live `pair_sub_seed`/`diag_sub_seed` mixers (the SplitMix64 scheme
// that replaced the collision-prone `i * p + j` salt).
fn pair_world(
    machine: &MachineSpec,
    core_a: usize,
    core_b: usize,
    noise: NoiseModel,
    kind: BaselineNoise,
    sub_seed: u64,
) -> World {
    let per_pair_noise = NoiseModel {
        seed: sub_seed,
        ..noise
    };
    World::new(machine, vec![core_a, core_b], per_pair_noise, kind)
}

/// Pre-rework `measure_profile`: the full §IV-A sweep with a fresh engine
/// per run and per-run program cloning. Identical measurement schedule,
/// run ordering and noise salting as the reworked driver, so with
/// [`BaselineNoise::Shared`] the two must produce bit-identical profiles;
/// with [`BaselineNoise::Frozen`] it is the honest pre-rework wall-clock.
pub fn measure_profile_baseline(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    kind: BaselineNoise,
    cfg: &ProfilingConfig,
) -> TopologyProfile {
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);
    let directed_pairs: Vec<(usize, usize)> = if cfg.symmetric {
        (0..p)
            .flat_map(|i| ((i + 1)..p).map(move |j| (i, j)))
            .collect()
    } else {
        (0..p)
            .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect()
    };

    let measured: Vec<(usize, usize, f64, f64)> = directed_pairs
        .par_iter()
        .map(|&(i, j)| {
            let mut world = pair_world(
                machine,
                cores[i],
                cores[j],
                noise,
                kind,
                pair_sub_seed(i, j, noise.seed),
            );
            let o_points: Vec<(f64, f64)> = cfg
                .sizes
                .iter()
                .map(|&s| (s as f64, measure_one_way(&mut world, s, cfg.reps)))
                .collect();
            let l_points: Vec<(f64, f64)> = (1..=cfg.max_messages)
                .map(|k| (k as f64, measure_burst(&mut world, k, cfg.burst_reps)))
                .collect();
            (
                i,
                j,
                hockney_intercept(&o_points),
                latency_gradient(&l_points),
            )
        })
        .collect();

    let diag: Vec<f64> = (0..p)
        .into_par_iter()
        .map(|i| {
            let partner = cores[(i + 1) % p];
            let mut world = pair_world(
                machine,
                cores[i],
                partner,
                noise,
                kind,
                diag_sub_seed(i, noise.seed),
            );
            measure_noop(&mut world, cfg.noop_calls)
        })
        .collect();

    let mut o = DenseMatrix::new(p);
    let mut l = DenseMatrix::new(p);
    for (i, j, oij, lij) in measured {
        o[(i, j)] = oij;
        l[(i, j)] = lij;
        if cfg.symmetric {
            o[(j, i)] = oij;
            l[(j, i)] = lij;
        }
    }
    for (i, &oii) in diag.iter().enumerate() {
        o[(i, i)] = oii;
        l[(i, i)] = 0.0;
    }

    TopologyProfile {
        machine: machine.clone(),
        mapping: mapping.clone(),
        p,
        cost: CostMatrices { o, l },
    }
}
