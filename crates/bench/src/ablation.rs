//! Ablation study of the tuner's design choices (DESIGN.md §6).
//!
//! Compares, on one platform and process count, the measured execution
//! time of:
//!
//! * the paper's greedy hybrid (baseline configuration);
//! * the extended-candidate hybrid (k-ary, butterfly added);
//! * forced single-algorithm hierarchies (greedy choice disabled);
//! * late merging of concurrent local barriers (the "as early as
//!   possible" rule disabled);
//! * a sweep of the SSS sparseness parameter;
//! * the topology-neutral tree (no tuning at all).

use crate::context::ExperimentContext;
use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid, TunerConfig};

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    pub label: String,
    pub predicted: f64,
    pub measured: f64,
    pub stages: usize,
    pub signals: usize,
}

/// Runs the ablation suite at `p` ranks on the context's platform.
pub fn run_ablation(ctx: &mut ExperimentContext, p: usize) -> Vec<AblationRow> {
    let profile = ctx.profile_for(p);
    let mut rows = Vec::new();
    let mut push_tuned = |ctx: &ExperimentContext, label: &str, cfg: &TunerConfig| {
        let tuned = tune_hybrid(&profile, cfg);
        rows.push(AblationRow {
            label: label.to_string(),
            predicted: tuned.predicted_cost,
            measured: ctx.measure_barrier(&tuned.schedule, p),
            stages: tuned.schedule.len(),
            signals: tuned.schedule.total_signals(),
        });
    };

    push_tuned(ctx, "greedy (paper set)", &TunerConfig::default());
    push_tuned(ctx, "greedy (extended set)", &TunerConfig::extended());
    push_tuned(
        ctx,
        "greedy (exact scoring)",
        &TunerConfig {
            score_exact: true,
            ..TunerConfig::default()
        },
    );
    for alg in Algorithm::PAPER_SET {
        push_tuned(ctx, &format!("forced {alg}"), &TunerConfig::forced(alg));
    }
    push_tuned(
        ctx,
        "merge late",
        &TunerConfig {
            merge_late: true,
            ..TunerConfig::default()
        },
    );
    for sparseness in [0.15, 0.35, 0.60] {
        push_tuned(
            ctx,
            &format!("sparseness {sparseness:.2}"),
            &TunerConfig {
                sparseness,
                ..TunerConfig::default()
            },
        );
    }

    // The untuned baseline.
    let members: Vec<usize> = (0..p).collect();
    let neutral = Algorithm::Tree.full_schedule(p, &members);
    rows.push(AblationRow {
        label: "neutral tree (untuned)".into(),
        predicted: {
            use hbar_core::cost::{predict_barrier_cost, CostParams};
            predict_barrier_cost(&neutral, &profile.cost, &CostParams::default(), None).barrier_cost
        },
        measured: ctx.measure_barrier(&neutral, p),
        stages: neutral.len(),
        signals: neutral.total_signals(),
    });
    rows
}

/// Renders the ablation rows as a text table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>7} {:>8}",
        "configuration", "predicted", "measured", "stages", "signals"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>10.1}us {:>10.1}us {:>7} {:>8}",
            r.label,
            r.predicted * 1e6,
            r.measured * 1e6,
            r.stages,
            r.signals
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::MachineSpec;

    #[test]
    fn ablation_rows_cover_all_configurations() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let rows = run_ablation(&mut ctx, 16);
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(r.measured > 0.0 && r.predicted > 0.0, "{}", r.label);
            assert!(r.stages > 0 && r.signals > 0);
        }
        let table = render_ablation(&rows);
        assert!(table.contains("greedy (paper set)"));
        assert!(table.contains("neutral tree"));
    }

    #[test]
    fn greedy_never_loses_to_its_own_forced_components() {
        // The point of the ablation: greedy choice ≤ every forced single
        // algorithm, in predicted cost.
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let rows = run_ablation(&mut ctx, 16);
        let greedy = rows
            .iter()
            .find(|r| r.label == "greedy (paper set)")
            .unwrap();
        for r in rows.iter().filter(|r| r.label.starts_with("forced")) {
            assert!(
                greedy.predicted <= r.predicted * 1.0001,
                "greedy {} vs {} {}",
                greedy.predicted,
                r.label,
                r.predicted
            );
        }
    }
}
