//! Figures 5–8: model validation — predicted vs measured execution time
//! of the linear (L), dissemination (D) and tree (T) barriers.

use crate::context::ExperimentContext;
use crate::data::{Series, SeriesGroup};
use hbar_core::algorithms::Algorithm;
use hbar_core::cost::{predict_barrier_cost, CostParams};

/// The data behind one validation figure (Fig. 5 or Fig. 6): a predicted
/// panel and a measured panel, each holding the three algorithm curves.
#[derive(Clone, Debug)]
pub struct ValidationFigure {
    pub predicted: SeriesGroup,
    pub measured: SeriesGroup,
}

impl ValidationFigure {
    /// Regroups the data per algorithm (measured vs predicted overlay) —
    /// exactly how Figures 7 and 8 re-present the Fig. 5/6 data.
    pub fn per_algorithm(&self) -> Vec<SeriesGroup> {
        Algorithm::PAPER_SET
            .iter()
            .map(|alg| {
                let tag = alg.tag();
                let mut g = SeriesGroup::new(format!("{alg} barrier: measured vs predicted"));
                for (src, label) in [(&self.measured, "Measured"), (&self.predicted, "Predicted")] {
                    let mut s = Series::new(label);
                    if let Some(curve) = src.get(&tag) {
                        s.points = curve.points.clone();
                    }
                    g.series.push(s);
                }
                g
            })
            .collect()
    }
}

/// Runs the validation experiment on a platform: for every process count
/// in the sweep, predict and measure all three paper algorithms.
pub fn run_validation(
    ctx: &mut ExperimentContext,
    sweep: &[usize],
    title: &str,
) -> ValidationFigure {
    let params = CostParams::default();
    let mut predicted = SeriesGroup::new(format!("{title} — predicted"));
    let mut measured = SeriesGroup::new(format!("{title} — measured"));
    for alg in Algorithm::PAPER_SET {
        predicted.series.push(Series::new(alg.tag()));
        measured.series.push(Series::new(alg.tag()));
    }
    for &p in sweep {
        let profile = ctx.profile_for(p);
        let members: Vec<usize> = (0..p).collect();
        for (idx, alg) in Algorithm::PAPER_SET.iter().enumerate() {
            let schedule = alg.full_schedule(p, &members);
            let pred = predict_barrier_cost(&schedule, &profile.cost, &params, None).barrier_cost;
            let meas = ctx.measure_barrier(&schedule, p);
            predicted.series[idx].push(p as f64, pred);
            measured.series[idx].push(p as f64, meas);
        }
    }
    ValidationFigure {
        predicted,
        measured,
    }
}

/// Shape checks the paper's discussion of Figures 5–8 makes; each entry
/// is a named boolean so EXPERIMENTS.md can record which claims hold.
#[derive(Clone, Debug)]
pub struct ValidationChecks {
    /// Linear is the slowest algorithm at the largest measured size.
    pub linear_slowest_at_scale: bool,
    /// Model and measurement rank the three algorithms identically at the
    /// largest size.
    pub ranking_agrees_at_scale: bool,
    /// Dissemination dips at the power-of-two full-machine size relative
    /// to neighbouring odd sizes (only meaningful for cluster A's 64).
    pub dissemination_power_of_two_dip: Option<bool>,
    /// Worst absolute prediction error across all points (seconds).
    pub worst_abs_error: f64,
}

/// Evaluates the shape checks on a validation figure.
pub fn validation_checks(fig: &ValidationFigure) -> ValidationChecks {
    let xs = fig.measured.xs();
    let last = *xs.last().expect("non-empty sweep");
    let m = |tag: &str, x: f64| fig.measured.get(tag).and_then(|s| s.y_at(x));
    let p = |tag: &str, x: f64| fig.predicted.get(tag).and_then(|s| s.y_at(x));

    let (ml, mt, md) = (m("L", last), m("T", last), m("D", last));
    let linear_slowest_at_scale = match (ml, mt, md) {
        (Some(l), Some(t), Some(d)) => l > t && l > d,
        _ => false,
    };

    let rank = |l: f64, t: f64, d: f64| {
        let mut v = [("L", l), ("T", t), ("D", d)];
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        [v[0].0, v[1].0, v[2].0]
    };
    let ranking_agrees_at_scale = match (ml, mt, md, p("L", last), p("T", last), p("D", last)) {
        (Some(a), Some(b), Some(c), Some(x), Some(y), Some(z)) => rank(a, b, c) == rank(x, y, z),
        _ => false,
    };

    // Power-of-two dip: D at the full power-of-two size is below its value
    // at the nearest smaller measured size.
    let dissemination_power_of_two_dip = if (last as usize).is_power_of_two() && xs.len() >= 2 {
        let prev = xs[xs.len() - 2];
        match (m("D", last), m("D", prev)) {
            (Some(at), Some(before)) => Some(at < before),
            _ => None,
        }
    } else {
        None
    };

    let mut worst_abs_error = 0.0f64;
    for alg in Algorithm::PAPER_SET {
        let tag = alg.tag();
        for &x in &xs {
            if let (Some(a), Some(b)) = (m(&tag, x), p(&tag, x)) {
                worst_abs_error = worst_abs_error.max((a - b).abs());
            }
        }
    }

    ValidationChecks {
        linear_slowest_at_scale,
        ranking_agrees_at_scale,
        dissemination_power_of_two_dip,
        worst_abs_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::MachineSpec;

    /// A small end-to-end validation run on a 2-node machine: exercises
    /// profiling, prediction and measurement together.
    #[test]
    fn small_validation_run_has_paper_shape() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let sweep = [4usize, 8, 12, 16];
        let fig = run_validation(&mut ctx, &sweep, "mini cluster");
        // All curves fully populated.
        for g in [&fig.predicted, &fig.measured] {
            for s in &g.series {
                assert_eq!(s.points.len(), sweep.len(), "{}", s.label);
            }
        }
        let checks = validation_checks(&fig);
        assert!(checks.linear_slowest_at_scale, "{fig:?}");
        assert!(checks.ranking_agrees_at_scale);
        // The dip check is computed (last size is a power of two), but on
        // a 2-node machine every even dissemination offset is node-local,
        // so the paper's 8-node dip phenomenon is absent here — only its
        // presence in the full cluster A run (Fig. 5) is asserted, by the
        // experiments binary.
        assert!(checks.dissemination_power_of_two_dip.is_some());
        // Exact context: model error stays well under a barrier time.
        let scale = fig.measured.get("L").unwrap().y_max();
        assert!(
            checks.worst_abs_error < scale,
            "error {} vs scale {scale}",
            checks.worst_abs_error
        );
    }

    #[test]
    fn per_algorithm_regroup_preserves_points() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(1));
        let fig = run_validation(&mut ctx, &[4, 8], "one node");
        let groups = fig.per_algorithm();
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.series.len(), 2);
            assert_eq!(g.series[0].label, "Measured");
            assert_eq!(g.series[1].label, "Predicted");
            assert_eq!(g.series[0].points.len(), 2);
        }
    }
}
