//! Figure 9: `L`-matrix structure of one dual quad-core node.

use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::NoiseModel;
use hbar_topo::heatmap::{block_means, render_labelled, BlockMeans};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;

/// Result of the Fig. 9 experiment.
#[derive(Clone, Debug)]
pub struct HeatmapFigure {
    /// The measured single-node profile (8 ranks, block mapping).
    pub profile: TopologyProfile,
    /// Rendered heat map of the `L` matrix.
    pub rendering: String,
    /// On-chip vs off-chip block means of `L` (block size 4).
    pub l_blocks: BlockMeans,
}

/// Profiles one dual quad-core node under block mapping (ranks 0–3 on
/// socket 0, ranks 4–7 on socket 1 — the layout of Fig. 9) and renders
/// its `L` matrix.
pub fn run_heatmap(noise: NoiseModel, cfg: &ProfilingConfig) -> HeatmapFigure {
    let machine = MachineSpec::dual_quad_cluster(1);
    let profile = measure_profile(&machine, &RankMapping::Block, 8, noise, cfg);
    let rendering = render_labelled(&profile.cost.l, "L Matrix Heat Map, 2x4 cores");
    let l_blocks = block_means(&profile.cost.l, 4);
    HeatmapFigure {
        profile,
        rendering,
        l_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shows_two_dark_blocks_with_factor_4_gap() {
        let fig = run_heatmap(NoiseModel::none(), &ProfilingConfig::fast());
        // "around a factor 4 observable difference between on-chip and
        // off-chip messages."
        let ratio = fig.l_blocks.ratio();
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
        // Values land in the paper's colour-scale range (0–7e-7 s).
        assert!(
            fig.l_blocks.on > 5e-8 && fig.l_blocks.off < 7e-7,
            "{:?}",
            fig.l_blocks
        );
        assert!(fig.rendering.contains("L Matrix Heat Map"));
    }

    #[test]
    fn fig9_survives_noise() {
        let fig = run_heatmap(NoiseModel::realistic(99), &ProfilingConfig::fast());
        assert!(fig.l_blocks.ratio() > 1.5, "structure must remain visible");
    }
}
