//! Frozen pre-optimization tuner, kept verbatim for regression
//! measurement.
//!
//! This is the greedy hybrid tuner exactly as it stood before the
//! zero-allocation/memoized/parallel rework of `hbar_core::compose`:
//! sequential depth-first composition, a fresh schedule allocated per
//! candidate score, and every prediction going through the reference
//! `predict_barrier_cost` path (per-call `row_iter().collect()` inside
//! the stages). The `tuner-perf` binary and the `tune` bench time it
//! against `tune_hybrid_costs` to quantify — and guard — the speedup.
//! It must NOT be optimized; the determinism tests in `hbar-core`
//! separately guarantee the optimized tuner still emits byte-identical
//! schedules.

use hbar_core::algorithms::Algorithm;
use hbar_core::clustering::{build_cluster_tree, ClusterNode};
use hbar_core::compose::{LevelChoice, TunedBarrier, TunerConfig};
use hbar_core::cost::{predict_arrival_cost, predict_barrier_cost};
use hbar_core::schedule::{BarrierSchedule, Stage};
use hbar_topo::cost::CostMatrices;
use hbar_topo::metric::DistanceMetric;

/// Pre-optimization `tune_hybrid_costs`: identical output, original
/// allocation and scoring behavior.
pub fn tune_hybrid_costs_baseline(
    cost: &CostMatrices,
    members: &[usize],
    cfg: &TunerConfig,
) -> TunedBarrier {
    assert!(!members.is_empty(), "cannot tune a barrier for zero ranks");
    assert!(
        !cfg.candidates.is_empty(),
        "need at least one candidate algorithm"
    );
    let metric = DistanceMetric::from_costs(cost);
    let tree = build_cluster_tree(&metric, members, cfg.sparseness, cfg.max_depth);
    let n = cost.p();
    let mut choices = Vec::new();
    let (arrival, root_level) = compose(&tree, 0, n, cost, cfg, &mut choices);

    let mut schedule = arrival.clone();
    let skip = match &root_level {
        Some(level) if !level.algorithm.needs_departure() => level.stage_count,
        _ => 0,
    };
    let departure = arrival.departure_reversed(skip);
    schedule.append(&departure);
    schedule.strip_noop_stages();

    let predicted_cost = predict_barrier_cost(&schedule, cost, &cfg.cost_params, None).barrier_cost;
    TunedBarrier {
        schedule,
        tree,
        choices,
        predicted_cost,
    }
}

struct RootLevel {
    algorithm: Algorithm,
    stage_count: usize,
}

fn compose(
    node: &ClusterNode,
    depth: usize,
    n: usize,
    cost: &CostMatrices,
    cfg: &TunerConfig,
    choices: &mut Vec<LevelChoice>,
) -> (BarrierSchedule, Option<RootLevel>) {
    let mut merged = BarrierSchedule::new(n);
    let participants: Vec<usize> = if node.is_leaf() {
        node.members.clone()
    } else {
        let child_schedules: Vec<BarrierSchedule> = node
            .children
            .iter()
            .map(|c| compose(c, depth + 1, n, cost, cfg, choices).0)
            .collect();
        let longest = child_schedules
            .iter()
            .map(BarrierSchedule::len)
            .max()
            .unwrap_or(0);
        for cs in &child_schedules {
            let offset = if cfg.merge_late {
                longest - cs.len()
            } else {
                0
            };
            merged.merge_overlay(cs, offset);
        }
        node.children
            .iter()
            .map(ClusterNode::representative)
            .collect()
    };

    if participants.len() < 2 {
        return (merged, None);
    }

    let (algorithm, score) = select_algorithm(&participants, depth == 0, cost, cfg);
    choices.push(LevelChoice {
        participants: participants.clone(),
        depth,
        algorithm,
        score,
    });

    let level_stages = algorithm.arrival_embedded(n, &participants);
    let stage_count = level_stages.len();
    for m in level_stages {
        merged.push(Stage::arrival(m));
    }
    let root_level = (depth == 0).then_some(RootLevel {
        algorithm,
        stage_count,
    });
    (merged, root_level)
}

fn select_algorithm(
    participants: &[usize],
    is_root: bool,
    cost: &CostMatrices,
    cfg: &TunerConfig,
) -> (Algorithm, f64) {
    let n = cost.p();
    let mut best: Option<(Algorithm, f64)> = None;
    for &alg in &cfg.candidates {
        if !alg.applicable(participants.len()) {
            continue;
        }
        let score = if cfg.score_exact {
            let mut local = BarrierSchedule::new(n);
            for m in alg.arrival_embedded(n, participants) {
                local.push(Stage::arrival(m.clone()));
            }
            let skip_departure = is_root && !alg.needs_departure();
            if !skip_departure {
                let dep = local.departure_reversed(0);
                local.append(&dep);
            }
            predict_barrier_cost(&local, cost, &cfg.cost_params, None).barrier_cost
        } else {
            let arrival = alg.arrival_embedded(n, participants);
            let base = predict_arrival_cost(n, &arrival, cost, &cfg.cost_params);
            let multiplier = if is_root && !alg.needs_departure() {
                1.0
            } else {
                2.0
            };
            base * multiplier
        };
        if best.is_none_or(|(_, b)| score < b) {
            best = Some((alg, score));
        }
    }
    best.unwrap_or_else(|| {
        panic!(
            "no applicable candidate for a cluster of {} participants",
            participants.len()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::compose::tune_hybrid_costs;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    /// The optimized tuner must reproduce the frozen baseline's output
    /// exactly — schedule, choices and predicted cost.
    #[test]
    fn optimized_tuner_matches_frozen_baseline() {
        for (machine, p) in [
            (MachineSpec::dual_quad_cluster(2), 16usize),
            (MachineSpec::dual_quad_cluster(8), 64),
        ] {
            let prof =
                TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p);
            let members: Vec<usize> = (0..p).collect();
            for cfg in [TunerConfig::default(), TunerConfig::extended()] {
                let base = tune_hybrid_costs_baseline(&prof.cost, &members, &cfg);
                let opt = tune_hybrid_costs(&prof.cost, &members, &cfg);
                assert_eq!(base.schedule, opt.schedule, "p={p}");
                assert_eq!(base.choices, opt.choices, "p={p}");
                assert_eq!(
                    base.predicted_cost.to_bits(),
                    opt.predicted_cost.to_bits(),
                    "p={p}"
                );
            }
        }
    }
}
