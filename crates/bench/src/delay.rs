//! The §VI staggered-delay synchronization validation, run across
//! algorithms and platforms (the paper ran it for every tested size).

use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid, TunerConfig};
use hbar_simnet::barrier::staggered_delay_check;
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;

/// One delay-check verdict.
#[derive(Clone, Debug)]
pub struct DelayVerdict {
    pub label: String,
    pub p: usize,
    pub passed: bool,
}

/// Runs the staggered-delay check for the three paper algorithms plus the
/// tuned hybrid, at each process count, on the given machine.
pub fn run_delay_checks(
    machine: &MachineSpec,
    sizes: &[usize],
    delay_ns: u64,
) -> Vec<DelayVerdict> {
    let mut verdicts = Vec::new();
    for &p in sizes {
        let members: Vec<usize> = (0..p).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            let mut world = world_for(machine, p);
            let (ok, _) = staggered_delay_check(&mut world, &sched, delay_ns);
            verdicts.push(DelayVerdict {
                label: alg.to_string(),
                p,
                passed: ok,
            });
        }
        let profile = TopologyProfile::from_ground_truth_for(machine, &RankMapping::RoundRobin, p);
        let tuned = tune_hybrid(&profile, &TunerConfig::default());
        let mut world = world_for(machine, p);
        let (ok, _) = staggered_delay_check(&mut world, &tuned.schedule, delay_ns);
        verdicts.push(DelayVerdict {
            label: "hybrid".into(),
            p,
            passed: ok,
        });
    }
    verdicts
}

fn world_for(machine: &MachineSpec, p: usize) -> SimWorld {
    SimWorld::new(
        SimConfig {
            machine: machine.clone(),
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::none(),
        },
        p,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_pass_on_two_nodes() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let verdicts = run_delay_checks(&machine, &[5, 12], 20_000_000);
        assert_eq!(verdicts.len(), 8);
        for v in &verdicts {
            assert!(v.passed, "{} p={} failed", v.label, v.p);
        }
    }
}
