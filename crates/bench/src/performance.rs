//! Figure 11: performance of the generated hybrid barriers against the
//! topology-neutral MPI baseline.
//!
//! The paper's `MPI_Barrier` baseline is OpenMPI's built-in, which "the
//! publicly available OpenMPI library source code verifies … implements a
//! tree barrier" over rank order — i.e. our [`Algorithm::Tree`] schedule
//! executed with no topology awareness.

use crate::context::ExperimentContext;
use crate::data::{Series, SeriesGroup};
use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid, TunerConfig};

/// The data behind one panel of Fig. 11, plus tuning provenance.
#[derive(Clone, Debug)]
pub struct PerformanceFigure {
    /// Two series: "MPI" (neutral tree) and "Hybrid" (tuned).
    pub group: SeriesGroup,
    /// Root-level algorithm chosen by the tuner per process count.
    pub root_choice: Vec<(usize, String)>,
}

/// Runs the Fig. 11 experiment: for each process count, tune a hybrid
/// barrier from the measured profile and race it against the neutral tree.
pub fn run_performance(
    ctx: &mut ExperimentContext,
    sweep: &[usize],
    tuner: &TunerConfig,
    title: &str,
) -> PerformanceFigure {
    let mut mpi = Series::new("MPI");
    let mut hybrid = Series::new("Hybrid");
    let mut root_choice = Vec::new();
    for &p in sweep {
        let profile = ctx.profile_for(p);
        let members: Vec<usize> = (0..p).collect();
        let neutral = Algorithm::Tree.full_schedule(p, &members);
        mpi.push(p as f64, ctx.measure_barrier(&neutral, p));
        let tuned = tune_hybrid(&profile, tuner);
        hybrid.push(p as f64, ctx.measure_barrier(&tuned.schedule, p));
        root_choice.push((
            p,
            tuned
                .root_algorithm()
                .map(|a| a.to_string())
                .unwrap_or_else(|| "none".into()),
        ));
    }
    let mut group = SeriesGroup::new(title.to_string());
    group.series.push(mpi);
    group.series.push(hybrid);
    PerformanceFigure { group, root_choice }
}

/// The paper's headline claims about Fig. 11, as checkable booleans.
#[derive(Clone, Debug)]
pub struct PerformanceChecks {
    /// "Generated barrier performance is similar to the MPI barrier at
    /// worst": hybrid never exceeds the baseline by more than `slack`
    /// (fractional; noise allowance).
    pub never_significantly_worse: bool,
    /// "significantly improved in most cases": hybrid is faster at a
    /// strict majority of multi-node sizes.
    pub faster_at_most_multinode_sizes: bool,
    /// Speedup at the largest size (MPI time / hybrid time) — the paper
    /// sees ≈2× on the larger system.
    pub speedup_at_max: f64,
}

/// Evaluates the Fig. 11 claims. `cores_per_node` identifies multi-node
/// sizes; `slack` is the tolerated fractional regression (e.g. 0.15).
pub fn performance_checks(
    fig: &PerformanceFigure,
    cores_per_node: usize,
    slack: f64,
) -> PerformanceChecks {
    let xs = fig.group.xs();
    let mpi = fig.group.get("MPI").expect("MPI series");
    let hyb = fig.group.get("Hybrid").expect("Hybrid series");
    let mut worse = false;
    let mut multinode = 0usize;
    let mut faster = 0usize;
    for &x in &xs {
        let (Some(m), Some(h)) = (mpi.y_at(x), hyb.y_at(x)) else {
            continue;
        };
        if h > m * (1.0 + slack) {
            worse = true;
        }
        if x as usize > cores_per_node {
            multinode += 1;
            if h < m {
                faster += 1;
            }
        }
    }
    let last = *xs.last().expect("non-empty sweep");
    let speedup_at_max = match (mpi.y_at(last), hyb.y_at(last)) {
        (Some(m), Some(h)) if h > 0.0 => m / h,
        _ => f64::NAN,
    };
    PerformanceChecks {
        never_significantly_worse: !worse,
        faster_at_most_multinode_sizes: multinode > 0 && faster * 2 > multinode,
        speedup_at_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::MachineSpec;

    #[test]
    fn hybrid_wins_on_a_two_node_machine() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let sweep = [8usize, 12, 16];
        let fig = run_performance(&mut ctx, &sweep, &TunerConfig::default(), "mini fig 11");
        let checks = performance_checks(&fig, ctx.cores_per_node(), 0.15);
        assert!(checks.never_significantly_worse, "{fig:?}");
        assert!(checks.faster_at_most_multinode_sizes, "{fig:?}");
        assert!(checks.speedup_at_max > 1.0, "{}", checks.speedup_at_max);
    }

    #[test]
    fn root_choices_are_recorded_per_size() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let fig = run_performance(&mut ctx, &[4, 16], &TunerConfig::default(), "choices");
        assert_eq!(fig.root_choice.len(), 2);
        assert_eq!(fig.root_choice[0].0, 4);
        // 16 ranks on 2 nodes: the top level is a uniform pair of slow
        // links — dissemination is the expected greedy winner.
        assert_eq!(fig.root_choice[1].1, "dissemination");
    }
}
