//! Shared experiment context: machines, cached profiles, measurement.

use hbar_core::schedule::BarrierSchedule;
use hbar_simnet::barrier::measure_schedule;
use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use std::collections::HashMap;

/// An experiment platform: one of the paper's clusters plus the knobs the
/// harness needs (noise, profiling schedule, repetition counts).
pub struct ExperimentContext {
    pub machine: MachineSpec,
    pub mapping: RankMapping,
    pub noise: NoiseModel,
    pub profiling: ProfilingConfig,
    /// Back-to-back barrier executions averaged per measurement.
    pub measure_reps: usize,
    /// Profiles measured so far, keyed by the number of nodes the
    /// round-robin placement occupies. Within one bucket the placement of
    /// each rank is independent of P, so one full-bucket profile serves
    /// every P in the bucket by truncation.
    profile_cache: HashMap<usize, TopologyProfile>,
}

impl ExperimentContext {
    /// The paper's cluster A: up to 8 nodes of dual quad-cores.
    pub fn cluster_a(quick: bool) -> Self {
        Self::new(MachineSpec::dual_quad_cluster(8), quick, 0xA11CE)
    }

    /// The paper's cluster B: up to 10 nodes of dual hex-cores.
    pub fn cluster_b(quick: bool) -> Self {
        Self::new(MachineSpec::dual_hex_cluster(10), quick, 0xB0B)
    }

    /// A custom platform.
    pub fn new(machine: MachineSpec, quick: bool, seed: u64) -> Self {
        ExperimentContext {
            machine,
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::realistic(seed),
            profiling: if quick {
                ProfilingConfig::fast()
            } else {
                ProfilingConfig::default()
            },
            measure_reps: if quick { 5 } else { 25 },
            profile_cache: HashMap::new(),
        }
    }

    /// Deterministic variant (no noise), for tests that need exactness.
    pub fn exact(machine: MachineSpec) -> Self {
        ExperimentContext {
            machine,
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::none(),
            profiling: ProfilingConfig::fast(),
            measure_reps: 3,
            profile_cache: HashMap::new(),
        }
    }

    /// Cores per node of the platform.
    pub fn cores_per_node(&self) -> usize {
        self.machine.cores_per_node()
    }

    /// Maximum rank count.
    pub fn max_p(&self) -> usize {
        self.machine.total_cores()
    }

    /// Number of nodes the round-robin placement uses for `p` ranks.
    fn bucket(&self, p: usize) -> usize {
        p.div_ceil(self.cores_per_node())
            .min(self.machine.nodes)
            .max(1)
    }

    /// The measured topology profile for `p` ranks under the context's
    /// placement. Profiles are measured per node-count bucket at the
    /// bucket's full population and truncated — valid because round-robin
    /// pins rank `r` to the same core for every `p` with the same node
    /// count (verified in tests).
    pub fn profile_for(&mut self, p: usize) -> TopologyProfile {
        assert!(p >= 2 && p <= self.max_p(), "p={p} out of range");
        let bucket = self.bucket(p);
        let bucket_max = (bucket * self.cores_per_node()).min(self.max_p());
        if !self.profile_cache.contains_key(&bucket) {
            let prof = measure_profile(
                &self.machine,
                &self.mapping,
                bucket_max,
                self.noise,
                &self.profiling,
            );
            self.profile_cache.insert(bucket, prof);
        }
        let prof = &self.profile_cache[&bucket];
        let mut truncated = prof.truncate(p);
        truncated.p = p;
        truncated
    }

    /// Measures the mean execution time (seconds) of a schedule for `p`
    /// ranks on the simulated platform.
    pub fn measure_barrier(&self, schedule: &BarrierSchedule, p: usize) -> f64 {
        assert_eq!(
            schedule.n(),
            p,
            "schedule covers {} ranks, expected {p}",
            schedule.n()
        );
        let cfg = SimConfig {
            machine: self.machine.clone(),
            mapping: self.mapping.clone(),
            noise: self.noise,
        };
        let mut world = SimWorld::new(cfg, p);
        measure_schedule(&mut world, schedule, self.measure_reps)
    }

    /// The default process-count sweep of a figure: every `step`-th count
    /// from 2 to the machine's capacity (the paper plots every count; use
    /// a larger step for quick runs).
    pub fn sweep(&self, step: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (2..=self.max_p()).step_by(step.max(1)).collect();
        if v.last() != Some(&self.max_p()) {
            v.push(self.max_p());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_placement_is_bucket_stable() {
        // The property the profile cache relies on: for any two P in the
        // same node-count bucket, rank placements agree on the prefix.
        let machine = MachineSpec::dual_quad_cluster(8);
        let mapping = RankMapping::RoundRobin;
        for (p_small, p_big) in [(17, 24), (9, 16), (25, 32), (57, 64)] {
            let small = mapping.place(&machine, p_small);
            let big = mapping.place(&machine, p_big);
            assert_eq!(&big[..p_small], &small[..], "bucket ({p_small},{p_big})");
        }
    }

    #[test]
    fn profile_cache_reuses_buckets() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let a = ctx.profile_for(9);
        let b = ctx.profile_for(12);
        assert_eq!(ctx.profile_cache.len(), 1, "same bucket measured once");
        assert_eq!(a.cost.o[(0, 1)], b.cost.o[(0, 1)]);
        let _ = ctx.profile_for(8); // 1-node bucket
        assert_eq!(ctx.profile_cache.len(), 2);
    }

    #[test]
    fn truncated_profile_has_requested_size() {
        let mut ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let prof = ctx.profile_for(11);
        assert_eq!(prof.p, 11);
        assert_eq!(prof.cost.p(), 11);
    }

    #[test]
    fn sweep_covers_range_and_endpoint() {
        let ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(2));
        let s = ctx.sweep(3);
        assert_eq!(s.first(), Some(&2));
        assert_eq!(s.last(), Some(&16));
        let s1 = ctx.sweep(1);
        assert_eq!(s1.len(), 15);
    }

    #[test]
    fn measure_barrier_runs() {
        use hbar_core::algorithms::Algorithm;
        let ctx = ExperimentContext::exact(MachineSpec::dual_quad_cluster(1));
        let members: Vec<usize> = (0..4).collect();
        let sched = Algorithm::Tree.full_schedule(4, &members);
        let t = ctx.measure_barrier(&sched, 4);
        assert!(t > 0.0);
    }
}
