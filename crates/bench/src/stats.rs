//! The statistically rigorous measurement core, re-exported.
//!
//! The implementation lives in the `hbar-stats` crate so that
//! `hbar-simnet`'s decomposed sweep (which `hbar-bench` depends on) can
//! share the exact same estimators and stopping rule without a
//! dependency cycle. Harness code should reach it as
//! `hbar_bench::stats::…`; everything public in `hbar-stats` is
//! available here.
//!
//! The contract every `*-perf` bin follows:
//!
//! 1. time with [`measure_adaptive`]: reps grow until the median's
//!    nonparametric CI is relatively tight or the `--reps` budget is
//!    spent;
//! 2. report [`Estimate`]s (median, CI, MAD, trimmed mean, outlier
//!    count, rep count), never bare scalars — `before_s`/`after_s` stay
//!    in the documents as the medians for human scanning, and `speedup`
//!    carries a conservative [`ratio_interval`] CI;
//! 3. stamp the document with a [`RunManifest`] (git revision, seed,
//!    schedule/topology descriptors, host, command line, estimator
//!    settings) so the run is reproducible and comparable.

pub use hbar_stats::*;

use std::time::Instant;

/// One adaptively-stopped wall-clock measurement: each sample times
/// `batch` consecutive calls of `f` and records the per-call mean in
/// seconds (batching is how sub-microsecond kernels become timeable);
/// sampling continues under `cfg` until the median CI is tight or the
/// rep budget is spent.
///
/// # Panics
/// Panics if `batch == 0`.
pub fn time_estimate<F: FnMut()>(cfg: &AdaptiveConfig, batch: usize, mut f: F) -> Estimate {
    assert!(batch > 0, "time_estimate needs a positive batch size");
    measure_adaptive(cfg, || {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        t.elapsed().as_secs_f64() / batch as f64
    })
}
