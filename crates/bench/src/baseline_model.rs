//! Frozen pre-optimization model kernels, kept verbatim for regression
//! measurement.
//!
//! These are the `hbar-matrix` / `hbar-core` algorithmic-model kernels
//! exactly as they stood before the blocked-bitset rework: the per-row
//! `and_or_product` that walks set bits of the left operand, the
//! bit-at-a-time `transpose`/`embed`/`submatrix`, the allocating Eq. 3
//! closure (`flow = K·S; K |= flow` with a fresh matrix per stage), the
//! popcount-based `is_all_true`, and the `min_by`-over-recomputed-distances
//! SSS scan. The `model-perf` binary and the `model` bench time them
//! against the optimized kernels to quantify — and guard — the speedup,
//! after asserting bit-parity on every output. They must NOT be optimized.
//!
//! `BoolMatrix`'s word storage is private to `hbar-matrix`, so the frozen
//! kernels run on [`BaselineBitMat`], a copy of the original struct with
//! the same layout (row-major `u64` words, LSB-first columns); conversion
//! to and from `BoolMatrix` is lossless and word-for-word.

use hbar_matrix::BoolMatrix;
use hbar_topo::metric::DistanceMetric;

/// The original bitset matrix: packed 64-bit words per row, identical
/// layout to `BoolMatrix` at the seed.
#[derive(Clone, PartialEq, Eq)]
pub struct BaselineBitMat {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BaselineBitMat {
    /// Creates the `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BaselineBitMat {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Word-for-word copy of an optimized-kernel matrix.
    pub fn from_matrix(m: &BoolMatrix) -> Self {
        let mut out = Self::zeros(m.n());
        for i in 0..m.n() {
            let dst = out.row_range(i);
            out.bits[dst].copy_from_slice(m.row(i));
        }
        out
    }

    /// Lossless conversion back, for parity comparison.
    pub fn to_matrix(&self) -> BoolMatrix {
        let edges: Vec<(usize, usize)> = self.edges().collect();
        BoolMatrix::from_edges(self.n, &edges)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Number of set entries in row `i`.
    pub fn row_popcount(&self, i: usize) -> usize {
        self.bits[self.row_range(i)]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Original all-ones test: per-row popcount comparison.
    pub fn is_all_true(&self) -> bool {
        (0..self.n).all(|i| self.row_popcount(i) == self.n)
    }

    /// Set columns of row `i`, ascending (original per-bit scan shape).
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.bits[self.row_range(i)];
        row.iter().enumerate().flat_map(move |(w_idx, &word)| {
            (0..64)
                .filter(move |b| word >> b & 1 == 1)
                .map(move |b| w_idx * 64 + b)
                .filter(move |&idx| idx < self.n)
        })
    }

    /// All set `(row, col)` pairs in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_iter(i).map(move |j| (i, j)))
    }

    /// Original transpose: one `set` per edge.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.n);
        for (i, j) in self.edges() {
            t.set(j, i, true);
        }
        t
    }

    /// In-place boolean OR.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Original boolean (and/or semiring) product: for each set bit
    /// `(i, k)` of `self`, OR row `k` of `other` into row `i` of a fresh
    /// output matrix.
    pub fn and_or_product(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = Self::zeros(self.n);
        for i in 0..self.n {
            for k in self.row_iter(i) {
                let src_range = other.row_range(k);
                let dst_range = out.row_range(i);
                let (dst, src) = (dst_range.start, src_range.start);
                for w in 0..self.words_per_row {
                    out.bits[dst + w] |= other.bits[src + w];
                }
            }
        }
        out
    }

    /// Original embed: validate the map, then one `set` per edge.
    pub fn embed(&self, m: usize, index_map: &[usize]) -> Self {
        assert_eq!(index_map.len(), self.n, "index map length mismatch");
        let mut seen = vec![false; m];
        for &g in index_map {
            assert!(g < m, "mapped index {g} out of range {m}");
            assert!(!seen[g], "duplicate mapped index {g}");
            seen[g] = true;
        }
        let mut out = Self::zeros(m);
        for (i, j) in self.edges() {
            out.set(index_map[i], index_map[j], true);
        }
        out
    }

    /// Original submatrix: a `get`/`set` pair per index-map cell.
    pub fn submatrix(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len());
        for (li, &gi) in indices.iter().enumerate() {
            for (lj, &gj) in indices.iter().enumerate() {
                if self.get(gi, gj) {
                    out.set(li, lj, true);
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for BaselineBitMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BaselineBitMat {}x{}", self.n, self.n)
    }
}

/// Original Eq. 3 closure: a fresh `flow` matrix per stage.
pub fn baseline_knowledge_closure(n: usize, stages: &[BaselineBitMat]) -> BaselineBitMat {
    let mut k = BaselineBitMat::identity(n);
    for s in stages {
        assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
        let flow = k.and_or_product(s);
        k.or_assign(&flow);
    }
    k
}

/// Original SSS scan: each point recomputes its distance to every
/// existing center via `min_by` — O(P·k) distance evaluations *per point*.
pub fn baseline_sss_clusters(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    diameter: f64,
) -> Vec<Vec<usize>> {
    assert!(!members.is_empty(), "cannot cluster zero members");
    assert!(
        sparseness > 0.0 && sparseness <= 1.0,
        "sparseness must be in (0, 1], got {sparseness}"
    );
    let threshold = sparseness * diameter;
    let mut centers: Vec<usize> = vec![members[0]];
    let mut clusters: Vec<Vec<usize>> = vec![vec![members[0]]];
    for &m in &members[1..] {
        let (best_idx, best_dist) = centers
            .iter()
            .enumerate()
            .map(|(ci, &c)| (ci, metric.dist(c, m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one center");
        if best_dist > threshold {
            centers.push(m);
            clusters.push(vec![m]);
        } else {
            clusters[best_idx].push(m);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::clustering::{sss_clusters, SSS_DEFAULT_SPARSENESS};
    use hbar_matrix::knowledge_closure;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn dissemination(n: usize) -> Vec<BoolMatrix> {
        let mut stages = Vec::new();
        let mut step = 1;
        while step < n {
            let mut s = BoolMatrix::zeros(n);
            for i in 0..n {
                s.set(i, (i + step) % n, true);
            }
            stages.push(s);
            step *= 2;
        }
        stages
    }

    #[test]
    fn conversion_roundtrips_word_for_word() {
        let m = BoolMatrix::from_edges(130, &[(0, 0), (1, 64), (129, 129), (63, 127)]);
        let base = BaselineBitMat::from_matrix(&m);
        assert_eq!(base.to_matrix(), m);
        assert!(base.get(1, 64) && !base.get(64, 1));
    }

    #[test]
    fn frozen_closure_matches_optimized() {
        for n in [1usize, 2, 6, 65, 130] {
            let stages = dissemination(n);
            let base_stages: Vec<BaselineBitMat> =
                stages.iter().map(BaselineBitMat::from_matrix).collect();
            let base = baseline_knowledge_closure(n, &base_stages);
            let opt = knowledge_closure(n, &stages);
            assert_eq!(base.to_matrix(), opt, "n={n}");
            assert_eq!(base.is_all_true(), opt.is_all_true(), "n={n}");
        }
    }

    #[test]
    fn frozen_matrix_ops_match_optimized() {
        let m = BoolMatrix::from_edges(70, &[(0, 1), (63, 64), (69, 0), (5, 69)]);
        let base = BaselineBitMat::from_matrix(&m);
        assert_eq!(base.transpose().to_matrix(), m.transpose());
        let map: Vec<usize> = (0..70).map(|k| k * 2 + 1).collect();
        assert_eq!(base.embed(141, &map).to_matrix(), m.embed(141, &map));
        let sub = [0usize, 5, 63, 64, 69];
        assert_eq!(base.submatrix(&sub).to_matrix(), m.submatrix(&sub));
    }

    #[test]
    fn frozen_sss_matches_optimized() {
        let machine = MachineSpec::dual_quad_cluster(4);
        for (mapping, p) in [(RankMapping::Block, 32), (RankMapping::RoundRobin, 27)] {
            let prof = TopologyProfile::from_ground_truth_for(&machine, &mapping, p);
            let metric = DistanceMetric::from_costs(&prof.cost);
            let members: Vec<usize> = (0..p).collect();
            let dia = metric.diameter();
            let base = baseline_sss_clusters(&metric, &members, SSS_DEFAULT_SPARSENESS, dia);
            let opt = sss_clusters(&metric, &members, SSS_DEFAULT_SPARSENESS, dia);
            assert_eq!(base, opt, "{mapping:?} p={p}");
        }
    }
}
