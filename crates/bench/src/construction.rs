//! Figure 10: construction walkthrough of a hierarchical, customized
//! barrier for the paper's 3-node / 22-process round-robin case.

use crate::context::ExperimentContext;
use hbar_core::compose::{tune_hybrid, TunedBarrier, TunerConfig};
use hbar_topo::machine::MachineSpec;
use std::fmt::Write as _;

/// Result of the Fig. 10 experiment.
#[derive(Clone, Debug)]
pub struct ConstructionFigure {
    pub tuned: TunedBarrier,
    /// Human-readable walkthrough: cluster tree, per-cluster choices,
    /// and the final stage matrices.
    pub walkthrough: String,
}

/// Tunes the 22-process / 3-node case and renders the construction.
pub fn run_construction(quick: bool) -> ConstructionFigure {
    let mut ctx = if quick {
        ExperimentContext::exact(MachineSpec::dual_quad_cluster(3))
    } else {
        ExperimentContext::new(MachineSpec::dual_quad_cluster(3), false, 0xF16)
    };
    let profile = ctx.profile_for(22);
    let tuned = tune_hybrid(&profile, &TunerConfig::default());
    let walkthrough = render_walkthrough(&tuned);
    ConstructionFigure { tuned, walkthrough }
}

/// Renders the construction provenance of any tuned barrier.
pub fn render_walkthrough(tuned: &TunedBarrier) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Cluster tree:");
    out.push_str(&tuned.tree.render());
    let _ = writeln!(out, "\nGreedy choices (arrival cost × multiplier):");
    for c in &tuned.choices {
        let _ = writeln!(
            out,
            "  depth {} | {:>2} participants {:?} -> {} (score {:.1} us)",
            c.depth,
            c.participants.len(),
            c.participants,
            c.algorithm,
            c.score * 1e6
        );
    }
    let _ = writeln!(
        out,
        "\nComposed schedule: {} stages, {} signals, predicted {:.1} us",
        tuned.schedule.len(),
        tuned.schedule.total_signals(),
        tuned.predicted_cost * 1e6
    );
    let _ = writeln!(out, "\n{}", tuned.schedule);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::verify;

    #[test]
    fn fig10_construction_is_valid_and_hierarchical() {
        let fig = run_construction(true);
        assert!(verify::is_barrier(&fig.tuned.schedule));
        // Round-robin over 3 nodes groups ranks by r mod 3.
        assert_eq!(fig.tuned.tree.children.len(), 3);
        for node_cluster in &fig.tuned.tree.children {
            let m0 = node_cluster.members[0] % 3;
            assert!(node_cluster.members.iter().all(|&r| r % 3 == m0));
        }
        // Representatives of the three node clusters are 0, 1, 2 — the
        // top-level participants of the paper's Fig. 10.
        let reps: Vec<usize> = fig
            .tuned
            .tree
            .children
            .iter()
            .map(|c| c.representative())
            .collect();
        assert_eq!(reps, vec![0, 1, 2]);
    }

    #[test]
    fn walkthrough_mentions_all_parts() {
        let fig = run_construction(true);
        for needle in [
            "Cluster tree:",
            "Greedy choices",
            "Composed schedule",
            "arrival",
        ] {
            assert!(fig.walkthrough.contains(needle), "missing {needle}");
        }
    }
}
