//! Schema gate over every checked-in `BENCH_*.json`.
//!
//! Each perf document in the repository root must parse as JSON, carry a
//! well-formed [`RunManifest`] at the current [`SCHEMA_VERSION`], and
//! present its result rows with interval estimates — `speedup` flanked
//! by `speedup_ci_lo`/`speedup_ci_hi` and full [`Estimate`] objects —
//! not bare scalars. CI runs this suite so a manifest-less or malformed
//! document cannot land.

use hbar_bench::stats::{Estimate, RunManifest, SCHEMA_VERSION};
use serde::{Deserialize, Value};
use std::path::{Path, PathBuf};

/// The repository root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Every `BENCH_*.json` checked in at the repository root.
fn bench_documents() -> Vec<(PathBuf, Value)> {
    let mut docs = Vec::new();
    for entry in std::fs::read_dir(repo_root()).expect("read repo root") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let value: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: malformed JSON: {e}"));
        docs.push((path, value));
    }
    docs
}

/// The value at `key`, or a panic naming the document.
fn field<'a>(doc: &'a Value, key: &str, name: &str) -> &'a Value {
    doc.get(key)
        .unwrap_or_else(|| panic!("{name}: missing `{key}`"))
}

/// Asserts one result row carries interval estimates, not bare scalars.
fn check_row(row: &Value, context: &str) {
    for key in ["speedup", "speedup_ci_lo", "speedup_ci_hi"] {
        match field(row, key, context) {
            Value::Float(x) => assert!(x.is_finite(), "{context}: `{key}` not finite"),
            other => panic!("{context}: `{key}` is not a float: {other:?}"),
        }
    }
    let lo = f64::from_value(field(row, "speedup_ci_lo", context)).expect("checked above");
    let hi = f64::from_value(field(row, "speedup_ci_hi", context)).expect("checked above");
    let point = f64::from_value(field(row, "speedup", context)).expect("checked above");
    assert!(
        lo <= point && point <= hi,
        "{context}: speedup {point} outside its own CI [{lo}, {hi}]"
    );
    // The before/after key pair differs per harness (profile uses
    // exhaustive/clustered, scale uses dense/compressed); accept any
    // spelling but require one.
    let pair = [
        ("before", "after"),
        ("exhaustive", "clustered"),
        ("dense", "compressed"),
    ]
    .into_iter()
    .find(|(b, a)| row.get(b).is_some() && row.get(a).is_some())
    .unwrap_or_else(|| panic!("{context}: no before/after estimate objects"));
    for key in [pair.0, pair.1] {
        let est = Estimate::from_value(field(row, key, context))
            .unwrap_or_else(|e| panic!("{context}: `{key}` is not an Estimate: {e}"));
        assert!(est.n >= 1, "{context}: `{key}` has no samples");
        assert!(
            est.ci_lo <= est.median && est.median <= est.ci_hi,
            "{context}: `{key}` median outside its CI"
        );
        assert!(
            (0.0..1.0).contains(&(1.0 - est.confidence)),
            "{context}: `{key}` confidence {} out of range",
            est.confidence
        );
    }
}

#[test]
fn every_checked_in_bench_document_is_well_formed() {
    let docs = bench_documents();
    assert!(
        docs.len() >= 6,
        "expected the six perf documents at the repo root, found {}",
        docs.len()
    );
    for (path, doc) in &docs {
        let name = path.file_name().unwrap().to_string_lossy();
        let manifest = RunManifest::from_value(field(doc, "manifest", &name))
            .unwrap_or_else(|e| panic!("{name}: bad manifest: {e}"));
        assert_eq!(
            manifest.schema_version, SCHEMA_VERSION,
            "{name}: stale schema version — regenerate the document"
        );
        assert!(!manifest.git_rev.is_empty(), "{name}: empty git_rev");
        assert!(!manifest.schedule.is_empty(), "{name}: empty schedule");
        assert!(!manifest.topology.is_empty(), "{name}: empty topology");
        assert!(
            manifest.estimator.max_reps >= manifest.estimator.min_reps,
            "{name}: estimator budget inverted"
        );
        let bench_key = field(doc, "benchmark", &name);
        assert_eq!(
            bench_key,
            &Value::Str(manifest.benchmark.clone()),
            "{name}: document/manifest benchmark mismatch"
        );
    }
}

/// The serve document is additionally held to the service-level
/// objectives the tune service was built around: a four-digit distinct
/// topology fleet, a warm-path p99 in the tens of microseconds,
/// five-digit sustained throughput, a ≥ 90% Zipf hit rate, and full parity
/// coverage of the cold pass. Regenerating the document with a
/// regressed server fails this gate, not just the eyeball test.
#[test]
fn serve_document_meets_the_service_objectives() {
    let name = "BENCH_serve.json";
    let (_, doc) = bench_documents()
        .into_iter()
        .find(|(path, _)| path.file_name().is_some_and(|n| n == name))
        .unwrap_or_else(|| panic!("{name} missing from the repo root"));
    let serve = field(&doc, "serve", name);
    let float = |v: &Value, ctx: &str| {
        f64::from_value(v).unwrap_or_else(|e| panic!("{name}: {ctx}: not a number: {e}"))
    };

    let topologies = float(field(serve, "topologies", name), "topologies");
    assert!(
        topologies >= 1000.0,
        "{name}: fleet of {topologies} distinct topologies is below the 1000 floor"
    );
    let hit_rate = float(field(serve, "hit_rate", name), "hit_rate");
    assert!(
        hit_rate >= 0.9,
        "{name}: Zipf hit rate {hit_rate} below the 0.9 objective"
    );

    let latency = field(serve, "latency", name);
    let p99 = float(field(latency, "warm_p99_s", name), "warm_p99_s");
    let p99_hi = float(field(latency, "warm_p99_ci_hi", name), "warm_p99_ci_hi");
    assert!(
        p99 <= 100e-6 && p99_hi <= 150e-6,
        "{name}: warm-path p99 {p99}s (CI hi {p99_hi}s) misses the 100us objective"
    );

    let throughput = field(serve, "throughput", name);
    let rps = float(field(throughput, "rps", name), "rps");
    assert!(
        rps >= 50_000.0,
        "{name}: sustained {rps} req/s below the 50k objective"
    );

    let parity = field(serve, "parity", name);
    let checked = float(field(parity, "checked", name), "parity.checked");
    let cold = float(field(parity, "cold_tunes", name), "parity.cold_tunes");
    assert!(
        checked >= 1000.0 && (checked - cold).abs() < f64::EPSILON,
        "{name}: the checked-in document must parity-check every cold tune \
         (checked {checked} of {cold})"
    );

    let stats = field(serve, "stats", name);
    let errors = float(field(stats, "errors", name), "stats.errors");
    let evictions = float(
        field(stats, "cache_evictions", name),
        "stats.cache_evictions",
    );
    assert!(errors == 0.0, "{name}: the run recorded server errors");
    assert!(
        evictions > 0.0,
        "{name}: the run never evicted — the cache cap is not binding and the \
         hit rate is untested against churn"
    );
}

/// The scale document is held to the |P|² memory-wall objectives it was
/// built to witness: every parity row's bit-equality flags true, every
/// cold-tune speedup self-consistent with its own medians, and a
/// headline run that stayed under its memory budget while actually
/// exercising the out-of-core spill path. A regenerated document from a
/// regressed build fails this gate, not just the eyeball test.
#[test]
fn scale_document_meets_the_memory_wall_objectives() {
    let name = "BENCH_scale.json";
    let (_, doc) = bench_documents()
        .into_iter()
        .find(|(path, _)| path.file_name().is_some_and(|n| n == name))
        .unwrap_or_else(|| panic!("{name} missing from the repo root"));
    let float = |v: &Value, ctx: &str| {
        f64::from_value(v).unwrap_or_else(|e| panic!("{name}: {ctx}: not a number: {e}"))
    };
    let flag = |row: &Value, key: &str, ctx: &str| match field(row, key, ctx) {
        Value::Bool(b) => *b,
        other => panic!("{ctx}: `{key}` is not a bool: {other:?}"),
    };

    // Parity: every row must attest bit-equality against the dense path.
    let Value::Array(parity) = field(&doc, "parity", name) else {
        panic!("{name}: `parity` is not an array");
    };
    assert!(!parity.is_empty(), "{name}: empty parity table");
    for (i, row) in parity.iter().enumerate() {
        let ctx = format!("{name}:parity[{i}]");
        for key in ["dense_roundtrip_equal", "fingerprint_equal", "tune_equal"] {
            assert!(flag(row, key, &ctx), "{ctx}: `{key}` is false");
        }
        assert!(
            float(field(row, "classes", &ctx), "classes") >= 1.0,
            "{ctx}: no pair classes"
        );
    }

    // Cold-tune rows: the quoted speedup must be the ratio of the two
    // quoted medians, and the compressed model strictly smaller.
    let Value::Array(cold) = field(&doc, "cold_tune", name) else {
        panic!("{name}: `cold_tune` is not an array");
    };
    assert!(!cold.is_empty(), "{name}: empty cold_tune table");
    for (i, row) in cold.iter().enumerate() {
        let ctx = format!("{name}:cold_tune[{i}]");
        let dense_s = float(field(row, "dense_s", &ctx), "dense_s");
        let compressed_s = float(field(row, "compressed_s", &ctx), "compressed_s");
        let speedup = float(field(row, "speedup", &ctx), "speedup");
        assert!(
            (speedup - dense_s / compressed_s).abs() <= 1e-9 * speedup.abs(),
            "{ctx}: speedup {speedup} is not dense_s/compressed_s = {}",
            dense_s / compressed_s
        );
        let dense_b = float(field(row, "dense_model_bytes", &ctx), "dense_model_bytes");
        let compr_b = float(
            field(row, "compressed_model_bytes", &ctx),
            "compressed_model_bytes",
        );
        assert!(
            compr_b < dense_b,
            "{ctx}: compressed model ({compr_b} B) not smaller than dense ({dense_b} B)"
        );
    }

    // Headline: the budget held, the spill path ran, and the model beat
    // the dense equivalent by construction.
    let headline = field(&doc, "headline", name);
    assert!(
        flag(headline, "budget_respected", name),
        "{name}: headline run exceeded its memory budget"
    );
    let budget = float(field(&doc, "mem_budget_bytes", name), "mem_budget_bytes");
    let peak = float(
        field(headline, "peak_rss_bytes", name),
        "headline.peak_rss_bytes",
    );
    assert!(
        peak <= budget,
        "{name}: headline peak RSS {peak} B over the {budget} B budget"
    );
    assert!(
        flag(headline, "spill_forced", name),
        "{name}: the staging budget never forced a spill — the out-of-core \
         path is untested at scale"
    );
    let spill = field(headline, "spill", name);
    let spilled = float(field(spill, "spilled_tiles", name), "spill.spilled_tiles");
    let tiles = float(field(spill, "tiles", name), "spill.tiles");
    assert!(
        spilled >= 1.0 && spilled <= tiles,
        "{name}: {spilled} of {tiles} tiles spilled is not a witness of the \
         out-of-core path"
    );
    let compr_b = float(
        field(headline, "compressed_model_bytes", name),
        "headline.compressed_model_bytes",
    );
    let dense_b = float(
        field(headline, "dense_equivalent_bytes", name),
        "headline.dense_equivalent_bytes",
    );
    assert!(
        compr_b < dense_b && compr_b <= budget,
        "{name}: headline model {compr_b} B does not beat dense {dense_b} B \
         within the {budget} B budget"
    );
}

#[test]
fn every_result_row_carries_interval_estimates() {
    for (path, doc) in bench_documents() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        // Every array of timing rows in the document is held to the row
        // schema; documents keep their rows under different keys
        // (results, closure, clustering, cold_tune). Arrays of
        // non-timing rows (the scale document's parity table) carry no
        // `speedup` and are gated by their own document test instead.
        let mut row_arrays = 0;
        for (key, value) in doc
            .as_object()
            .unwrap_or_else(|| panic!("{name}: not an object"))
        {
            let Value::Array(rows) = value else { continue };
            if rows
                .iter()
                .all(|r| r.get("ranks").is_some() && r.get("speedup").is_some())
                && !rows.is_empty()
            {
                row_arrays += 1;
                for (i, row) in rows.iter().enumerate() {
                    check_row(row, &format!("{name}:{key}[{i}]"));
                }
            }
        }
        assert!(row_arrays >= 1, "{name}: no result rows found");
    }
}
