//! Tuned hybrid barriers executed on real threads.

use hbar_core::codegen::compile_schedule;
use hbar_core::compose::{tune_hybrid, TunerConfig};
use hbar_threadrun::executor::ThreadExecutor;
use hbar_threadrun::harness;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use std::time::Duration;

fn tuned_for(p: usize) -> hbar_core::compose::TunedBarrier {
    let machine = MachineSpec::new(1, 2, p.div_ceil(2));
    let profile = TopologyProfile::from_ground_truth_for(&machine, &RankMapping::Block, p);
    tune_hybrid(&profile, &TunerConfig::default())
}

#[test]
fn tuned_hybrid_executes_and_synchronizes_on_threads() {
    for p in [2usize, 4, 6] {
        let tuned = tuned_for(p);
        let (ok, runs) = harness::staggered_delay_check(&tuned.schedule, Duration::from_millis(12));
        assert!(ok, "p={p}: {runs:?}");
    }
}

#[test]
fn tuned_hybrid_timing_is_sane() {
    let tuned = tuned_for(4);
    let mut ex = ThreadExecutor::new(compile_schedule(&tuned.schedule).unwrap());
    let t = ex.time_barrier(100);
    assert!(t > Duration::ZERO);
    assert!(t < Duration::from_millis(20), "per-barrier {t:?}");
}

#[test]
fn extended_tuner_schedules_also_run_on_threads() {
    let machine = MachineSpec::new(1, 2, 2);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let tuned = tune_hybrid(&profile, &TunerConfig::extended());
    let (ok, _) = harness::staggered_delay_check(&tuned.schedule, Duration::from_millis(10));
    assert!(ok);
}

#[test]
fn exact_scoring_schedules_also_run_on_threads() {
    let machine = MachineSpec::new(1, 2, 2);
    let profile = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
    let tuned = tune_hybrid(
        &profile,
        &TunerConfig {
            score_exact: true,
            ..TunerConfig::default()
        },
    );
    let (ok, _) = harness::staggered_delay_check(&tuned.schedule, Duration::from_millis(10));
    assert!(ok);
}
