//! Model-checked executions of the threadrun synchronization primitives.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p hbar-threadrun --release --test loom
//! ```
//!
//! Under `--cfg loom` the crate's [`hbar_threadrun::sync`] facade swaps
//! its atomics for model-checked ones, and `loom::model` explores every
//! interleaving of the closure up to the preemption bound — each model
//! below is a *proof over schedules*, not a stress test. Models are kept
//! small (2–3 threads, 1–2 generations): the properties they pin —
//! ack-after-consume, no lost generation wake-up, counter-reset safety —
//! are all two-party protocol invariants, so small instances already
//! exercise every protocol state.

#![cfg(loom)]

use hbar_threadrun::baselines::{CentralCounterBarrier, ThreadBarrier};
use hbar_threadrun::signal::SignalBoard;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Sender and receiver complete two full signal/consume/ack generations
/// in every interleaving, and the counters agree afterwards.
#[test]
fn signal_board_two_generation_rendezvous() {
    loom::model(|| {
        let board = Arc::new(SignalBoard::new(2));
        let receiver = {
            let board = Arc::clone(&board);
            thread::spawn(move || {
                for k in 1..=2 {
                    board.consume(0, 1, k);
                }
            })
        };
        for k in 1..=2u64 {
            board.signal(0, 1);
            board.await_ack(0, 1, k);
        }
        receiver.join().unwrap();
        assert_eq!(board.signal_count(0, 1), 2);
        assert_eq!(board.ack_count(0, 1), 2);
    });
}

/// The synchronous-send property: `await_ack` returning implies the
/// receiver consumed the signal, in every interleaving. This is the
/// model-checked version of the sleep-based unit test in `signal.rs`.
#[test]
fn signal_board_ack_implies_consumption() {
    loom::model(|| {
        let board = Arc::new(SignalBoard::new(2));
        let consumed = Arc::new(AtomicUsize::new(0));
        let receiver = {
            let (board, consumed) = (Arc::clone(&board), Arc::clone(&consumed));
            thread::spawn(move || {
                consumed.store(1, Ordering::SeqCst);
                board.consume(0, 1, 1);
            })
        };
        board.signal(0, 1);
        board.await_ack(0, 1, 1);
        assert_eq!(
            consumed.load(Ordering::SeqCst),
            1,
            "ack must follow consumption"
        );
        receiver.join().unwrap();
    });
}

/// Two signals posted before any consumption are both delivered: the
/// receiver can consume them out of lock-step with the sender's posts.
#[test]
fn signal_board_buffers_eager_sender() {
    loom::model(|| {
        let board = Arc::new(SignalBoard::new(2));
        let receiver = {
            let board = Arc::clone(&board);
            thread::spawn(move || {
                board.consume(0, 1, 1);
                board.consume(0, 1, 2);
            })
        };
        board.signal(0, 1);
        board.signal(0, 1);
        board.await_ack(0, 1, 2);
        receiver.join().unwrap();
        assert_eq!(board.ack_count(0, 1), 2);
    });
}

/// Two threads, two generations: no interleaving loses a wake-up across
/// the counter reset, and the arrival counter proves the synchronization
/// (nobody leaves phase `k` before both arrivals of phase `k`).
#[test]
fn central_counter_two_threads_two_generations() {
    loom::model(|| {
        let barrier = Arc::new(CentralCounterBarrier::new(2));
        let arrived = Arc::new(AtomicUsize::new(0));
        let peer = {
            let (barrier, arrived) = (Arc::clone(&barrier), Arc::clone(&arrived));
            thread::spawn(move || {
                for phase in 1..=2usize {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    assert!(arrived.load(Ordering::SeqCst) >= phase * 2);
                }
            })
        };
        for phase in 1..=2usize {
            arrived.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            assert!(arrived.load(Ordering::SeqCst) >= phase * 2);
        }
        peer.join().unwrap();
        assert_eq!(arrived.load(Ordering::SeqCst), 4);
    });
}

/// Three threads, one generation: the last arriver's reset does not race
/// the two spinners out of their wake-up.
#[test]
fn central_counter_three_threads_synchronize() {
    loom::model(|| {
        let barrier = Arc::new(CentralCounterBarrier::new(3));
        let arrived = Arc::new(AtomicUsize::new(0));
        let peers: Vec<_> = (0..2)
            .map(|_| {
                let (barrier, arrived) = (Arc::clone(&barrier), Arc::clone(&arrived));
                thread::spawn(move || {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    assert_eq!(arrived.load(Ordering::SeqCst), 3);
                })
            })
            .collect();
        arrived.fetch_add(1, Ordering::SeqCst);
        barrier.wait();
        assert_eq!(arrived.load(Ordering::SeqCst), 3);
        for peer in peers {
            peer.join().unwrap();
        }
    });
}
