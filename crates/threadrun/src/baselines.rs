//! Classical shared-memory barriers, as comparison points for generated
//! schedules executed on threads.

use crate::sync::{wait_until, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier as StdBarrier;

/// A reusable thread barrier.
pub trait ThreadBarrier: Sync {
    /// Blocks until all `n` participants have called `wait`.
    fn wait(&self);
    /// Short name for benchmark labels.
    fn name(&self) -> &'static str;
}

/// The classic central-counter barrier with a global generation word
/// (sense reversal by generation): the last arriver resets the counter
/// and bumps the generation; everyone else spins on the generation.
pub struct CentralCounterBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicU64,
}

impl CentralCounterBarrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        CentralCounterBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }
}

impl ThreadBarrier for CentralCounterBarrier {
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            wait_until(|| self.generation.load(Ordering::Acquire) != gen);
        }
    }

    fn name(&self) -> &'static str {
        "central-counter"
    }
}

/// `std::sync::Barrier` adapter (futex-based blocking barrier).
pub struct StdSyncBarrier {
    inner: StdBarrier,
}

impl StdSyncBarrier {
    /// Creates a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        StdSyncBarrier {
            inner: StdBarrier::new(n),
        }
    }
}

impl ThreadBarrier for StdSyncBarrier {
    fn wait(&self) {
        self.inner.wait();
    }

    fn name(&self) -> &'static str {
        "std-sync"
    }
}

/// Runs `iterations` waits of `barrier` on `n` threads and returns the
/// mean per-barrier duration at the slowest thread.
pub fn time_thread_barrier(
    barrier: &dyn ThreadBarrier,
    n: usize,
    iterations: usize,
) -> std::time::Duration {
    use std::time::Instant;
    assert!(iterations > 0);
    let start_line = StdBarrier::new(n);
    let mut worst = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let start_line = &start_line;
                scope.spawn(move || {
                    start_line.wait();
                    let t0 = Instant::now();
                    for _ in 0..iterations {
                        barrier.wait();
                    }
                    t0.elapsed()
                })
            })
            .collect();
        for h in handles {
            worst = worst.max(h.join().expect("barrier thread panicked"));
        }
    });
    worst / iterations as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_synchronizes(barrier: &dyn ThreadBarrier, n: usize) {
        // Phase counter: all threads must see the full arrival count of a
        // phase before anyone proceeds to the next.
        let arrived = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..n {
                let arrived = &arrived;
                scope.spawn(move || {
                    for phase in 1..=20usize {
                        arrived.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        assert!(arrived.load(Ordering::SeqCst) >= phase * n);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 20 * n);
    }

    #[test]
    fn central_counter_synchronizes() {
        check_synchronizes(&CentralCounterBarrier::new(4), 4);
    }

    #[test]
    fn std_sync_synchronizes() {
        check_synchronizes(&StdSyncBarrier::new(3), 3);
    }

    #[test]
    fn central_counter_is_reusable_many_times() {
        let b = CentralCounterBarrier::new(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn timing_returns_positive_duration() {
        let b = CentralCounterBarrier::new(4);
        let t = time_thread_barrier(&b, 4, 100);
        assert!(t > std::time::Duration::ZERO);
    }

    #[test]
    fn single_participant_barrier_is_free_flowing() {
        let b = CentralCounterBarrier::new(1);
        for _ in 0..100 {
            b.wait();
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        CentralCounterBarrier::new(0);
    }
}
