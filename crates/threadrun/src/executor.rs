//! Executing compiled rank programs on OS threads.

use crate::signal::SignalBoard;
use hbar_core::codegen::RankProgram;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Executes a set of compiled rank programs over real threads.
pub struct ThreadExecutor {
    programs: Vec<RankProgram>,
    board: SignalBoard,
}

/// Timing result of one execution batch.
#[derive(Clone, Debug)]
pub struct ExecTiming {
    /// Wall-clock time from the common origin (taken once, before the
    /// threads are released) until each rank finished its iterations.
    /// A shared origin keeps the staggered-delay property sound even on
    /// heavily oversubscribed machines, at the price of counting thread
    /// release skew into every rank's time.
    pub per_rank: Vec<Duration>,
    /// Number of barrier iterations executed.
    pub iterations: usize,
}

impl ExecTiming {
    /// The slowest rank's total time (the batch makespan).
    pub fn makespan(&self) -> Duration {
        self.per_rank.iter().copied().max().unwrap_or_default()
    }

    /// Mean time per barrier execution at the slowest rank.
    pub fn per_barrier(&self) -> Duration {
        self.makespan() / self.iterations.max(1) as u32
    }
}

impl ThreadExecutor {
    /// Creates an executor; programs must be indexed by rank `0..p` in
    /// order (as produced by
    /// [`compile_schedule`](hbar_core::codegen::compile_schedule)).
    ///
    /// # Panics
    /// Panics if programs are not densely rank-ordered, or reference
    /// out-of-range partners.
    pub fn new(programs: Vec<RankProgram>) -> Self {
        let p = programs.len();
        for (idx, prog) in programs.iter().enumerate() {
            assert_eq!(prog.rank, idx, "programs must be rank-ordered");
            for step in &prog.steps {
                for &x in step.sends.iter().chain(&step.recvs) {
                    assert!(x < p, "rank {idx} references out-of-range partner {x}");
                    assert_ne!(x, idx, "rank {idx} references itself");
                }
            }
        }
        ThreadExecutor {
            programs,
            board: SignalBoard::new(p),
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.programs.len()
    }

    /// Runs `iterations` back-to-back barrier executions on `p` threads
    /// and returns per-rank timings. `pre_run(rank)` is invoked on each
    /// thread after the common start line but before its iterations —
    /// used to inject staggered entry delays (§VI check).
    pub fn run(&mut self, iterations: usize, pre_run: impl Fn(usize) + Sync) -> ExecTiming {
        assert!(iterations > 0, "need at least one iteration");
        let p = self.p();
        let start_line = Barrier::new(p);
        let board = &self.board;
        let programs = &self.programs;
        // Per-(pair) expected counts are derived from monotonic totals, so
        // this method can be called repeatedly; we track a base offset.
        let base_sends: Vec<Vec<u64>> = programs
            .iter()
            .map(|prog| {
                (0..p)
                    .map(|dst| board.signal_count(prog.rank, dst))
                    .collect()
            })
            .collect();

        let mut per_rank = vec![Duration::ZERO; p];
        let origin = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = programs
                .iter()
                .enumerate()
                .map(|(rank, prog)| {
                    let start_line = &start_line;
                    let pre_run = &pre_run;
                    let base = &base_sends;
                    scope.spawn(move || {
                        // Local monotonic counters (offsets past prior runs).
                        let mut sent: Vec<u64> = base[rank].clone();
                        let mut seen: Vec<u64> =
                            (0..p).map(|src| board.signal_count(src, rank)).collect();
                        start_line.wait();
                        pre_run(rank);
                        for _ in 0..iterations {
                            for step in &prog.steps {
                                for &dst in &step.sends {
                                    sent[dst] += 1;
                                    board.signal(rank, dst);
                                }
                                for &src in &step.recvs {
                                    seen[src] += 1;
                                    board.consume(src, rank, seen[src]);
                                }
                                for &dst in &step.sends {
                                    board.await_ack(rank, dst, sent[dst]);
                                }
                            }
                        }
                        (rank, origin.elapsed())
                    })
                })
                .collect();
            for h in handles {
                let (rank, d) = h.join().expect("executor thread panicked");
                per_rank[rank] = d;
            }
        });
        ExecTiming {
            per_rank,
            iterations,
        }
    }

    /// Convenience: run `iterations` barriers with no entry delays and
    /// return the mean per-barrier time at the slowest rank.
    pub fn time_barrier(&mut self, iterations: usize) -> Duration {
        self.run(iterations, |_| {}).per_barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::codegen::compile_schedule;

    fn executor_for(alg: Algorithm, p: usize) -> ThreadExecutor {
        let members: Vec<usize> = (0..p).collect();
        let sched = alg.full_schedule(p, &members);
        ThreadExecutor::new(compile_schedule(&sched).unwrap())
    }

    #[test]
    fn all_paper_algorithms_execute() {
        for alg in Algorithm::PAPER_SET {
            for p in [2, 3, 4, 7] {
                let mut ex = executor_for(alg, p);
                let t = ex.time_barrier(50);
                assert!(t > Duration::ZERO, "{alg} p={p}");
            }
        }
    }

    #[test]
    fn repeated_run_calls_share_the_board() {
        let mut ex = executor_for(Algorithm::Dissemination, 4);
        let a = ex.run(10, |_| {});
        let b = ex.run(10, |_| {});
        assert_eq!(a.iterations, 10);
        assert!(b.makespan() > Duration::ZERO);
    }

    #[test]
    fn staggered_entry_blocks_everyone() {
        // If rank 2 sleeps 25 ms before entering, no rank may finish the
        // barrier in less (the synchronization property).
        let mut ex = executor_for(Algorithm::Tree, 4);
        let delay = Duration::from_millis(25);
        let timing = ex.run(1, |rank| {
            if rank == 2 {
                std::thread::sleep(delay);
            }
        });
        for (r, d) in timing.per_rank.iter().enumerate() {
            assert!(*d >= delay, "rank {r} exited after {d:?} < {delay:?}");
        }
    }

    #[test]
    fn non_barrier_schedule_lets_ranks_escape() {
        // Arrival-only tree: the root waits for everyone, but leaf ranks
        // escape immediately even when another leaf is delayed.
        use hbar_core::schedule::BarrierSchedule;
        let p = 4;
        let members: Vec<usize> = (0..p).collect();
        let arrival = Algorithm::Tree.arrival_embedded(p, &members);
        let mut sched = BarrierSchedule::new(p);
        for m in arrival {
            sched.push(hbar_core::schedule::Stage::arrival(m));
        }
        let mut ex = ThreadExecutor::new(compile_schedule(&sched).unwrap());
        // Generous delay: rank 1's "early escape" must beat it even when
        // the host is oversubscribed and thread release is skewed.
        let delay = Duration::from_millis(150);
        let timing = ex.run(1, |rank| {
            if rank == 3 {
                std::thread::sleep(delay);
            }
        });
        // Rank 1 only signals rank 0 in stage 0; it never hears about 3.
        assert!(timing.per_rank[1] < delay, "rank 1 should escape early");
        // Rank 0 transitively waits on rank 3's arrival.
        assert!(timing.per_rank[0] >= delay);
    }

    #[test]
    fn per_barrier_divides_by_iterations() {
        let mut ex = executor_for(Algorithm::Linear, 3);
        let t = ex.run(100, |_| {});
        assert_eq!(t.per_barrier(), t.makespan() / 100);
    }

    #[test]
    #[should_panic(expected = "rank-ordered")]
    fn unordered_programs_rejected() {
        let members: Vec<usize> = (0..3).collect();
        let mut progs = compile_schedule(&Algorithm::Linear.full_schedule(3, &members)).unwrap();
        progs.swap(0, 1);
        ThreadExecutor::new(progs);
    }
}
