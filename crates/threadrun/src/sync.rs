//! Synchronization facade: `std` atomics in normal builds, `loom`
//! model-checked atomics under `--cfg loom`.
//!
//! Every primitive in this crate that participates in a loom model
//! ([`signal::SignalBoard`](crate::signal::SignalBoard),
//! [`baselines::CentralCounterBarrier`](crate::baselines::CentralCounterBarrier))
//! imports its atomics and wait loop from here, so the exact code that
//! runs in production is the code the model checker explores — only the
//! atomic type and the yield primitive are swapped.

#[cfg(not(loom))]
pub use crossbeam::utils::CachePadded;
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Under loom, cache-line padding is irrelevant (the checker serializes
/// every access) and `crossbeam`'s wrapper would hide the model-checked
/// atomics, so a transparent stand-in is used instead.
#[cfg(loom)]
mod cache_padded {
    /// Transparent stand-in for `crossbeam::utils::CachePadded`.
    #[derive(Debug, Default)]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps a value.
        pub fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }
}

#[cfg(loom)]
pub use cache_padded::CachePadded;

/// How many spin iterations to burn before yielding the CPU while waiting.
/// Oversubscribed runs (more ranks than cores) rely on the yield.
#[cfg(not(loom))]
const SPIN_BEFORE_YIELD: u32 = 128;

/// Spin-then-yield wait loop.
#[cfg(not(loom))]
#[inline]
pub fn wait_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < SPIN_BEFORE_YIELD {
            std::hint::spin_loop();
            spins += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Wait loop under the model checker: every failed check parks the
/// thread until another thread writes, so spin loops explore exactly one
/// re-check per visible write instead of unbounded spinning.
#[cfg(loom)]
pub fn wait_until(cond: impl Fn() -> bool) {
    while !cond() {
        loom::thread::yield_now();
    }
}
