//! Correctness and timing harnesses for thread-backed barriers.

use crate::executor::ThreadExecutor;
use hbar_core::codegen::compile_schedule;
use hbar_core::schedule::BarrierSchedule;
use std::time::Duration;

/// Result of one staggered-delay run on real threads.
#[derive(Clone, Debug)]
pub struct ThreadDelayRun {
    pub delayed_rank: usize,
    pub per_rank: Vec<Duration>,
}

/// The §VI synchronization check on real threads: once per rank, that
/// rank sleeps `delay` before entering the barrier; every rank must take
/// at least `delay` to exit. Returns overall success plus the runs.
///
/// Real scheduling makes timing approximate, but only in the direction
/// that cannot cause false failures: sleeping at least `delay` is
/// guaranteed by the OS, and any rank exiting earlier than `delay` has
/// provably not synchronized with the delayed rank.
pub fn staggered_delay_check(
    schedule: &BarrierSchedule,
    delay: Duration,
) -> (bool, Vec<ThreadDelayRun>) {
    let mut executor = ThreadExecutor::new(
        compile_schedule(schedule).expect("schedule passes codegen validation"),
    );
    let p = executor.p();
    let mut runs = Vec::with_capacity(p);
    let mut all_ok = true;
    for delayed in 0..p {
        let timing = executor.run(1, |rank| {
            if rank == delayed {
                std::thread::sleep(delay);
            }
        });
        all_ok &= timing.per_rank.iter().all(|&d| d >= delay);
        runs.push(ThreadDelayRun {
            delayed_rank: delayed,
            per_rank: timing.per_rank,
        });
    }
    (all_ok, runs)
}

/// Mean per-barrier execution time of a schedule on real threads.
pub fn time_schedule(schedule: &BarrierSchedule, iterations: usize) -> Duration {
    ThreadExecutor::new(compile_schedule(schedule).expect("schedule passes codegen validation"))
        .time_barrier(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::schedule::Stage;
    use hbar_matrix::BoolMatrix;

    #[test]
    fn paper_algorithms_pass_delay_check_on_threads() {
        let p = 4;
        let members: Vec<usize> = (0..p).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            let (ok, runs) = staggered_delay_check(&sched, Duration::from_millis(15));
            assert!(ok, "{alg} failed the staggered delay check: {runs:?}");
        }
    }

    #[test]
    fn arrival_only_fails_delay_check_on_threads() {
        let p = 3;
        let mut sched = BarrierSchedule::new(p);
        let mut s0 = BoolMatrix::zeros(p);
        for i in 1..p {
            s0.set(i, 0, true);
        }
        sched.push(Stage::arrival(s0));
        let (ok, _) = staggered_delay_check(&sched, Duration::from_millis(20));
        assert!(!ok, "arrival-only pattern must fail");
    }

    #[test]
    fn timing_scales_with_iterations_sanely() {
        let members: Vec<usize> = (0..4).collect();
        let sched = Algorithm::Dissemination.full_schedule(4, &members);
        let t = time_schedule(&sched, 200);
        assert!(t > Duration::ZERO);
        assert!(
            t < Duration::from_millis(50),
            "per-barrier {t:?} absurdly slow"
        );
    }
}
