//! Pairwise atomic signal cells.

use crate::sync::{wait_until, AtomicU64, CachePadded, Ordering};

/// A `p × p` board of monotonic signal and acknowledgement counters.
///
/// `sig[src][dst]` counts signals sent from `src` to `dst`;
/// `ack[src][dst]` counts signals from `src` consumed by `dst`. Counters
/// never reset, so repeated barrier executions need no reinitialization —
/// each side tracks its own expected counts.
pub struct SignalBoard {
    p: usize,
    sig: Vec<CachePadded<AtomicU64>>,
    ack: Vec<CachePadded<AtomicU64>>,
}

impl SignalBoard {
    /// Creates a zeroed board for `p` ranks.
    pub fn new(p: usize) -> Self {
        SignalBoard {
            p,
            sig: (0..p * p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            ack: (0..p * p)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    #[inline]
    fn idx(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.p && dst < self.p);
        src * self.p + dst
    }

    /// Posts one signal `src → dst` (the nonblocking send).
    #[inline]
    pub fn signal(&self, src: usize, dst: usize) {
        self.sig[self.idx(src, dst)].fetch_add(1, Ordering::Release);
    }

    /// Blocks until at least `expected` signals `src → dst` have been
    /// posted, then acknowledges consumption of the `expected`-th (the
    /// receive side of a synchronous signal).
    #[inline]
    pub fn consume(&self, src: usize, dst: usize, expected: u64) {
        let cell = &self.sig[self.idx(src, dst)];
        wait_until(|| cell.load(Ordering::Acquire) >= expected);
        self.ack[self.idx(src, dst)].fetch_add(1, Ordering::Release);
    }

    /// Blocks until the receiver has consumed at least `expected` signals
    /// `src → dst` (the completion wait of a synchronous send).
    #[inline]
    pub fn await_ack(&self, src: usize, dst: usize, expected: u64) {
        let cell = &self.ack[self.idx(src, dst)];
        wait_until(|| cell.load(Ordering::Acquire) >= expected);
    }

    /// Current signal count (for tests).
    pub fn signal_count(&self, src: usize, dst: usize) -> u64 {
        self.sig[self.idx(src, dst)].load(Ordering::Acquire)
    }

    /// Current acknowledgement count (for tests).
    pub fn ack_count(&self, src: usize, dst: usize) -> u64 {
        self.ack[self.idx(src, dst)].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn signal_then_consume_single_thread() {
        let b = SignalBoard::new(2);
        b.signal(0, 1);
        assert_eq!(b.signal_count(0, 1), 1);
        b.consume(0, 1, 1); // already posted: returns immediately
        assert_eq!(b.ack_count(0, 1), 1);
        b.await_ack(0, 1, 1);
    }

    #[test]
    fn counters_are_directional() {
        let b = SignalBoard::new(3);
        b.signal(2, 0);
        assert_eq!(b.signal_count(2, 0), 1);
        assert_eq!(b.signal_count(0, 2), 0);
    }

    #[test]
    fn cross_thread_rendezvous() {
        let b = Arc::new(SignalBoard::new(2));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            // Receiver: consume 100 signals in order.
            for k in 1..=100 {
                b2.consume(0, 1, k);
            }
        });
        for k in 1..=100u64 {
            b.signal(0, 1);
            b.await_ack(0, 1, k);
        }
        t.join().unwrap();
        assert_eq!(b.signal_count(0, 1), 100);
        assert_eq!(b.ack_count(0, 1), 100);
    }

    #[test]
    fn sender_blocks_until_receiver_consumes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let b = Arc::new(SignalBoard::new(2));
        let consumed = Arc::new(AtomicBool::new(false));
        let (b2, c2) = (Arc::clone(&b), Arc::clone(&consumed));
        let receiver = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            c2.store(true, Ordering::SeqCst);
            b2.consume(0, 1, 1);
        });
        b.signal(0, 1);
        b.await_ack(0, 1, 1);
        assert!(
            consumed.load(Ordering::SeqCst),
            "ack must follow consumption"
        );
        receiver.join().unwrap();
    }
}
