//! Real OS-thread execution backend for compiled barriers.
//!
//! The paper's generated barriers are C functions executing hard-coded
//! `MPI_Issend`/`MPI_Irecv` sequences. This crate executes the same
//! compiled [`RankProgram`](hbar_core::codegen::RankProgram)s over real
//! threads on the host machine, with pairwise atomic signal cells standing
//! in for MPI point-to-point signals:
//!
//! * a **signal** is an increment of a cache-padded per-`(src, dst)`
//!   counter ([`signal::SignalBoard`]);
//! * the **synchronous-send** property (local completion implies receiver
//!   participation) is an acknowledgement counter incremented by the
//!   receiver when it consumes the signal;
//! * a program **step** sends its signals, consumes its inbound signals,
//!   then waits for its acknowledgements — `Issend* / Irecv* / Waitall`.
//!
//! The host machine is a shared-memory box, so this backend cannot
//! reproduce the inter-node cost cliff (that is the simulator's job); it
//! exists to prove the generated schedules are *correct under real
//! concurrency* and to benchmark schedule execution overhead against
//! classical shared-memory barriers ([`baselines`]).

pub mod baselines;
pub mod executor;
pub mod harness;
pub mod signal;
pub mod sync;

pub use executor::ThreadExecutor;
