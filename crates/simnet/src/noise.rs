//! Measurement noise for the simulated hardware.
//!
//! §IV-B of the paper stresses that its profiles are statistical estimates
//! gathered under realistic conditions — runs "were subject to
//! interference from unrelated load", yet "results still proved to be
//! reproducible". To preserve that property of the methodology, every
//! resource occupancy and wire delay in the simulator can be perturbed by:
//!
//! * **multiplicative jitter** — a one-sided half-normal factor
//!   `1 + σ·|z|`, modelling cache state, scheduling and stack variance;
//! * **preemption spikes** — with small probability an occupancy absorbs
//!   an exponentially distributed extra delay, modelling OS preemption and
//!   unrelated load (the source of the paper's ~200 µs error floor).
//!
//! Sampling sits on the simulator's hottest path (several draws per
//! simulated message), so `|z|` uses the Marsaglia–Tsang ziggurat — one
//! 32-bit draw, one table compare and one multiply in the overwhelmingly
//! common case — and the spike Bernoulli is a single integer threshold
//! compare against a precomputed `u64` cutoff. Draws remain fully
//! deterministic per `(seed, run_salt)`.

use crate::Time;
use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Noise parameters. `NoiseModel::none()` gives a deterministic machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the half-normal jitter factor (0 = off).
    pub jitter_sigma: f64,
    /// Probability that any single occupancy absorbs a preemption spike.
    pub spike_prob: f64,
    /// Mean duration of a preemption spike, in nanoseconds.
    pub spike_mean_ns: f64,
    /// Base RNG seed; runs derive sub-seeds from it deterministically.
    pub seed: u64,
}

impl NoiseModel {
    /// No noise: the simulator becomes a deterministic cost calculator.
    pub fn none() -> Self {
        NoiseModel {
            jitter_sigma: 0.0,
            spike_prob: 0.0,
            spike_mean_ns: 0.0,
            seed: 0,
        }
    }

    /// Noise calibrated for the experiments: a few percent of jitter and
    /// occasional O(100 µs) preemptions, matching the error magnitudes the
    /// paper reports against its predictions.
    pub fn realistic(seed: u64) -> Self {
        NoiseModel {
            jitter_sigma: 0.04,
            spike_prob: 2e-5,
            spike_mean_ns: 120_000.0,
            seed,
        }
    }

    /// Noise calibrated for a *quiet* machine — dedicated nodes, pinned
    /// threads, no competing daemons — the regime the paper (and every
    /// serious MPI benchmarking methodology) profiles under. Jitter is an
    /// order of magnitude below [`NoiseModel::realistic`] and preemption
    /// spikes are rare, so per-pair Hockney intercepts are tight enough
    /// for clustered-vs-exhaustive error bounds to be meaningful.
    pub fn quiet(seed: u64) -> Self {
        NoiseModel {
            jitter_sigma: 0.005,
            spike_prob: 2e-6,
            spike_mean_ns: 120_000.0,
            seed,
        }
    }

    /// True if all stochastic components are disabled.
    pub fn is_deterministic(&self) -> bool {
        self.jitter_sigma == 0.0 && self.spike_prob == 0.0
    }
}

/// Per-run sampling state.
pub struct NoiseState {
    model: NoiseModel,
    rng: SmallRng,
    /// `spike_prob` rescaled to a `u64` threshold so the per-sample
    /// Bernoulli is one integer compare (0 disables spikes).
    spike_threshold: u64,
}

impl NoiseState {
    /// Creates sampling state for one run; `run_salt` decorrelates
    /// repeated runs under the same model.
    pub fn new(model: NoiseModel, run_salt: u64) -> Self {
        NoiseState {
            model,
            rng: SmallRng::seed_from_u64(
                model
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(run_salt),
            ),
            spike_threshold: (model.spike_prob.clamp(0.0, 1.0) * 2f64.powi(64)) as u64,
        }
    }

    /// Perturbs a base duration.
    #[inline]
    pub fn sample(&mut self, base_ns: Time) -> Time {
        if self.model.is_deterministic() || base_ns == 0 {
            return base_ns;
        }
        let mut t = base_ns as f64;
        if self.model.jitter_sigma > 0.0 {
            t *= 1.0 + self.model.jitter_sigma * half_normal(&mut self.rng);
        }
        if self.spike_threshold > 0 && self.rng.next_u64() < self.spike_threshold {
            t += exponential(&mut self.rng, self.model.spike_mean_ns);
        }
        // `t >= 0`, so adding 0.5 and truncating rounds to nearest without
        // the libm `round` call (the baseline x86-64 target has no
        // `roundsd`, making `f64::round` a function call on this path).
        (t + 0.5) as Time
    }
}

/// Ziggurat acceptance tables for the standard normal (Marsaglia & Tsang,
/// "The Ziggurat Method for Generating Random Variables", 128 layers).
struct ZigTables {
    kn: [u32; 128],
    wn: [f64; 128],
    fx: [f64; 128],
}

/// Rightmost layer boundary of the 128-layer normal ziggurat.
const ZIG_R: f64 = 3.442_619_855_899;

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let m1 = 2_147_483_648.0f64; // 2^31
        let vn = 9.912_563_035_262_17e-3; // area of each layer
        let mut dn = ZIG_R;
        let mut tn = dn;
        let q = vn / (-0.5 * dn * dn).exp();
        let mut kn = [0u32; 128];
        let mut wn = [0f64; 128];
        let mut fx = [0f64; 128];
        kn[0] = ((dn / q) * m1) as u32;
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fx[0] = 1.0;
        fx[127] = (-0.5 * dn * dn).exp();
        for i in (1..=126).rev() {
            dn = (-2.0 * ((vn / dn) + (-0.5 * dn * dn).exp()).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * m1) as u32;
            tn = dn;
            fx[i] = (-0.5 * dn * dn).exp();
            wn[i] = dn / m1;
        }
        ZigTables { kn, wn, fx }
    })
}

/// |z| for z ~ N(0, 1), via the ziggurat: a single 32-bit draw resolves
/// ~98.8% of samples with one compare and one multiply; rejections fall
/// back to exact wedge/tail sampling, so the distribution is not
/// approximated.
#[inline]
fn half_normal(rng: &mut SmallRng) -> f64 {
    let t = zig_tables();
    loop {
        let hz = rng.next_u64() as u32 as i32;
        let iz = (hz & 127) as usize;
        if hz.unsigned_abs() < t.kn[iz] {
            return (hz as f64 * t.wn[iz]).abs();
        }
        if let Some(z) = half_normal_fix(rng, t, hz, iz) {
            return z;
        }
    }
}

/// The ziggurat slow path: exact tail sampling for the base layer,
/// wedge acceptance elsewhere. `None` means reject and redraw.
#[cold]
fn half_normal_fix(rng: &mut SmallRng, t: &ZigTables, hz: i32, iz: usize) -> Option<f64> {
    if iz == 0 {
        // Exponential-majorant sampling of the tail beyond ZIG_R.
        loop {
            let u1 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let x = -u1.ln() / ZIG_R;
            let y = -u2.ln();
            if y + y > x * x {
                return Some(ZIG_R + x);
            }
        }
    }
    let x = hz as f64 * t.wn[iz];
    let u: f64 = rng.random();
    if t.fx[iz] + u * (t.fx[iz - 1] - t.fx[iz]) < (-0.5 * x * x).exp() {
        return Some(x.abs());
    }
    None
}

/// Exponentially distributed with the given mean.
fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut s = NoiseState::new(NoiseModel::none(), 7);
        for v in [0u64, 1, 1000, 30_000] {
            assert_eq!(s.sample(v), v);
        }
    }

    #[test]
    fn jitter_is_one_sided_and_bounded_in_expectation() {
        let model = NoiseModel {
            jitter_sigma: 0.05,
            spike_prob: 0.0,
            spike_mean_ns: 0.0,
            seed: 42,
        };
        let mut s = NoiseState::new(model, 0);
        let base = 10_000u64;
        let n = 5000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = s.sample(base);
            assert!(v >= base, "jitter must never shorten an occupancy");
            sum += v;
        }
        let mean = sum as f64 / n as f64;
        // E[1 + σ|z|] = 1 + σ·sqrt(2/π) ≈ 1.04 at σ=0.05.
        assert!(
            (mean / base as f64) < 1.08,
            "mean factor {}",
            mean / base as f64
        );
        assert!((mean / base as f64) > 1.01);
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let model = NoiseModel {
            jitter_sigma: 0.0,
            spike_prob: 0.01,
            spike_mean_ns: 1_000_000.0,
            seed: 1,
        };
        let mut s = NoiseState::new(model, 0);
        let base = 100u64;
        let n = 100_000;
        let spikes = (0..n).filter(|_| s.sample(base) > base * 100).count();
        let rate = spikes as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "spike rate {rate}");
    }

    #[test]
    fn runs_are_deterministic_given_seed_and_salt() {
        let model = NoiseModel::realistic(9);
        let mut a = NoiseState::new(model, 3);
        let mut b = NoiseState::new(model, 3);
        for _ in 0..100 {
            assert_eq!(a.sample(5000), b.sample(5000));
        }
        // Different salt decorrelates.
        let mut c = NoiseState::new(model, 4);
        let same = (0..100)
            .filter(|_| {
                let x = NoiseState::new(model, 3).sample(5000);
                x == c.sample(5000)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn zero_base_stays_zero() {
        let mut s = NoiseState::new(NoiseModel::realistic(5), 0);
        assert_eq!(s.sample(0), 0);
    }
}
