//! Measurement noise for the simulated hardware.
//!
//! §IV-B of the paper stresses that its profiles are statistical estimates
//! gathered under realistic conditions — runs "were subject to
//! interference from unrelated load", yet "results still proved to be
//! reproducible". To preserve that property of the methodology, every
//! resource occupancy and wire delay in the simulator can be perturbed by:
//!
//! * **multiplicative jitter** — a one-sided half-normal factor
//!   `1 + σ·|z|`, modelling cache state, scheduling and stack variance;
//! * **preemption spikes** — with small probability an occupancy absorbs
//!   an exponentially distributed extra delay, modelling OS preemption and
//!   unrelated load (the source of the paper's ~200 µs error floor).

use crate::Time;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Noise parameters. `NoiseModel::none()` gives a deterministic machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the half-normal jitter factor (0 = off).
    pub jitter_sigma: f64,
    /// Probability that any single occupancy absorbs a preemption spike.
    pub spike_prob: f64,
    /// Mean duration of a preemption spike, in nanoseconds.
    pub spike_mean_ns: f64,
    /// Base RNG seed; runs derive sub-seeds from it deterministically.
    pub seed: u64,
}

impl NoiseModel {
    /// No noise: the simulator becomes a deterministic cost calculator.
    pub fn none() -> Self {
        NoiseModel {
            jitter_sigma: 0.0,
            spike_prob: 0.0,
            spike_mean_ns: 0.0,
            seed: 0,
        }
    }

    /// Noise calibrated for the experiments: a few percent of jitter and
    /// occasional O(100 µs) preemptions, matching the error magnitudes the
    /// paper reports against its predictions.
    pub fn realistic(seed: u64) -> Self {
        NoiseModel {
            jitter_sigma: 0.04,
            spike_prob: 2e-5,
            spike_mean_ns: 120_000.0,
            seed,
        }
    }

    /// True if all stochastic components are disabled.
    pub fn is_deterministic(&self) -> bool {
        self.jitter_sigma == 0.0 && self.spike_prob == 0.0
    }
}

/// Per-run sampling state.
pub struct NoiseState {
    model: NoiseModel,
    rng: SmallRng,
}

impl NoiseState {
    /// Creates sampling state for one run; `run_salt` decorrelates
    /// repeated runs under the same model.
    pub fn new(model: NoiseModel, run_salt: u64) -> Self {
        NoiseState {
            model,
            rng: SmallRng::seed_from_u64(
                model
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(run_salt),
            ),
        }
    }

    /// Perturbs a base duration.
    pub fn sample(&mut self, base_ns: Time) -> Time {
        if self.model.is_deterministic() || base_ns == 0 {
            return base_ns;
        }
        let mut t = base_ns as f64;
        if self.model.jitter_sigma > 0.0 {
            t *= 1.0 + self.model.jitter_sigma * half_normal(&mut self.rng);
        }
        if self.model.spike_prob > 0.0 && self.rng.random::<f64>() < self.model.spike_prob {
            t += exponential(&mut self.rng, self.model.spike_mean_ns);
        }
        t.round() as Time
    }
}

/// |z| for z ~ N(0, 1), via Box–Muller.
fn half_normal(rng: &mut SmallRng) -> f64 {
    let u1 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.abs()
}

/// Exponentially distributed with the given mean.
fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut s = NoiseState::new(NoiseModel::none(), 7);
        for v in [0u64, 1, 1000, 30_000] {
            assert_eq!(s.sample(v), v);
        }
    }

    #[test]
    fn jitter_is_one_sided_and_bounded_in_expectation() {
        let model = NoiseModel {
            jitter_sigma: 0.05,
            spike_prob: 0.0,
            spike_mean_ns: 0.0,
            seed: 42,
        };
        let mut s = NoiseState::new(model, 0);
        let base = 10_000u64;
        let n = 5000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = s.sample(base);
            assert!(v >= base, "jitter must never shorten an occupancy");
            sum += v;
        }
        let mean = sum as f64 / n as f64;
        // E[1 + σ|z|] = 1 + σ·sqrt(2/π) ≈ 1.04 at σ=0.05.
        assert!(
            (mean / base as f64) < 1.08,
            "mean factor {}",
            mean / base as f64
        );
        assert!((mean / base as f64) > 1.01);
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let model = NoiseModel {
            jitter_sigma: 0.0,
            spike_prob: 0.01,
            spike_mean_ns: 1_000_000.0,
            seed: 1,
        };
        let mut s = NoiseState::new(model, 0);
        let base = 100u64;
        let n = 100_000;
        let spikes = (0..n).filter(|_| s.sample(base) > base * 100).count();
        let rate = spikes as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "spike rate {rate}");
    }

    #[test]
    fn runs_are_deterministic_given_seed_and_salt() {
        let model = NoiseModel::realistic(9);
        let mut a = NoiseState::new(model, 3);
        let mut b = NoiseState::new(model, 3);
        for _ in 0..100 {
            assert_eq!(a.sample(5000), b.sample(5000));
        }
        // Different salt decorrelates.
        let mut c = NoiseState::new(model, 4);
        let same = (0..100)
            .filter(|_| {
                let x = NoiseState::new(model, 3).sample(5000);
                x == c.sample(5000)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn zero_base_stays_zero() {
        let mut s = NoiseState::new(NoiseModel::realistic(5), 0);
        assert_eq!(s.sample(0), 0);
    }
}
