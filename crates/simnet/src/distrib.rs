//! TCP worker fleet for the decomposed profiling sweep.
//!
//! The sweep's execution layer is a [`crate::sweep::DescriptorExecutor`];
//! this module provides the distributed one. A **worker**
//! ([`serve_worker`], exposed as `hbar profile-worker`) is a plain
//! `std::net` accept loop: read a [`JobHeader`], then answer descriptor
//! batches until the driver disconnects (or a [`FRAME_SHUTDOWN`] ends the
//! process). The **driver** ([`FleetExecutor`]) shards each round's
//! descriptors into fixed-size batches behind a shared queue; one feeder
//! thread per worker address pulls batches, ships them, and pushes
//! responses. A worker that dies mid-batch gets its in-flight batch
//! requeued and the feeder reconnects with bounded retries; if every
//! worker is exhausted the driver either falls back to local execution or
//! reports [`SweepError::WorkersExhausted`].
//!
//! Determinism: descriptors carry their own sub-seeds and results are
//! merged by id, so the final profile is bit-identical no matter how
//! batches were sharded, which worker ran what, how often connections
//! dropped, or whether the fleet was used at all — the loopback
//! kill-and-retry integration test asserts exactly that.

use crate::noise::NoiseModel;
use crate::profiling::ProfilingConfig;
use crate::sweep::{DescriptorExecutor, LocalExecutor, PairSample, PairWorkDescriptor, SweepError};
use crate::wire::{
    decode_batch, decode_job, decode_results, encode_batch_into, encode_job, encode_results_into,
    read_frame_into, write_frame, JobHeader, FRAME_BATCH, FRAME_DRAIN, FRAME_JOB, FRAME_RESULT,
    FRAME_SHUTDOWN,
};
use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Fault injection for the worker loop (tests only in practice, but kept
/// in the public API so integration tests outside the crate can use it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorkerFault {
    /// Serve faithfully.
    #[default]
    None,
    /// Drop the connection abruptly after answering `after` batches, once;
    /// serve faithfully afterwards. Simulates a worker crash + restart.
    DropConnectionOnce {
        /// Batches answered before the drop.
        after: usize,
    },
    /// Exit the accept loop entirely after answering `after` batches.
    /// Simulates a worker that dies and never comes back.
    DieAfter {
        /// Batches answered before death.
        after: usize,
    },
}

/// Runs the worker serve loop on an already-bound listener until a
/// [`FRAME_SHUTDOWN`] arrives (or a [`WorkerFault::DieAfter`] fires).
/// Connections are served one at a time — the driver opens one connection
/// per worker, so per-worker concurrency buys nothing.
#[allow(clippy::needless_pass_by_value)] // owns the socket for the serve lifetime
pub fn serve_worker(listener: TcpListener, fault: WorkerFault) -> io::Result<()> {
    let mut answered = 0usize;
    let mut drop_armed = matches!(fault, WorkerFault::DropConnectionOnce { .. });
    for conn in listener.incoming() {
        let mut stream = match conn {
            Ok(s) => s,
            Err(e) if e.kind() == ErrorKind::ConnectionAborted => continue,
            Err(e) => return Err(e),
        };
        stream.set_nodelay(true).ok();
        match serve_connection(&mut stream, &mut answered, fault, &mut drop_armed)? {
            ConnectionEnd::Continue => {}
            ConnectionEnd::Shutdown => return Ok(()),
        }
    }
    Ok(())
}

enum ConnectionEnd {
    Continue,
    Shutdown,
}

/// Serves one driver connection: job header first, then batches. One
/// read buffer and one result-encode buffer live for the whole
/// connection — frames of a steady-state session allocate nothing.
fn serve_connection(
    stream: &mut TcpStream,
    answered: &mut usize,
    fault: WorkerFault,
    drop_armed: &mut bool,
) -> io::Result<ConnectionEnd> {
    let mut payload = Vec::new();
    let mut resp_buf = Vec::new();
    let tag = match read_frame_into(stream, &mut payload) {
        Ok(t) => t,
        // Driver connected and went away (or a port scanner said hello):
        // not fatal to the worker.
        Err(e) if is_disconnect(&e) => return Ok(ConnectionEnd::Continue),
        Err(e) => return Err(e),
    };
    if tag == FRAME_SHUTDOWN {
        return Ok(ConnectionEnd::Shutdown);
    }
    if tag == FRAME_DRAIN {
        // Graceful no-op session: acknowledge and return to accept.
        write_frame(stream, FRAME_DRAIN, &[]).ok();
        return Ok(ConnectionEnd::Continue);
    }
    if tag != FRAME_JOB {
        // Protocol violation from the peer; drop the connection, keep
        // serving others.
        return Ok(ConnectionEnd::Continue);
    }
    let job = match decode_job(&payload) {
        Ok(j) => j,
        Err(_) => return Ok(ConnectionEnd::Continue),
    };
    let mut executor = LocalExecutor::new(job.machine, job.noise, job.profiling);

    loop {
        let tag = match read_frame_into(stream, &mut payload) {
            Ok(t) => t,
            Err(e) if is_disconnect(&e) => return Ok(ConnectionEnd::Continue),
            Err(e) => return Err(e),
        };
        match tag {
            FRAME_SHUTDOWN => return Ok(ConnectionEnd::Shutdown),
            FRAME_DRAIN => {
                // Driver is done with this session: everything it sent
                // has been answered (the conversation is synchronous),
                // so acknowledge the drain and end the connection
                // cleanly instead of waiting for an abrupt EOF.
                write_frame(stream, FRAME_DRAIN, &[]).ok();
                return Ok(ConnectionEnd::Continue);
            }
            FRAME_BATCH => {
                let descriptors = match decode_batch(&payload) {
                    Ok(d) => d,
                    Err(_) => return Ok(ConnectionEnd::Continue),
                };
                let samples = executor
                    .execute_batch(&descriptors)
                    .expect("local execution is infallible");
                match fault {
                    WorkerFault::DropConnectionOnce { after }
                        if *drop_armed && *answered >= after =>
                    {
                        // Crash before answering: the driver must requeue
                        // this batch and reconnect.
                        *drop_armed = false;
                        return Ok(ConnectionEnd::Continue);
                    }
                    WorkerFault::DieAfter { after } if *answered >= after => {
                        return Ok(ConnectionEnd::Shutdown);
                    }
                    _ => {}
                }
                encode_results_into(&samples, &mut resp_buf);
                write_frame(stream, FRAME_RESULT, &resp_buf)?;
                *answered += 1;
            }
            _ => return Ok(ConnectionEnd::Continue),
        }
    }
}

fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
    )
}

/// Sends a shutdown frame to a worker, ending its accept loop.
pub fn shutdown_worker(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, FRAME_SHUTDOWN, &[])
}

/// Fleet tuning knobs.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Descriptors per shipped batch. Small batches retry cheaply after a
    /// crash; large batches amortize framing. 64 is comfortably both.
    pub batch_size: usize,
    /// Reconnect attempts per worker before writing it off.
    pub reconnect_attempts: u32,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Execute leftover batches locally when every worker is exhausted
    /// (`false` surfaces [`SweepError::WorkersExhausted`] instead).
    pub local_fallback: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            batch_size: 64,
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(50),
            local_fallback: true,
        }
    }
}

/// The distributed [`DescriptorExecutor`]: shards each round's
/// descriptors across TCP workers, with retry-on-disconnect and a
/// deterministic id-keyed merge.
pub struct FleetExecutor {
    addrs: Vec<String>,
    job: JobHeader,
    opts: FleetOptions,
}

impl FleetExecutor {
    /// Fleet over `addrs` (each `host:port`) with an explicit job header.
    pub fn with_job(addrs: Vec<String>, job: JobHeader, opts: FleetOptions) -> Self {
        FleetExecutor { addrs, job, opts }
    }

    /// Convenience: builds the job header from its parts.
    pub fn for_sweep(
        addrs: Vec<String>,
        machine: hbar_topo::machine::MachineSpec,
        noise: NoiseModel,
        profiling: ProfilingConfig,
        opts: FleetOptions,
    ) -> Self {
        FleetExecutor::with_job(
            addrs,
            JobHeader {
                machine,
                noise,
                profiling,
            },
            opts,
        )
    }
}

impl DescriptorExecutor for FleetExecutor {
    fn execute_batch(
        &mut self,
        descriptors: &[PairWorkDescriptor],
    ) -> Result<Vec<PairSample>, SweepError> {
        if descriptors.is_empty() {
            return Ok(Vec::new());
        }
        let queue: Mutex<VecDeque<Vec<PairWorkDescriptor>>> = Mutex::new(
            descriptors
                .chunks(self.opts.batch_size.max(1))
                .map(<[PairWorkDescriptor]>::to_vec)
                .collect(),
        );
        let results: Mutex<Vec<PairSample>> = Mutex::new(Vec::with_capacity(descriptors.len()));

        std::thread::scope(|scope| {
            for addr in &self.addrs {
                let queue = &queue;
                let results = &results;
                let job = &self.job;
                let opts = &self.opts;
                scope.spawn(move || {
                    let mut attempts_left = opts.reconnect_attempts;
                    loop {
                        match feed_worker(addr, job, queue, results) {
                            FeederEnd::QueueDrained => break,
                            FeederEnd::Lost(batch) => {
                                if let Some(batch) = batch {
                                    queue.lock().expect("queue lock").push_back(batch);
                                }
                                if attempts_left == 0 {
                                    break;
                                }
                                attempts_left -= 1;
                                std::thread::sleep(opts.reconnect_backoff);
                            }
                        }
                    }
                });
            }
        });

        // Anything still queued means the whole fleet died.
        let leftovers: Vec<Vec<PairWorkDescriptor>> =
            std::mem::take(&mut *queue.lock().expect("queue lock")).into();
        let mut merged = results.into_inner().expect("results lock");
        if !leftovers.is_empty() {
            if !self.opts.local_fallback {
                return Err(SweepError::WorkersExhausted {
                    remaining_batches: leftovers.len(),
                });
            }
            let mut local = LocalExecutor::new(
                self.job.machine.clone(),
                self.job.noise,
                self.job.profiling.clone(),
            );
            for batch in leftovers {
                merged.extend(local.execute_batch(&batch)?);
            }
        }
        // Id-keyed merge: the sweep validates ids; sorting here makes the
        // returned order independent of sharding and worker timing.
        merged.sort_by_key(|s| s.id);
        Ok(merged)
    }
}

enum FeederEnd {
    /// No work left anywhere; connection closed cleanly.
    QueueDrained,
    /// The connection (or connect attempt) died; `Some(batch)` was
    /// in flight and must be requeued.
    Lost(Option<Vec<PairWorkDescriptor>>),
}

/// One connection's worth of feeding: connect, send the job header, then
/// pump batches until the queue drains or the connection dies.
fn feed_worker(
    addr: &str,
    job: &JobHeader,
    queue: &Mutex<VecDeque<Vec<PairWorkDescriptor>>>,
    results: &Mutex<Vec<PairSample>>,
) -> FeederEnd {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return FeederEnd::Lost(None),
    };
    stream.set_nodelay(true).ok();
    let header = match encode_job(job) {
        Ok(h) => h,
        Err(_) => return FeederEnd::Lost(None),
    };
    if write_frame(&mut stream, FRAME_JOB, &header).is_err() {
        return FeederEnd::Lost(None);
    }
    let mut batch_buf = Vec::new();
    let mut payload = Vec::new();
    loop {
        let Some(batch) = queue.lock().expect("queue lock").pop_front() else {
            // Graceful end-of-session: tell the worker we are done and
            // wait for its ack (best effort — a vanished worker is the
            // same as a drained one from the driver's point of view), so
            // it loops back to accept instead of seeing an abrupt EOF.
            if write_frame(&mut stream, FRAME_DRAIN, &[]).is_ok() {
                // Ack tag is FRAME_DRAIN on a well-behaved worker; any
                // other answer (or an error) changes nothing here.
                let _ = read_frame_into(&mut stream, &mut payload);
            }
            return FeederEnd::QueueDrained;
        };
        encode_batch_into(&batch, &mut batch_buf);
        if write_frame(&mut stream, FRAME_BATCH, &batch_buf).is_err() {
            return FeederEnd::Lost(Some(batch));
        }
        let samples = match read_frame_into(&mut stream, &mut payload) {
            Ok(FRAME_RESULT) => match decode_results(&payload) {
                Ok(s) => s,
                Err(_) => return FeederEnd::Lost(Some(batch)),
            },
            _ => return FeederEnd::Lost(Some(batch)),
        };
        // A confused worker answering the wrong ids poisons the merge;
        // treat it like a crash and requeue.
        if samples.len() != batch.len() || !batch.iter().zip(&samples).all(|(d, s)| d.id == s.id) {
            return FeederEnd::Lost(Some(batch));
        }
        results.lock().expect("results lock").extend(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::WorkKind;

    #[test]
    fn fleet_options_defaults_are_sane() {
        let opts = FleetOptions::default();
        assert!(opts.batch_size > 0);
        assert!(opts.local_fallback);
    }

    #[test]
    fn empty_round_needs_no_workers() {
        let mut fleet = FleetExecutor::for_sweep(
            vec!["127.0.0.1:1".into()],
            hbar_topo::machine::MachineSpec::new(1, 1, 2),
            NoiseModel::none(),
            ProfilingConfig::fast(),
            FleetOptions::default(),
        );
        assert!(fleet.execute_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn unreachable_fleet_falls_back_locally() {
        // Port 1 is unassigned-and-refused on loopback; with fallback on,
        // the sweep must still complete (purely locally).
        let machine = hbar_topo::machine::MachineSpec::new(1, 1, 2);
        let noise = NoiseModel::none();
        let cfg = ProfilingConfig::fast();
        let mut fleet = FleetExecutor::for_sweep(
            vec!["127.0.0.1:1".into()],
            machine.clone(),
            noise,
            cfg.clone(),
            FleetOptions {
                reconnect_attempts: 0,
                ..FleetOptions::default()
            },
        );
        let descs = vec![PairWorkDescriptor {
            id: 0,
            kind: WorkKind::Pair,
            i: 0,
            j: 1,
            core_a: 0,
            core_b: 1,
            sub_seed: 7,
            rep_scale: 1,
        }];
        let via_fleet = fleet.execute_batch(&descs).unwrap();
        let mut local = LocalExecutor::new(machine, noise, cfg);
        let via_local = local.execute_batch(&descs).unwrap();
        assert_eq!(via_fleet.len(), 1);
        assert_eq!(via_fleet[0].o.to_bits(), via_local[0].o.to_bits());
        assert_eq!(via_fleet[0].l.to_bits(), via_local[0].l.to_bits());
    }

    #[test]
    fn unreachable_fleet_without_fallback_errors() {
        let mut fleet = FleetExecutor::for_sweep(
            vec!["127.0.0.1:1".into()],
            hbar_topo::machine::MachineSpec::new(1, 1, 2),
            NoiseModel::none(),
            ProfilingConfig::fast(),
            FleetOptions {
                reconnect_attempts: 0,
                local_fallback: false,
                ..FleetOptions::default()
            },
        );
        let descs = vec![PairWorkDescriptor {
            id: 0,
            kind: WorkKind::Diag,
            i: 0,
            j: 1,
            core_a: 0,
            core_b: 1,
            sub_seed: 7,
            rep_scale: 1,
        }];
        match fleet.execute_batch(&descs) {
            Err(SweepError::WorkersExhausted { remaining_batches }) => {
                assert_eq!(remaining_batches, 1)
            }
            other => panic!("expected WorkersExhausted, got {other:?}"),
        }
    }
}
