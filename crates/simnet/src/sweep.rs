//! The decomposed profiling sweep: classing → representatives → scatter.
//!
//! The exhaustive §IV-A driver ([`crate::profiling::measure_profile`])
//! runs `|P|(|P|−1)/2` pairwise benchmarks; at `P = 4096` that is 8.4
//! million measurement schedules — hours of wall clock for matrices whose
//! entries repeat a handful of values. This module is the Parsimon-style
//! decomposition of that sweep into three independent layers:
//!
//! 1. **classing** — pairs are grouped into equivalence classes by
//!    feature vector ([`hbar_topo::features`]; exact hashing in
//!    [`hbar_core::clustering::classify_pairs`]);
//! 2. **execution** — one *representative* per class is measured, plus a
//!    configurable number of *validation probes* (other members measured
//!    under their own sub-seeds) that estimate the within-class scatter;
//!    repetitions grow geometrically until the scatter is below the
//!    configured tolerance (the Hunold & Carpen-Amarie prescription:
//!    adaptive repetition, stop when the CI is tight). The grow/stop
//!    decision and the median/spread arithmetic are delegated to
//!    [`hbar_stats`] ([`StoppingRule`], [`hbar_stats::rel_spread`],
//!    [`hbar_stats::median`]) — the same implementation the `*-perf`
//!    harnesses measure under, pinned bit-identical to the historical
//!    in-module code by the `stopping_parity` regression test. Work
//!    items are
//!    self-contained [`PairWorkDescriptor`]s, so execution can fan out to
//!    a work-stealing thread pool ([`LocalExecutor`]) or a TCP worker
//!    fleet ([`crate::distrib`]) interchangeably;
//! 3. **scatter** — class estimates are written back (mirrored, per the
//!    symmetric-link assumption) into the full `|P|²` matrices.
//!
//! Everything is seed-deterministic: descriptors carry their noise
//! sub-seed, representatives and probes are chosen by deterministic scan
//! order and counter-hash reservoirs, and estimates are medians over a
//! fixed sample order — so local, distributed, and differently-threaded
//! runs produce bit-identical profiles.
//!
//! In the **singleton regime** — every class has exactly one member, as
//! forced by [`SweepConfig::exact_classes`] or produced naturally by a
//! fully heterogeneous machine — the clustered sweep performs exactly the
//! exhaustive sweep's measurements under the same sub-seeds and must
//! reproduce [`crate::profiling::measure_profile`] bit-for-bit. The
//! regression harness (`profile-perf`) gates on this.

use crate::noise::NoiseModel;
use crate::profiling::{diag_sub_seed, measure_pair, pair_bench, pair_sub_seed, ProfilingConfig};
use hbar_core::clustering::{classify_pairs, ClassingConfig, PairClassing};
use hbar_matrix::DenseMatrix;
use hbar_stats::StoppingRule;
use hbar_topo::compressed::CompressError;
use hbar_topo::cost::CostMatrices;
use hbar_topo::features::{ExactExtractor, PairFeatureExtractor, TopologyExtractor};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a work descriptor measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkKind {
    /// Off-diagonal `(O_ij, L_ij)` pair benchmark.
    Pair,
    /// Diagonal `O_ii` transmission-free call benchmark.
    Diag,
}

/// One self-contained unit of profiling work: everything a worker needs
/// to reproduce the measurement, including the noise sub-seed (so the
/// result is independent of *which* worker runs it, *when*, and in what
/// order).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairWorkDescriptor {
    /// Driver-assigned identity; responses are merged by this key.
    pub id: u32,
    /// Pair or diagonal measurement.
    pub kind: WorkKind,
    /// Rank `i` (for `Diag`: the measured rank).
    pub i: u32,
    /// Rank `j` (for `Diag`: the idle partner rank).
    pub j: u32,
    /// Flat core index rank `i` is pinned to.
    pub core_a: u32,
    /// Flat core index rank `j` is pinned to.
    pub core_b: u32,
    /// Pre-mixed noise sub-seed (see
    /// [`crate::profiling::pair_sub_seed`]); carried in the descriptor so
    /// remote workers never re-derive it.
    pub sub_seed: u64,
    /// Repetition multiplier from adaptive growth (1 = the base
    /// [`ProfilingConfig`] schedule).
    pub rep_scale: u32,
}

/// The measured result of one descriptor. `l` is 0 for diagonal work.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairSample {
    /// Echoed descriptor identity.
    pub id: u32,
    /// Estimated `O` (seconds).
    pub o: f64,
    /// Estimated `L` (seconds); 0 for diagonal work.
    pub l: f64,
}

/// Errors of the decomposed sweep. The distributed layer contributes the
/// socket/protocol variants; the class-compressed scatter
/// ([`crate::scatter`]) contributes spill i/o and model-construction
/// failures. Local dense execution is infallible.
#[derive(Debug)]
pub enum SweepError {
    /// Socket-level failure talking to a worker, or spill-file i/o.
    Io(std::io::Error),
    /// A worker answered with a malformed or mismatched frame.
    Protocol(String),
    /// Every worker died (reconnects exhausted) with work left over and
    /// local fallback disabled.
    WorkersExhausted {
        /// Batches never executed.
        remaining_batches: usize,
    },
    /// The compressed scatter could not build a valid class model (e.g.
    /// the class space overflowed the `u16` grid).
    Compress(CompressError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "worker i/o failed: {e}"),
            SweepError::Protocol(msg) => write!(f, "worker protocol violation: {msg}"),
            SweepError::WorkersExhausted { remaining_batches } => write!(
                f,
                "all workers exhausted with {remaining_batches} batches unexecuted"
            ),
            SweepError::Compress(e) => write!(f, "compressed scatter failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// Something that can execute a batch of descriptors and return one
/// sample per descriptor (any order; merging is by `id`). The sweep's
/// control flow is executor-agnostic, which is what makes the local and
/// distributed paths produce identical profiles.
pub trait DescriptorExecutor {
    /// Executes every descriptor, returning exactly one sample per id.
    fn execute_batch(
        &mut self,
        descriptors: &[PairWorkDescriptor],
    ) -> Result<Vec<PairSample>, SweepError>;
}

/// In-process executor: fans descriptors out over the work-stealing
/// thread pool. Item costs are wildly uneven once adaptive growth kicks
/// in (a grown representative runs 4–8× longer than its neighbours), so
/// dynamic scheduling matters here.
pub struct LocalExecutor {
    machine: MachineSpec,
    noise: NoiseModel,
    cfg: ProfilingConfig,
}

impl LocalExecutor {
    /// Executor measuring on `machine` under `noise` with the base
    /// schedule `cfg`.
    pub fn new(machine: MachineSpec, noise: NoiseModel, cfg: ProfilingConfig) -> Self {
        LocalExecutor {
            machine,
            noise,
            cfg,
        }
    }
}

impl DescriptorExecutor for LocalExecutor {
    fn execute_batch(
        &mut self,
        descriptors: &[PairWorkDescriptor],
    ) -> Result<Vec<PairSample>, SweepError> {
        Ok(descriptors
            .par_iter()
            .map(|d| execute_descriptor(&self.machine, self.noise, &self.cfg, d))
            .collect_stealing())
    }
}

/// Runs one descriptor's full measurement schedule. This is *the* leaf
/// operation of the whole subsystem: local threads and remote workers
/// both end up here, which is why their results agree bit-for-bit.
pub fn execute_descriptor(
    machine: &MachineSpec,
    noise: NoiseModel,
    cfg: &ProfilingConfig,
    d: &PairWorkDescriptor,
) -> PairSample {
    let mut bench = pair_bench(
        machine,
        d.core_a as usize,
        d.core_b as usize,
        noise,
        d.sub_seed,
    );
    match d.kind {
        WorkKind::Pair => {
            let (o, l) = if d.rep_scale <= 1 {
                measure_pair(&mut bench, cfg)
            } else {
                measure_pair(&mut bench, &scaled_config(cfg, d.rep_scale))
            };
            PairSample { id: d.id, o, l }
        }
        WorkKind::Diag => {
            let calls = cfg.noop_calls * (d.rep_scale.max(1) as usize);
            let o = bench.noop(calls);
            PairSample {
                id: d.id,
                o,
                l: 0.0,
            }
        }
    }
}

/// The base schedule with `scale`× the repetitions (sizes and burst
/// counts unchanged — growth buys tighter medians, not new sample
/// points).
fn scaled_config(cfg: &ProfilingConfig, scale: u32) -> ProfilingConfig {
    ProfilingConfig {
        reps: cfg.reps * scale as usize,
        burst_reps: cfg.burst_reps * scale as usize,
        ..cfg.clone()
    }
}

/// Tuning knobs of the decomposed sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The per-measurement benchmark schedule (sizes, repetitions,
    /// bursts, symmetric flag).
    pub profiling: ProfilingConfig,
    /// Validation probes per class: extra members measured under their
    /// own sub-seeds to estimate within-class scatter. 0 disables
    /// validation (fastest, no error estimate).
    pub probes_per_class: usize,
    /// Seed of the deterministic probe reservoir.
    pub probe_seed: u64,
    /// Relative within-class scatter (max |sample − median| / median)
    /// above which a class's repetitions are grown.
    pub ci_rel_tol: f64,
    /// Maximum geometric growth rounds (each doubles `rep_scale`); 0
    /// disables adaptive growth.
    pub max_growth_rounds: u32,
    /// The safety valve: a class whose validated scatter still exceeds
    /// this after all growth rounds is *exploded* — every member is
    /// measured individually at the base schedule under its own
    /// sub-seed, making those matrix entries exactly what the exhaustive
    /// sweep would have produced. `f64::INFINITY` disables explosion.
    pub explode_rel_tol: f64,
    /// Class every pair by exact identity instead of topology features —
    /// the sweep degenerates to the exhaustive one (the bit-parity
    /// regime).
    pub exact_classes: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            profiling: ProfilingConfig::default(),
            probes_per_class: 4,
            probe_seed: 0,
            ci_rel_tol: 0.05,
            max_growth_rounds: 2,
            explode_rel_tol: 0.25,
            exact_classes: false,
        }
    }
}

impl SweepConfig {
    /// Reduced schedule for tests and quick runs (mirrors
    /// [`ProfilingConfig::fast`]).
    pub fn fast() -> Self {
        SweepConfig {
            profiling: ProfilingConfig::fast(),
            probes_per_class: 2,
            explode_rel_tol: f64::INFINITY,
            ..SweepConfig::default()
        }
    }

    /// The singleton-class configuration used by the parity gates:
    /// exact classes, no probes, no growth — measurement-for-measurement
    /// identical to the exhaustive sweep.
    pub fn exact(profiling: ProfilingConfig) -> Self {
        SweepConfig {
            profiling,
            probes_per_class: 0,
            probe_seed: 0,
            ci_rel_tol: f64::INFINITY,
            max_growth_rounds: 0,
            explode_rel_tol: f64::INFINITY,
            exact_classes: true,
        }
    }
}

/// Per-class diagnostics of one sweep.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Samples (representative + probes) the estimate was taken over.
    pub samples: usize,
    /// Final repetition multiplier after adaptive growth.
    pub rep_scale: u32,
    /// Relative scatter of `O` samples around their median.
    pub rel_spread_o: f64,
    /// Relative scatter of `L` samples around their median.
    pub rel_spread_l: f64,
}

/// What the decomposed sweep did and how trustworthy its shortcut is.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Off-diagonal pairs covered by the scatter.
    pub total_pairs: usize,
    /// Off-diagonal equivalence classes.
    pub pair_classes: usize,
    /// Diagonal equivalence classes.
    pub diag_classes: usize,
    /// Descriptors executed (across all growth rounds).
    pub measurements: usize,
    /// Growth rounds that actually ran.
    pub growth_rounds: u32,
    /// Pair classes the safety valve exploded (every member measured
    /// individually because the validated scatter stayed above
    /// [`SweepConfig::explode_rel_tol`]).
    pub exploded_pair_classes: usize,
    /// Diag classes the safety valve exploded.
    pub exploded_diag_classes: usize,
    /// Worst within-class relative scatter observed (0 when probing is
    /// disabled or every class is a singleton).
    pub max_rel_spread: f64,
    /// Mean within-class relative scatter over classes with ≥ 2 samples.
    pub mean_rel_spread: f64,
    /// Per-pair-class diagnostics, indexed like the classing.
    pub pair_stats: Vec<ClassStats>,
    /// Per-diag-class diagnostics.
    pub diag_stats: Vec<ClassStats>,
}

impl SweepReport {
    /// The measurement-count reduction over the exhaustive sweep
    /// (`p` diagonal + all-pairs benchmarks vs what actually ran).
    pub fn reduction_factor(&self, p: usize) -> f64 {
        (self.total_pairs + p) as f64 / self.measurements.max(1) as f64
    }
}

/// Clustered profiling with local work-stealing execution — the
/// drop-in accelerated replacement for
/// [`crate::profiling::measure_profile`].
///
/// # Panics
/// Panics if `p < 2` or the mapping cannot place `p` ranks.
pub fn measure_profile_clustered(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &SweepConfig,
) -> (TopologyProfile, SweepReport) {
    let mut executor = LocalExecutor::new(machine.clone(), noise, cfg.profiling.clone());
    measure_profile_decomposed(machine, mapping, p, noise, cfg, &mut executor)
        .expect("local execution is infallible")
}

/// Quantizes a noise model into the feature-vector regime code: pairs
/// measured under different regimes never share a representative.
pub fn noise_regime_of(noise: &NoiseModel) -> u16 {
    if noise.is_deterministic() {
        return 0;
    }
    // 6 bits of jitter (per-mille, saturating) + 4 bits of spike-rate
    // decade; the seed deliberately does not participate (same
    // distribution ⇒ exchangeable measurements).
    let jitter = ((noise.jitter_sigma * 1000.0).round().clamp(0.0, 63.0)) as u16;
    let spike = if noise.spike_prob > 0.0 {
        (-noise.spike_prob.log10()).round().clamp(0.0, 15.0) as u16
    } else {
        15
    };
    1 + ((jitter << 4) | spike)
}

/// The full decomposed sweep over an arbitrary executor. Classing,
/// descriptor construction, adaptive growth, and scatter all happen here
/// on the driver; only descriptor execution crosses the executor
/// boundary. Results are merged by descriptor id, so the profile is
/// independent of executor scheduling.
///
/// # Panics
/// Panics if `p < 2` or the mapping cannot place `p` ranks.
pub fn measure_profile_decomposed(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &SweepConfig,
    executor: &mut dyn DescriptorExecutor,
) -> Result<(TopologyProfile, SweepReport), SweepError> {
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);
    let regime = noise_regime_of(&noise);
    let topo_extractor = TopologyExtractor::with_noise_regime(regime);
    let exact_extractor = ExactExtractor {
        noise_regime: regime,
    };
    let extractor: &dyn PairFeatureExtractor = if cfg.exact_classes {
        &exact_extractor
    } else {
        &topo_extractor
    };
    let classing = classify_pairs(
        machine,
        &cores,
        p,
        extractor,
        &ClassingConfig {
            symmetric: cfg.profiling.symmetric,
            probes_per_class: cfg.probes_per_class,
            probe_seed: cfg.probe_seed,
        },
    );

    let (cost, report) =
        run_classed_sweep(machine, &cores, &classing, extractor, noise, cfg, executor)?;

    Ok((
        TopologyProfile {
            machine: machine.clone(),
            mapping: mapping.clone(),
            p,
            cost,
        },
        report,
    ))
}

/// One class's sample set across growth rounds.
struct ClassSamples {
    /// `(o, l)` per sample; index 0 is the representative.
    values: Vec<(f64, f64)>,
    rep_scale: u32,
}

/// Everything the measurement phase learned, in class space: per-class
/// estimates, the explosion decisions, and the per-member exact
/// measurements of exploded classes. Both scatter backends (dense
/// matrices here, class-grid tiles in [`crate::scatter`]) consume this —
/// it is `O(classes + exploded members)`, never `O(P²)`.
pub(crate) struct ClassMeasurements {
    /// Median `(O, L)` per pair class.
    pub(crate) pair_estimates: Vec<(f64, f64)>,
    /// Median `O_ii` per diagonal class.
    pub(crate) diag_estimates: Vec<f64>,
    /// Pair classes the safety valve exploded.
    pub(crate) explode_pair: Vec<bool>,
    /// Diag classes the safety valve exploded.
    pub(crate) explode_diag: Vec<bool>,
    /// Exact per-member measurements of exploded pair classes.
    pub(crate) exploded_pairs: HashMap<(usize, usize), (f64, f64)>,
    /// Exact per-member measurements of exploded diag classes.
    pub(crate) exploded_diags: HashMap<usize, f64>,
}

/// Executes the measurement plan for an already-built classing and
/// scatters estimates into dense cost matrices.
fn run_classed_sweep(
    machine: &MachineSpec,
    cores: &[usize],
    classing: &PairClassing,
    extractor: &dyn PairFeatureExtractor,
    noise: NoiseModel,
    cfg: &SweepConfig,
    executor: &mut dyn DescriptorExecutor,
) -> Result<(CostMatrices, SweepReport), SweepError> {
    let (m, report) = measure_classes(machine, cores, classing, extractor, noise, cfg, executor)?;
    let cost = scatter_dense(
        machine,
        cores,
        classing,
        extractor,
        cfg.profiling.symmetric,
        &m,
    );
    Ok((cost, report))
}

/// The measurement phase: representatives + probes, adaptive growth, and
/// the explosion safety valve. Returns class-space results only — matrix
/// materialization is the scatter phase's job, so this function's memory
/// footprint is independent of `P²`.
pub(crate) fn measure_classes(
    machine: &MachineSpec,
    cores: &[usize],
    classing: &PairClassing,
    extractor: &dyn PairFeatureExtractor,
    noise: NoiseModel,
    cfg: &SweepConfig,
    executor: &mut dyn DescriptorExecutor,
) -> Result<(ClassMeasurements, SweepReport), SweepError> {
    let p = cores.len();
    let n_pair = classing.pair_classes.len();
    let n_diag = classing.diag_classes.len();

    // The members each class measures: representative first, then probes.
    let pair_members: Vec<Vec<(u32, u32)>> = classing
        .pair_classes
        .iter()
        .map(|c| {
            let mut m = vec![c.representative];
            m.extend_from_slice(&c.probes);
            m
        })
        .collect();
    let diag_members: Vec<Vec<u32>> = classing
        .diag_classes
        .iter()
        .map(|c| {
            let mut m = vec![c.representative];
            m.extend_from_slice(&c.probes);
            m
        })
        .collect();

    // Descriptor builders. Ids encode (class, member) so responses merge
    // deterministically regardless of executor scheduling: pair work
    // first, diagonal work after.
    let pair_desc = |class: usize, member: usize, scale: u32, id: u32| {
        let (i, j) = pair_members[class][member];
        PairWorkDescriptor {
            id,
            kind: WorkKind::Pair,
            i,
            j,
            core_a: cores[i as usize] as u32,
            core_b: cores[j as usize] as u32,
            sub_seed: pair_sub_seed(i as usize, j as usize, noise.seed),
            rep_scale: scale,
        }
    };
    let diag_desc = |class: usize, member: usize, scale: u32, id: u32| {
        let i = diag_members[class][member] as usize;
        let partner = cores[(i + 1) % p];
        PairWorkDescriptor {
            id,
            kind: WorkKind::Diag,
            i: i as u32,
            j: ((i + 1) % p) as u32,
            core_a: cores[i] as u32,
            core_b: partner as u32,
            sub_seed: diag_sub_seed(i, noise.seed),
            rep_scale: scale,
        }
    };

    let mut pair_samples: Vec<ClassSamples> = pair_members
        .iter()
        .map(|m| ClassSamples {
            values: vec![(f64::NAN, f64::NAN); m.len()],
            rep_scale: 1,
        })
        .collect();
    let mut diag_samples: Vec<ClassSamples> = diag_members
        .iter()
        .map(|m| ClassSamples {
            values: vec![(f64::NAN, f64::NAN); m.len()],
            rep_scale: 1,
        })
        .collect();

    let mut measurements = 0usize;
    let mut growth_rounds = 0u32;

    // The shared stopping rule (also used by the `*-perf` harnesses via
    // `hbar_stats::measure_adaptive`): grow while the relative scatter
    // exceeds the tolerance, within the round budget.
    let rule = StoppingRule {
        rel_tol: cfg.ci_rel_tol,
        max_rounds: cfg.max_growth_rounds,
    };

    // Round 0 measures every class; later rounds re-measure only classes
    // whose scatter exceeds the tolerance, at doubled repetitions.
    let mut pending_pairs: Vec<usize> = (0..n_pair).collect();
    let mut pending_diags: Vec<usize> = (0..n_diag).collect();
    for round in 0..=cfg.max_growth_rounds {
        if pending_pairs.is_empty() && pending_diags.is_empty() {
            break;
        }
        if round > 0 {
            growth_rounds = round;
        }
        // Build the round's descriptors with a per-round id space, and a
        // side table mapping id → (class slot, member slot).
        let mut descriptors = Vec::new();
        let mut slots: Vec<(bool, usize, usize)> = Vec::new();
        for &c in &pending_pairs {
            let scale = pair_samples[c].rep_scale;
            for m in 0..pair_members[c].len() {
                let id = descriptors.len() as u32;
                descriptors.push(pair_desc(c, m, scale, id));
                slots.push((false, c, m));
            }
        }
        for &c in &pending_diags {
            let scale = diag_samples[c].rep_scale;
            for m in 0..diag_members[c].len() {
                let id = descriptors.len() as u32;
                descriptors.push(diag_desc(c, m, scale, id));
                slots.push((true, c, m));
            }
        }
        measurements += descriptors.len();
        let samples = executor.execute_batch(&descriptors)?;
        if samples.len() != descriptors.len() {
            return Err(SweepError::Protocol(format!(
                "executor returned {} samples for {} descriptors",
                samples.len(),
                descriptors.len()
            )));
        }
        let mut seen = vec![false; descriptors.len()];
        for s in samples {
            let Some(&(is_diag, c, m)) = slots.get(s.id as usize) else {
                return Err(SweepError::Protocol(format!("unknown sample id {}", s.id)));
            };
            if std::mem::replace(&mut seen[s.id as usize], true) {
                return Err(SweepError::Protocol(format!(
                    "duplicate sample id {}",
                    s.id
                )));
            }
            if is_diag {
                diag_samples[c].values[m] = (s.o, s.l);
            } else {
                pair_samples[c].values[m] = (s.o, s.l);
            }
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(SweepError::Protocol(format!("missing sample id {hole}")));
        }

        // Decide who grows. Only classes with ≥ 2 samples have a scatter
        // estimate; singletons never grow, preserving exhaustive parity.
        if round == cfg.max_growth_rounds {
            break;
        }
        pending_pairs.retain(|&c| {
            let s = &mut pair_samples[c];
            let (so, sl) = rel_spreads(&s.values);
            if rule.should_grow(so.max(sl)) {
                s.rep_scale *= 2;
                true
            } else {
                false
            }
        });
        pending_diags.retain(|&c| {
            let s = &mut diag_samples[c];
            let (so, _) = rel_spreads(&s.values);
            if rule.should_grow(so) {
                s.rep_scale *= 2;
                true
            } else {
                false
            }
        });
    }

    // Per-class estimates: the median over the class's samples. A
    // singleton class's estimate is exactly its (sole) measurement.
    let pair_estimates: Vec<(f64, f64)> = pair_samples.iter().map(|s| medians(&s.values)).collect();
    let diag_estimates: Vec<f64> = diag_samples.iter().map(|s| medians(&s.values).0).collect();

    let symmetric = cfg.profiling.symmetric;

    // Safety valve: a class whose *validated* scatter still exceeds
    // `explode_rel_tol` after all growth rounds abandons the clustering
    // shortcut — every member is measured individually at the base
    // schedule under its own sub-seed, so those matrix entries are
    // exactly what the exhaustive sweep would have produced.
    let explode_pair: Vec<bool> = pair_samples
        .iter()
        .map(|s| {
            let (so, sl) = rel_spreads(&s.values);
            so.max(sl) > cfg.explode_rel_tol
        })
        .collect();
    let explode_diag: Vec<bool> = diag_samples
        .iter()
        .map(|s| rel_spreads(&s.values).0 > cfg.explode_rel_tol)
        .collect();
    let exploded_pair_classes = explode_pair.iter().filter(|&&b| b).count();
    let exploded_diag_classes = explode_diag.iter().filter(|&&b| b).count();
    let mut exploded_pairs: HashMap<(usize, usize), (f64, f64)> = HashMap::new();
    let mut exploded_diags: HashMap<usize, f64> = HashMap::new();
    if exploded_pair_classes + exploded_diag_classes > 0 {
        let mut descriptors = Vec::new();
        let mut keys: Vec<(bool, usize, usize)> = Vec::new();
        for i in 0..p {
            let range: Box<dyn Iterator<Item = usize>> = if symmetric {
                Box::new((i + 1)..p)
            } else {
                Box::new((0..p).filter(move |&j| j != i))
            };
            for j in range {
                let f = extractor.pair_features(machine, (i, j), (cores[i], cores[j]));
                let c = classing
                    .pair_class_index(&f)
                    .expect("explosion features must re-derive a seen class");
                if explode_pair[c] {
                    descriptors.push(PairWorkDescriptor {
                        id: descriptors.len() as u32,
                        kind: WorkKind::Pair,
                        i: i as u32,
                        j: j as u32,
                        core_a: cores[i] as u32,
                        core_b: cores[j] as u32,
                        sub_seed: pair_sub_seed(i, j, noise.seed),
                        rep_scale: 1,
                    });
                    keys.push((false, i, j));
                }
            }
            let f = extractor.rank_features(machine, i, cores[i]);
            let c = classing
                .diag_class_index(&f)
                .expect("explosion features must re-derive a seen diag class");
            if explode_diag[c] {
                descriptors.push(PairWorkDescriptor {
                    id: descriptors.len() as u32,
                    kind: WorkKind::Diag,
                    i: i as u32,
                    j: ((i + 1) % p) as u32,
                    core_a: cores[i] as u32,
                    core_b: cores[(i + 1) % p] as u32,
                    sub_seed: diag_sub_seed(i, noise.seed),
                    rep_scale: 1,
                });
                keys.push((true, i, i));
            }
        }
        measurements += descriptors.len();
        let samples = executor.execute_batch(&descriptors)?;
        if samples.len() != descriptors.len() {
            return Err(SweepError::Protocol(format!(
                "executor returned {} samples for {} exploded descriptors",
                samples.len(),
                descriptors.len()
            )));
        }
        let mut seen = vec![false; descriptors.len()];
        for s in samples {
            let Some(&(is_diag, i, j)) = keys.get(s.id as usize) else {
                return Err(SweepError::Protocol(format!("unknown sample id {}", s.id)));
            };
            if std::mem::replace(&mut seen[s.id as usize], true) {
                return Err(SweepError::Protocol(format!(
                    "duplicate sample id {}",
                    s.id
                )));
            }
            if is_diag {
                exploded_diags.insert(i, s.o);
            } else {
                exploded_pairs.insert((i, j), (s.o, s.l));
            }
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(SweepError::Protocol(format!("missing sample id {hole}")));
        }
    }

    // Report.
    let mut pair_stats = Vec::with_capacity(n_pair);
    for s in &pair_samples {
        let (so, sl) = rel_spreads(&s.values);
        pair_stats.push(ClassStats {
            samples: s.values.len(),
            rep_scale: s.rep_scale,
            rel_spread_o: so,
            rel_spread_l: sl,
        });
    }
    let mut diag_stats = Vec::with_capacity(n_diag);
    for s in &diag_samples {
        let (so, _) = rel_spreads(&s.values);
        diag_stats.push(ClassStats {
            samples: s.values.len(),
            rep_scale: s.rep_scale,
            rel_spread_o: so,
            rel_spread_l: 0.0,
        });
    }
    let spreads: Vec<f64> = pair_stats
        .iter()
        .filter(|st| st.samples >= 2)
        .map(|st| st.rel_spread_o.max(st.rel_spread_l))
        .chain(
            diag_stats
                .iter()
                .filter(|st| st.samples >= 2)
                .map(|st| st.rel_spread_o),
        )
        .collect();
    let report = SweepReport {
        total_pairs: classing.total_pairs,
        pair_classes: n_pair,
        diag_classes: n_diag,
        measurements,
        growth_rounds,
        exploded_pair_classes,
        exploded_diag_classes,
        max_rel_spread: spreads.iter().copied().fold(0.0, f64::max),
        mean_rel_spread: if spreads.is_empty() {
            0.0
        } else {
            spreads.iter().sum::<f64>() / spreads.len() as f64
        },
        pair_stats,
        diag_stats,
    };

    Ok((
        ClassMeasurements {
            pair_estimates,
            diag_estimates,
            explode_pair,
            explode_diag,
            exploded_pairs,
            exploded_diags,
        },
        report,
    ))
}

/// The dense scatter: maps every matrix entry to its class estimate by
/// re-deriving the entry's feature vector (same extractor, same placement
/// — the classing saw identical features). Exploded classes scatter their
/// per-member exact measurements instead. Allocates the full `|P|²`
/// matrices; past P ≈ 4096 prefer the tiled class-grid scatter in
/// [`crate::scatter`].
fn scatter_dense(
    machine: &MachineSpec,
    cores: &[usize],
    classing: &PairClassing,
    extractor: &dyn PairFeatureExtractor,
    symmetric: bool,
    m: &ClassMeasurements,
) -> CostMatrices {
    let p = cores.len();
    let mut o = DenseMatrix::new(p);
    let mut l = DenseMatrix::new(p);
    for i in 0..p {
        let range: Box<dyn Iterator<Item = usize>> = if symmetric {
            Box::new((i + 1)..p)
        } else {
            Box::new((0..p).filter(move |&j| j != i))
        };
        for j in range {
            let f = extractor.pair_features(machine, (i, j), (cores[i], cores[j]));
            let c = classing
                .pair_class_index(&f)
                .expect("scatter features must re-derive a seen class");
            let (oij, lij) = if m.explode_pair[c] {
                m.exploded_pairs[&(i, j)]
            } else {
                m.pair_estimates[c]
            };
            o[(i, j)] = oij;
            l[(i, j)] = lij;
            if symmetric {
                o[(j, i)] = oij;
                l[(j, i)] = lij;
            }
        }
        let f = extractor.rank_features(machine, i, cores[i]);
        let c = classing
            .diag_class_index(&f)
            .expect("scatter features must re-derive a seen diag class");
        o[(i, i)] = if m.explode_diag[c] {
            m.exploded_diags[&i]
        } else {
            m.diag_estimates[c]
        };
        l[(i, i)] = 0.0;
    }
    CostMatrices { o, l }
}

/// Relative scatter of the `(o, l)` samples around their medians,
/// delegated component-wise to the shared rule
/// ([`hbar_stats::rel_spread`]): `max |x − median| / max(|median|, ε)`,
/// `0` for fewer than two samples. The shared implementation is
/// bit-identical to the historical in-module one (pinned by the
/// `stopping_parity` regression test).
fn rel_spreads(values: &[(f64, f64)]) -> (f64, f64) {
    let os: Vec<f64> = values.iter().map(|v| v.0).collect();
    let ls: Vec<f64> = values.iter().map(|v| v.1).collect();
    (hbar_stats::rel_spread(&os), hbar_stats::rel_spread(&ls))
}

/// Component-wise medians of the `(o, l)` samples, delegated to
/// [`hbar_stats::median`].
fn medians(values: &[(f64, f64)]) -> (f64, f64) {
    let os: Vec<f64> = values.iter().map(|v| v.0).collect();
    let ls: Vec<f64> = values.iter().map(|v| v.1).collect();
    (hbar_stats::median(&os), hbar_stats::median(&ls))
}

/// Sequential single-descriptor executor used by the worker loop and
/// available for debugging (no thread pool, same results).
pub struct SequentialExecutor {
    machine: MachineSpec,
    noise: NoiseModel,
    cfg: ProfilingConfig,
}

impl SequentialExecutor {
    /// Executor measuring on `machine` under `noise` with schedule `cfg`.
    pub fn new(machine: MachineSpec, noise: NoiseModel, cfg: ProfilingConfig) -> Self {
        SequentialExecutor {
            machine,
            noise,
            cfg,
        }
    }
}

impl DescriptorExecutor for SequentialExecutor {
    fn execute_batch(
        &mut self,
        descriptors: &[PairWorkDescriptor],
    ) -> Result<Vec<PairSample>, SweepError> {
        Ok(descriptors
            .iter()
            .map(|d| execute_descriptor(&self.machine, self.noise, &self.cfg, d))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::measure_profile;

    fn bit_equal(a: &CostMatrices, b: &CostMatrices) -> bool {
        a.o.as_slice()
            .iter()
            .zip(b.o.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.l
                .as_slice()
                .iter()
                .zip(b.l.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn exact_classes_reproduce_exhaustive_sweep_bit_for_bit() {
        let machine = MachineSpec::new(2, 2, 2);
        let mapping = RankMapping::RoundRobin;
        let noise = NoiseModel::realistic(11);
        let cfg = ProfilingConfig::fast();
        let full = measure_profile(&machine, &mapping, 8, noise, &cfg);
        let (clustered, report) =
            measure_profile_clustered(&machine, &mapping, 8, noise, &SweepConfig::exact(cfg));
        assert!(bit_equal(&full.cost, &clustered.cost));
        assert_eq!(report.measurements, 8 * 7 / 2 + 8);
        assert_eq!(report.growth_rounds, 0);
    }

    #[test]
    fn zero_explosion_tolerance_degrades_to_exhaustive_bit_for_bit() {
        // With the explosion tolerance at 0, every class with any
        // measurable scatter is exploded: all members get measured
        // individually under their own sub-seeds, so the whole profile
        // must equal the exhaustive sweep bit for bit — *with topology
        // classing still on*.
        let machine = MachineSpec::dual_quad_cluster(2);
        let mapping = RankMapping::Block;
        let noise = NoiseModel::realistic(13);
        let cfg = ProfilingConfig::fast();
        let full = measure_profile(&machine, &mapping, 16, noise, &cfg);
        let sweep_cfg = SweepConfig {
            explode_rel_tol: 0.0,
            ..SweepConfig::fast()
        };
        let (clustered, report) =
            measure_profile_clustered(&machine, &mapping, 16, noise, &sweep_cfg);
        assert_eq!(report.exploded_pair_classes, 4);
        assert_eq!(report.exploded_diag_classes, 2);
        assert!(bit_equal(&full.cost, &clustered.cost));
        // Explosion re-measures all 120 pairs + 16 diags on top of the
        // class representatives and probes.
        assert!(report.measurements >= 120 + 16, "{}", report.measurements);
    }

    #[test]
    fn tight_classes_never_explode() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let (_, report) = measure_profile_clustered(
            &machine,
            &RankMapping::Block,
            16,
            NoiseModel::none(),
            &SweepConfig {
                explode_rel_tol: 0.05,
                ..SweepConfig::fast()
            },
        );
        assert_eq!(report.exploded_pair_classes, 0);
        assert_eq!(report.exploded_diag_classes, 0);
    }

    #[test]
    fn clustered_sweep_is_close_to_exhaustive_under_noise() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let mapping = RankMapping::Block;
        let noise = NoiseModel::realistic(5);
        let cfg = ProfilingConfig::fast();
        let full = measure_profile(&machine, &mapping, 16, noise, &cfg);
        let (clustered, report) =
            measure_profile_clustered(&machine, &mapping, 16, noise, &SweepConfig::fast());
        assert_eq!(report.pair_classes, 4);
        // Round 0 measures ≤ 18 descriptors (4 pair + 2 diag classes, ≤ 3
        // samples each); even with both growth rounds firing that is ≤ 54 —
        // well under the exhaustive 120 pairs + 16 diags.
        assert!(report.measurements <= 54, "{}", report.measurements);
        let mut worst = 0.0f64;
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                let (a, b) = (clustered.cost.o[(i, j)], full.cost.o[(i, j)]);
                worst = worst.max((a - b).abs() / b);
                let (a, b) = (clustered.cost.l[(i, j)], full.cost.l[(i, j)]);
                worst = worst.max((a - b).abs() / b);
            }
        }
        assert!(worst < 0.2, "worst clustered-vs-full error {worst}");
    }

    #[test]
    fn clustered_profile_is_symmetric_and_complete() {
        let machine = MachineSpec::dual_hex_cluster(2);
        let (prof, _) = measure_profile_clustered(
            &machine,
            &RankMapping::RoundRobin,
            20,
            NoiseModel::realistic(3),
            &SweepConfig::fast(),
        );
        assert!(prof.cost.o.is_symmetric());
        assert!(prof.cost.l.is_symmetric());
        for i in 0..20 {
            assert!(prof.cost.o[(i, i)] > 0.0);
            assert_eq!(prof.cost.l[(i, i)], 0.0);
            for j in 0..20 {
                if i != j {
                    assert!(prof.cost.o[(i, j)] > 0.0, "hole at ({i},{j})");
                    assert!(prof.cost.l[(i, j)] > 0.0, "hole at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn local_executors_agree() {
        let machine = MachineSpec::new(2, 1, 2);
        let noise = NoiseModel::realistic(7);
        let cfg = SweepConfig::fast();
        let (a, _) = measure_profile_clustered(&machine, &RankMapping::Block, 4, noise, &cfg);
        let mut seq = SequentialExecutor::new(machine.clone(), noise, cfg.profiling.clone());
        let (b, _) =
            measure_profile_decomposed(&machine, &RankMapping::Block, 4, noise, &cfg, &mut seq)
                .unwrap();
        assert!(bit_equal(&a.cost, &b.cost));
    }

    #[test]
    fn adaptive_growth_triggers_on_loose_tolerance() {
        let machine = MachineSpec::dual_quad_cluster(2);
        // Absurdly tight tolerance: every multi-member class must grow to
        // the cap.
        let cfg = SweepConfig {
            ci_rel_tol: 1e-12,
            max_growth_rounds: 2,
            ..SweepConfig::fast()
        };
        let (_, report) = measure_profile_clustered(
            &machine,
            &RankMapping::Block,
            16,
            NoiseModel::realistic(1),
            &cfg,
        );
        assert_eq!(report.growth_rounds, 2);
        assert!(report.pair_stats.iter().any(|s| s.rep_scale == 4));
        // And an infinite tolerance never grows.
        let cfg = SweepConfig {
            ci_rel_tol: f64::INFINITY,
            ..SweepConfig::fast()
        };
        let (_, report) = measure_profile_clustered(
            &machine,
            &RankMapping::Block,
            16,
            NoiseModel::realistic(1),
            &cfg,
        );
        assert_eq!(report.growth_rounds, 0);
    }

    #[test]
    fn report_reduction_factor_reflects_classing() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let (_, report) = measure_profile_clustered(
            &machine,
            &RankMapping::Block,
            32,
            NoiseModel::none(),
            &SweepConfig::fast(),
        );
        // 3 pair classes + 2 diag classes, ≤ 3 probes each under fast()
        // (2 probes configured) → far fewer measurements than 496 + 32.
        assert!(report.reduction_factor(32) > 10.0);
        assert_eq!(report.total_pairs, 496);
    }

    #[test]
    fn noise_regime_quantization() {
        assert_eq!(noise_regime_of(&NoiseModel::none()), 0);
        let a = noise_regime_of(&NoiseModel::realistic(1));
        let b = noise_regime_of(&NoiseModel::realistic(99));
        assert_eq!(a, b, "seed must not affect the regime");
        let quiet = NoiseModel {
            jitter_sigma: 0.01,
            ..NoiseModel::realistic(1)
        };
        assert_ne!(a, noise_regime_of(&quiet));
    }

    #[test]
    fn descriptor_serde_roundtrip() {
        let d = PairWorkDescriptor {
            id: 7,
            kind: WorkKind::Pair,
            i: 3,
            j: 900_000,
            core_a: 12,
            core_b: 4095,
            sub_seed: 0xDEAD_BEEF_CAFE_F00D,
            rep_scale: 4,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: PairWorkDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        let s = PairSample {
            id: 7,
            o: 1.25e-6,
            l: -0.0,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: PairSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, s.id);
        assert_eq!(back.o, s.o);
    }
}
