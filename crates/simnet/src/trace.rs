//! Execution traces: per-message event records from a simulated run.
//!
//! Traces expose what the aggregate completion times hide — when each
//! signal was injected, delivered and consumed — which is what the §VIII
//! "instrumentation required to capture incremental cost updates at run
//! time" would collect on a real system. The adaptive controller's
//! refreshed cost matrices can be estimated from exactly these records.

use crate::Time;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Sender CPU finished injecting the message.
    SendInjected { time: Time, src: usize, dst: usize },
    /// Message became available at the receiver (past NIC RX).
    Delivered { time: Time, src: usize, dst: usize },
    /// Receiver finished processing the message (receive completed).
    RecvCompleted { time: Time, src: usize, dst: usize },
    /// The synchronous sender's request completed (acknowledged).
    SendCompleted { time: Time, src: usize, dst: usize },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::SendInjected { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::RecvCompleted { time, .. }
            | TraceEvent::SendCompleted { time, .. } => time,
        }
    }

    /// `(src, dst)` of the message this event belongs to.
    pub fn pair(&self) -> (usize, usize) {
        match *self {
            TraceEvent::SendInjected { src, dst, .. }
            | TraceEvent::Delivered { src, dst, .. }
            | TraceEvent::RecvCompleted { src, dst, .. }
            | TraceEvent::SendCompleted { src, dst, .. } => (src, dst),
        }
    }
}

/// A full trace of one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

/// Per-pair signal latency statistics extracted from a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct PairLatency {
    pub src: usize,
    pub dst: usize,
    /// One entry per message: receive-completion minus injection (ns).
    pub latencies: Vec<Time>,
}

impl PairLatency {
    /// Mean latency in seconds.
    pub fn mean_sec(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<Time>() as f64 / self.latencies.len() as f64 * 1e-9
    }
}

impl Trace {
    /// Number of messages fully delivered and consumed.
    pub fn completed_messages(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RecvCompleted { .. }))
            .count()
    }

    /// Injection count (messages sent).
    pub fn injected_messages(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SendInjected { .. }))
            .count()
    }

    /// Matches injections to receive completions per `(src, dst)` pair
    /// in FIFO order (the engine's matching discipline) and returns the
    /// observed latencies. This is the §VIII incremental measurement: a
    /// live re-estimate of each link's effective one-message cost.
    pub fn pair_latencies(&self) -> Vec<PairLatency> {
        let mut injected: HashMap<(usize, usize), Vec<Time>> = HashMap::new();
        let mut completed: HashMap<(usize, usize), Vec<Time>> = HashMap::new();
        for e in &self.events {
            match e {
                TraceEvent::SendInjected { time, src, dst } => {
                    injected.entry((*src, *dst)).or_default().push(*time);
                }
                TraceEvent::RecvCompleted { time, src, dst } => {
                    completed.entry((*src, *dst)).or_default().push(*time);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for ((src, dst), inj) in injected {
            let comp = completed.get(&(src, dst)).cloned().unwrap_or_default();
            let latencies: Vec<Time> = inj
                .iter()
                .zip(&comp)
                .map(|(&a, &b)| b.saturating_sub(a))
                .collect();
            out.push(PairLatency {
                src,
                dst,
                latencies,
            });
        }
        out.sort_by_key(|pl| (pl.src, pl.dst));
        out
    }

    /// The last event time (0 for an empty trace).
    pub fn end_time(&self) -> Time {
        self.events.iter().map(TraceEvent::time).max().unwrap_or(0)
    }

    /// Produces refreshed cost matrices by blending observed per-pair
    /// one-message latencies into a prior profile's `O` matrix:
    /// `O'_ij = (1 − blend) · O_ij + blend · mean(observed_ij)` for every
    /// pair with at least one observation; unobserved pairs and the `L`
    /// matrix keep their prior values.
    ///
    /// This is the "relatively inexpensive" incremental cost update of
    /// §VIII: barrier traffic itself re-measures the links it uses, and
    /// the result feeds [`AdaptiveBarrier`](hbar_core::adaptive::AdaptiveBarrier)
    /// directly.
    ///
    /// # Panics
    /// Panics if `blend` is outside `[0, 1]` or a traced rank exceeds the
    /// prior's dimensions.
    pub fn refresh_costs(
        &self,
        prior: &hbar_topo::cost::CostMatrices,
        blend: f64,
    ) -> hbar_topo::cost::CostMatrices {
        assert!(
            (0.0..=1.0).contains(&blend),
            "blend must be in [0,1], got {blend}"
        );
        let mut updated = prior.clone();
        for pl in self.pair_latencies() {
            if pl.latencies.is_empty() {
                continue;
            }
            assert!(
                pl.src < prior.p() && pl.dst < prior.p(),
                "trace rank ({}, {}) outside profile of {}",
                pl.src,
                pl.dst,
                prior.p()
            );
            let observed = pl.mean_sec();
            let o = &mut updated.o[(pl.src, pl.dst)];
            *o = (1.0 - blend) * *o + blend * observed;
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                TraceEvent::SendInjected {
                    time: 10,
                    src: 0,
                    dst: 1,
                },
                TraceEvent::Delivered {
                    time: 50,
                    src: 0,
                    dst: 1,
                },
                TraceEvent::RecvCompleted {
                    time: 60,
                    src: 0,
                    dst: 1,
                },
                TraceEvent::SendCompleted {
                    time: 90,
                    src: 0,
                    dst: 1,
                },
                TraceEvent::SendInjected {
                    time: 100,
                    src: 0,
                    dst: 1,
                },
                TraceEvent::RecvCompleted {
                    time: 180,
                    src: 0,
                    dst: 1,
                },
            ],
        }
    }

    #[test]
    fn counts_and_end_time() {
        let t = sample();
        assert_eq!(t.injected_messages(), 2);
        assert_eq!(t.completed_messages(), 2);
        assert_eq!(t.end_time(), 180);
    }

    #[test]
    fn pair_latencies_fifo_matched() {
        let t = sample();
        let pl = t.pair_latencies();
        assert_eq!(pl.len(), 1);
        assert_eq!(pl[0].src, 0);
        assert_eq!(pl[0].dst, 1);
        assert_eq!(pl[0].latencies, vec![50, 80]);
        assert!((pl[0].mean_sec() - 65e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::default();
        assert_eq!(t.completed_messages(), 0);
        assert_eq!(t.end_time(), 0);
        assert!(t.pair_latencies().is_empty());
    }

    #[test]
    fn refresh_costs_blends_observations() {
        use hbar_topo::cost::CostMatrices;
        let t = sample(); // latencies 50 ns and 80 ns on (0, 1)
        let mut prior = CostMatrices::zeros(2);
        prior.o[(0, 1)] = 100e-9;
        prior.o[(1, 0)] = 100e-9;
        prior.l[(0, 1)] = 7e-9;
        let updated = t.refresh_costs(&prior, 0.5);
        // Observed mean 65 ns blended 50/50 with 100 ns prior → 82.5 ns.
        assert!((updated.o[(0, 1)] - 82.5e-9).abs() < 1e-15);
        // Unobserved direction and L untouched.
        assert_eq!(updated.o[(1, 0)], 100e-9);
        assert_eq!(updated.l[(0, 1)], 7e-9);
        // blend = 0 is the identity; blend = 1 adopts the observation.
        assert_eq!(t.refresh_costs(&prior, 0.0).o[(0, 1)], 100e-9);
        assert!((t.refresh_costs(&prior, 1.0).o[(0, 1)] - 65e-9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "blend must be in")]
    fn refresh_rejects_bad_blend() {
        let t = Trace::default();
        let prior = hbar_topo::cost::CostMatrices::zeros(2);
        t.refresh_costs(&prior, 1.5);
    }
}
