//! Per-process instruction programs.
//!
//! A simulated process executes a straight-line program of communication
//! calls — the same execution model as the paper's general barrier
//! simulator (nonblocking synchronized sends, nonblocking receives, and a
//! completion wait per stage), plus the pieces its benchmarks need
//! (payload sends, compute delays, transmission-free calls).
//!
//! `Instr` is `Copy`: mark labels are interned into a per-program label
//! table and referenced by [`LabelId`], so the engine's interpreter loop
//! can read instructions by value without touching the heap.

use crate::Time;
use serde::{Deserialize, Serialize};

/// Index into a program's interned label table (see [`Program::label`]).
pub type LabelId = u32;

/// One instruction of a simulated process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Nonblocking synchronous send of `bytes` payload to `dst`; completes
    /// only after the receiver has processed the message (`MPI_Issend`).
    Issend { dst: usize, bytes: usize },
    /// Nonblocking receive of one message from `src` (`MPI_Irecv`).
    Irecv { src: usize },
    /// Block until every request issued so far has completed
    /// (`MPI_Waitall` over the process's request array).
    WaitAll,
    /// Local computation for the given virtual duration (used by the
    /// staggered-delay synchronization check of §VI).
    Delay { ns: Time },
    /// A communication call that causes no transmission — the workload of
    /// the paper's `O_ii` benchmark.
    NoOpCall,
    /// Records the current virtual time under an interned label.
    Mark { label: LabelId },
}

/// A straight-line program for one simulated process.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    pub instrs: Vec<Instr>,
    /// Interned `Mark` label strings, indexed by [`LabelId`].
    pub labels: Vec<String>,
}

impl Program {
    /// An empty program (the process finishes immediately at time 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty program with instruction capacity reserved up front, so
    /// bulk builders (25-rep × 32-message bursts) never reallocate per
    /// instruction.
    pub fn with_capacity(instrs: usize) -> Self {
        Program {
            instrs: Vec::with_capacity(instrs),
            labels: Vec::new(),
        }
    }

    /// Reserves capacity for at least `additional` more instructions.
    pub fn reserve(&mut self, additional: usize) {
        self.instrs.reserve(additional);
    }

    /// Removes all instructions and labels, retaining capacity — the
    /// reuse hook for benchmark scratch buffers.
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.labels.clear();
    }

    /// Appends a synchronous zero-byte signal send.
    pub fn push_issend(&mut self, dst: usize) {
        self.instrs.push(Instr::Issend { dst, bytes: 0 });
    }

    /// Appends a synchronous payload send.
    pub fn push_issend_bytes(&mut self, dst: usize, bytes: usize) {
        self.instrs.push(Instr::Issend { dst, bytes });
    }

    /// Appends a nonblocking receive.
    pub fn push_irecv(&mut self, src: usize) {
        self.instrs.push(Instr::Irecv { src });
    }

    /// Appends a completion wait.
    pub fn push_wait_all(&mut self) {
        self.instrs.push(Instr::WaitAll);
    }

    /// Appends a compute delay.
    pub fn push_delay(&mut self, ns: Time) {
        self.instrs.push(Instr::Delay { ns });
    }

    /// Appends a transmission-free call.
    pub fn push_noop_call(&mut self) {
        self.instrs.push(Instr::NoOpCall);
    }

    /// Appends a timestamp mark, interning the label.
    pub fn push_mark(&mut self, label: &str) {
        let id = self.intern(label);
        self.instrs.push(Instr::Mark { label: id });
    }

    /// Interns a label string, returning its id (labels are few, so a
    /// linear scan beats a hash map).
    pub fn intern(&mut self, label: &str) -> LabelId {
        if let Some(id) = self.labels.iter().position(|l| l == label) {
            return id as LabelId;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as LabelId
    }

    /// Resolves an interned label id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this program's interner.
    pub fn label(&self, id: LabelId) -> &str {
        &self.labels[id as usize]
    }

    /// Appends a synchronous zero-byte signal send (by-value chaining).
    pub fn issend(mut self, dst: usize) -> Self {
        self.push_issend(dst);
        self
    }

    /// Appends a synchronous payload send (by-value chaining).
    pub fn issend_bytes(mut self, dst: usize, bytes: usize) -> Self {
        self.push_issend_bytes(dst, bytes);
        self
    }

    /// Appends a nonblocking receive (by-value chaining).
    pub fn irecv(mut self, src: usize) -> Self {
        self.push_irecv(src);
        self
    }

    /// Appends a completion wait (by-value chaining).
    pub fn wait_all(mut self) -> Self {
        self.push_wait_all();
        self
    }

    /// Appends a compute delay (by-value chaining).
    pub fn delay(mut self, ns: Time) -> Self {
        self.push_delay(ns);
        self
    }

    /// Appends a transmission-free call (by-value chaining).
    pub fn noop_call(mut self) -> Self {
        self.push_noop_call();
        self
    }

    /// Appends a timestamp mark (by-value chaining).
    pub fn mark(mut self, label: &str) -> Self {
        self.push_mark(label);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of send instructions (used by tests to sanity-check
    /// program builders).
    pub fn send_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Issend { .. }))
            .count()
    }

    /// Number of receive instructions.
    pub fn recv_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Irecv { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = Program::new()
            .delay(100)
            .irecv(2)
            .issend(1)
            .wait_all()
            .mark("done");
        assert_eq!(p.len(), 5);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 1);
        assert_eq!(p.instrs[0], Instr::Delay { ns: 100 });
        assert_eq!(p.instrs[4], Instr::Mark { label: 0 });
        assert_eq!(p.label(0), "done");
    }

    #[test]
    fn payload_send_records_bytes() {
        let p = Program::new().issend_bytes(3, 4096);
        assert_eq!(
            p.instrs[0],
            Instr::Issend {
                dst: 3,
                bytes: 4096
            }
        );
    }

    #[test]
    fn empty_program() {
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.send_count(), 0);
    }

    #[test]
    fn mut_builders_match_chaining() {
        let chained = Program::new().irecv(0).issend(1).wait_all().mark("x");
        let mut pushed = Program::with_capacity(4);
        pushed.push_irecv(0);
        pushed.push_issend(1);
        pushed.push_wait_all();
        pushed.push_mark("x");
        assert_eq!(chained, pushed);
    }

    #[test]
    fn with_capacity_does_not_reallocate() {
        let n = 25 * 33;
        let mut p = Program::with_capacity(n);
        let cap = p.instrs.capacity();
        assert!(cap >= n);
        for _ in 0..n {
            p.push_issend(1);
        }
        assert_eq!(p.instrs.capacity(), cap, "no reallocation during build");
    }

    #[test]
    fn labels_are_interned_and_deduplicated() {
        let mut p = Program::new();
        p.push_mark("enter");
        p.push_mark("exit");
        p.push_mark("enter");
        assert_eq!(p.labels, vec!["enter".to_string(), "exit".to_string()]);
        assert_eq!(p.instrs[0], Instr::Mark { label: 0 });
        assert_eq!(p.instrs[2], Instr::Mark { label: 0 });
    }

    #[test]
    fn clear_retains_capacity() {
        let mut p = Program::with_capacity(64);
        for _ in 0..64 {
            p.push_noop_call();
        }
        let cap = p.instrs.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.instrs.capacity(), cap);
    }

    #[test]
    fn instr_is_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Instr>();
    }
}
