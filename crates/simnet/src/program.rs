//! Per-process instruction programs.
//!
//! A simulated process executes a straight-line program of communication
//! calls — the same execution model as the paper's general barrier
//! simulator (nonblocking synchronized sends, nonblocking receives, and a
//! completion wait per stage), plus the pieces its benchmarks need
//! (payload sends, compute delays, transmission-free calls).

use crate::Time;
use serde::{Deserialize, Serialize};

/// One instruction of a simulated process.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Nonblocking synchronous send of `bytes` payload to `dst`; completes
    /// only after the receiver has processed the message (`MPI_Issend`).
    Issend { dst: usize, bytes: usize },
    /// Nonblocking receive of one message from `src` (`MPI_Irecv`).
    Irecv { src: usize },
    /// Block until every request issued so far has completed
    /// (`MPI_Waitall` over the process's request array).
    WaitAll,
    /// Local computation for the given virtual duration (used by the
    /// staggered-delay synchronization check of §VI).
    Delay { ns: Time },
    /// A communication call that causes no transmission — the workload of
    /// the paper's `O_ii` benchmark.
    NoOpCall,
    /// Records the current virtual time under a label.
    Mark { label: String },
}

/// A straight-line program for one simulated process.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    pub instrs: Vec<Instr>,
}

impl Program {
    /// An empty program (the process finishes immediately at time 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a synchronous zero-byte signal send.
    pub fn issend(mut self, dst: usize) -> Self {
        self.instrs.push(Instr::Issend { dst, bytes: 0 });
        self
    }

    /// Appends a synchronous payload send.
    pub fn issend_bytes(mut self, dst: usize, bytes: usize) -> Self {
        self.instrs.push(Instr::Issend { dst, bytes });
        self
    }

    /// Appends a nonblocking receive.
    pub fn irecv(mut self, src: usize) -> Self {
        self.instrs.push(Instr::Irecv { src });
        self
    }

    /// Appends a completion wait.
    pub fn wait_all(mut self) -> Self {
        self.instrs.push(Instr::WaitAll);
        self
    }

    /// Appends a compute delay.
    pub fn delay(mut self, ns: Time) -> Self {
        self.instrs.push(Instr::Delay { ns });
        self
    }

    /// Appends a transmission-free call.
    pub fn noop_call(mut self) -> Self {
        self.instrs.push(Instr::NoOpCall);
        self
    }

    /// Appends a timestamp mark.
    pub fn mark(mut self, label: &str) -> Self {
        self.instrs.push(Instr::Mark {
            label: label.into(),
        });
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of send instructions (used by tests to sanity-check
    /// program builders).
    pub fn send_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Issend { .. }))
            .count()
    }

    /// Number of receive instructions.
    pub fn recv_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Irecv { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = Program::new()
            .delay(100)
            .irecv(2)
            .issend(1)
            .wait_all()
            .mark("done");
        assert_eq!(p.len(), 5);
        assert_eq!(p.send_count(), 1);
        assert_eq!(p.recv_count(), 1);
        assert_eq!(p.instrs[0], Instr::Delay { ns: 100 });
        assert_eq!(
            p.instrs[4],
            Instr::Mark {
                label: "done".into()
            }
        );
    }

    #[test]
    fn payload_send_records_bytes() {
        let p = Program::new().issend_bytes(3, 4096);
        assert_eq!(
            p.instrs[0],
            Instr::Issend {
                dst: 3,
                bytes: 4096
            }
        );
    }

    #[test]
    fn empty_program() {
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.send_count(), 0);
    }
}
