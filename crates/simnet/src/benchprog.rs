//! The §IV-A profiling workloads as two-rank program pairs.
//!
//! All three benchmarks measure between a *source* (local rank 0) and a
//! *destination* (local rank 1) placed on the two cores of interest:
//!
//! * [`ping_pong`] — `reps` round trips at a given payload size; the
//!   Hockney-style `O_ij` estimate is the regression intercept of the
//!   one-way time over growing sizes;
//! * [`multi_message`] — `reps` bursts of `k` simultaneous zero-byte
//!   sends; the `L_ij` estimate is the regression gradient of the burst
//!   completion time over `k = 1 … 32`;
//! * [`noop_calls`] — `k` transmission-free calls; their mean cost is the
//!   `O_ii` estimate.

use crate::program::Program;
use crate::world::{SimResult, SimWorld};
use crate::{ns_to_sec, Time};

/// Builds the ping-pong program pair: `reps` round trips of `bytes`-sized
/// synchronous messages.
pub fn ping_pong(bytes: usize, reps: usize) -> (Program, Program) {
    assert!(reps > 0, "need at least one repetition");
    let mut a = Program::new();
    let mut b = Program::new();
    for _ in 0..reps {
        a = a.issend_bytes(1, bytes).wait_all().irecv(1).wait_all();
        b = b.irecv(0).wait_all().issend_bytes(0, bytes).wait_all();
    }
    (a, b)
}

/// Mean one-way transmission time (seconds) from a completed ping-pong
/// run: half the mean round-trip time at the initiator.
pub fn ping_pong_one_way(result: &SimResult, reps: usize) -> f64 {
    ns_to_sec(result.finish[0]) / (2.0 * reps as f64)
}

/// Builds the multi-message burst pair: `reps` rounds, each posting `k`
/// zero-byte synchronous sends before a single completion wait.
pub fn multi_message(k: usize, reps: usize) -> (Program, Program) {
    assert!(
        k > 0 && reps > 0,
        "need at least one message and repetition"
    );
    let mut a = Program::new();
    let mut b = Program::new();
    for _ in 0..reps {
        for _ in 0..k {
            a = a.issend(1);
            b = b.irecv(0);
        }
        a = a.wait_all();
        b = b.wait_all();
    }
    (a, b)
}

/// Mean burst completion time (seconds) at the sender.
pub fn multi_message_burst_time(result: &SimResult, reps: usize) -> f64 {
    ns_to_sec(result.finish[0]) / reps as f64
}

/// Builds the transmission-free call program (single rank active).
pub fn noop_calls(k: usize) -> Program {
    assert!(k > 0, "need at least one call");
    let mut p = Program::new();
    for _ in 0..k {
        p = p.noop_call();
    }
    p
}

/// Mean per-call overhead (seconds).
pub fn noop_call_mean(result: &SimResult, k: usize) -> f64 {
    ns_to_sec(result.finish[0]) / k as f64
}

/// Convenience: run a two-rank benchmark pair in `world` (which must have
/// exactly 2 ranks) and return the result.
///
/// # Panics
/// Panics if the world does not have 2 ranks or the run deadlocks (the
/// benchmark programs cannot deadlock by construction).
pub fn run_pair(world: &mut SimWorld, pair: (Program, Program)) -> SimResult {
    assert_eq!(world.p(), 2, "benchmark worlds have exactly two ranks");
    world
        .run(vec![pair.0, pair.1])
        .expect("benchmark programs cannot deadlock")
}

/// Measured one-way time of a size-`bytes` ping-pong between the two
/// ranks of `world`, mean of `reps` repetitions.
pub fn measure_one_way(world: &mut SimWorld, bytes: usize, reps: usize) -> f64 {
    let res = run_pair(world, ping_pong(bytes, reps));
    ping_pong_one_way(&res, reps)
}

/// Measured completion time of a `k`-message burst, mean of `reps`.
pub fn measure_burst(world: &mut SimWorld, k: usize, reps: usize) -> f64 {
    let res = run_pair(world, multi_message(k, reps));
    multi_message_burst_time(&res, reps)
}

/// Measured mean transmission-free call cost over `k` calls at rank 0.
pub fn measure_noop(world: &mut SimWorld, k: usize) -> f64 {
    let progs = vec![noop_calls(k), Program::new()];
    let res = world.run(progs).expect("no communication, cannot deadlock");
    noop_call_mean(&res, k)
}

/// Virtual duration helper for tests.
pub fn makespan_sec(result: &SimResult) -> f64 {
    ns_to_sec(result.finish.iter().copied().max().unwrap_or(0) as Time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::SimConfig;
    use hbar_topo::machine::{LinkClass, MachineSpec};
    use hbar_topo::mapping::RankMapping;

    fn pair_world(machine: MachineSpec, core_a: usize, core_b: usize) -> SimWorld {
        let cfg = SimConfig::exact(machine, RankMapping::Custom(vec![core_a, core_b]));
        SimWorld::new(cfg, 2)
    }

    #[test]
    fn ping_pong_recovers_effective_o_inter_node() {
        let machine = MachineSpec::new(2, 1, 1);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let one_way = measure_one_way(&mut world, 0, 10);
        let expect = gt.effective_o(LinkClass::InterNode);
        let rel = (one_way - expect).abs() / expect;
        assert!(rel < 0.02, "one-way {one_way} vs effective O {expect}");
    }

    #[test]
    fn ping_pong_scales_with_payload() {
        let machine = MachineSpec::new(2, 1, 1);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let small = measure_one_way(&mut world, 1, 5);
        let big = measure_one_way(&mut world, 1 << 20, 5);
        let per_byte = (big - small) / ((1 << 20) - 1) as f64;
        let expect = gt.link(LinkClass::InterNode).ns_per_byte * 1e-9;
        assert!(
            (per_byte - expect).abs() / expect < 0.05,
            "per-byte {per_byte} vs {expect}"
        );
    }

    #[test]
    fn burst_gradient_recovers_effective_l() {
        // The marginal cost of messages 8→16 approximates L (pipelined
        // spacing), for both a local and a remote pair.
        for (machine, a, b, class) in [
            (
                MachineSpec::new(1, 1, 2),
                0usize,
                1usize,
                LinkClass::SameSocket,
            ),
            (MachineSpec::new(1, 2, 1), 0, 1, LinkClass::CrossSocket),
            (MachineSpec::new(2, 1, 1), 0, 1, LinkClass::InterNode),
        ] {
            let gt = machine.ground_truth.clone();
            let mut world = pair_world(machine, a, b);
            let t8 = measure_burst(&mut world, 8, 5);
            let t16 = measure_burst(&mut world, 16, 5);
            let marginal = (t16 - t8) / 8.0;
            let expect = gt.effective_l(class);
            let rel = (marginal - expect).abs() / expect;
            assert!(rel < 0.15, "{class:?}: marginal {marginal} vs L {expect}");
        }
    }

    #[test]
    fn noop_mean_recovers_call_overhead() {
        let machine = MachineSpec::new(1, 1, 2);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let mean = measure_noop(&mut world, 64);
        assert!((mean - gt.effective_oii()).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn burst_time_grows_monotonically_in_k() {
        let machine = MachineSpec::new(2, 1, 1);
        let mut world = pair_world(machine, 0, 1);
        let mut prev = 0.0;
        for k in [1, 2, 4, 8, 16, 32] {
            let t = measure_burst(&mut world, k, 3);
            assert!(t > prev, "k={k}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        ping_pong(0, 0);
    }
}
