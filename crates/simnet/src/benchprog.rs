//! The §IV-A profiling workloads as two-rank program pairs.
//!
//! All three benchmarks measure between a *source* (local rank 0) and a
//! *destination* (local rank 1) placed on the two cores of interest:
//!
//! * [`ping_pong`] — one round trip at a given payload size; the
//!   Hockney-style `O_ij` estimate is the regression intercept of the
//!   one-way time over growing sizes;
//! * [`multi_message`] — a burst of `k` simultaneous zero-byte sends into
//!   pre-posted receives, timed from a `Mark` placed after a readiness
//!   handshake (the simulated analogue of calling `MPI_Wtime` after a
//!   barrier) so receive-posting overhead stays out of the sample; the
//!   `L_ij` estimate is the regression gradient of the burst span over
//!   `k = 1 … 32`;
//! * [`noop_calls`] — `k` transmission-free calls; their mean cost is the
//!   `O_ii` estimate.
//!
//! Every sample point is the **median of `reps` independent runs**, one
//! round (or burst) per run, each run under a fresh deterministic noise
//! sub-stream. Summarizing repetitions by a robust statistic over
//! independent executions — rather than averaging one long inlined run —
//! is the methodology Hunold & Carpen-Amarie ("MPI Benchmarking
//! Revisited") argue is required for reproducible MPI measurements, and
//! it keeps the noise model's rare preemption spikes from polluting a
//! whole sample point.
//!
//! [`PairBench`] is the amortized driver the profiling sweep uses: one
//! world (and therefore one engine) plus one pair of program buffers per
//! measured pair, rebuilt in place across the whole sizes × bursts
//! schedule so no construction cost repeats per sample point — and with
//! `reps` runs per point, none repeats per run either.

use crate::program::Program;
use crate::world::{SimResult, SimWorld};
use crate::{ns_to_sec, Time};

/// Label of the timing mark the burst benchmark places after its
/// readiness handshake.
pub const BURST_MARK: &str = "burst_start";

/// Fills `a`/`b` in place with the ping-pong pair: one round trip of
/// `bytes`-sized synchronous messages. Buffers are cleared first and
/// retain their capacity.
pub fn build_ping_pong(a: &mut Program, b: &mut Program, bytes: usize) {
    a.clear();
    b.clear();
    a.reserve(4);
    b.reserve(4);
    a.push_issend_bytes(1, bytes);
    a.push_wait_all();
    a.push_irecv(1);
    a.push_wait_all();
    b.push_irecv(0);
    b.push_wait_all();
    b.push_issend_bytes(0, bytes);
    b.push_wait_all();
}

/// Builds the ping-pong program pair: one round trip of `bytes`-sized
/// synchronous messages.
pub fn ping_pong(bytes: usize) -> (Program, Program) {
    let mut a = Program::new();
    let mut b = Program::new();
    build_ping_pong(&mut a, &mut b, bytes);
    (a, b)
}

/// Fills `a`/`b` in place with the multi-message burst pair: the
/// destination pre-posts `k` receives and signals readiness; the source
/// waits for the signal, records a [`BURST_MARK`] timestamp, then posts
/// `k` zero-byte synchronous sends and one completion wait. Timing the
/// span from the mark to the source's finish keeps the destination's
/// receive-posting overhead — serialized on its CPU *before* the signal —
/// out of the measured burst, so the regression gradient isolates the
/// steady-state per-message spacing `L`.
pub fn build_multi_message(a: &mut Program, b: &mut Program, k: usize) {
    assert!(k > 0, "need at least one message");
    a.clear();
    b.clear();
    a.reserve(k + 4);
    b.reserve(k + 2);
    a.push_irecv(1);
    a.push_wait_all();
    a.push_mark(BURST_MARK);
    for _ in 0..k {
        a.push_issend(1);
        b.push_irecv(0);
    }
    a.push_wait_all();
    b.push_issend(0);
    b.push_wait_all();
}

/// Builds the multi-message burst pair: `k` zero-byte synchronous sends
/// into pre-posted receives behind a readiness handshake.
pub fn multi_message(k: usize) -> (Program, Program) {
    let mut a = Program::new();
    let mut b = Program::new();
    build_multi_message(&mut a, &mut b, k);
    (a, b)
}

/// Fills `a`/`b` in place with the transmission-free call workload
/// (rank 0 active, rank 1 idle).
pub fn build_noop_calls(a: &mut Program, b: &mut Program, k: usize) {
    assert!(k > 0, "need at least one call");
    a.clear();
    b.clear();
    a.reserve(k);
    for _ in 0..k {
        a.push_noop_call();
    }
}

/// Builds the transmission-free call program (single rank active).
pub fn noop_calls(k: usize) -> Program {
    assert!(k > 0, "need at least one call");
    let mut p = Program::with_capacity(k);
    for _ in 0..k {
        p.push_noop_call();
    }
    p
}

/// Mean per-call overhead (seconds).
pub fn noop_call_mean(result: &SimResult, k: usize) -> f64 {
    ns_to_sec(result.finish[0]) / k as f64
}

/// Convenience: run a two-rank benchmark pair in `world` (which must have
/// exactly 2 ranks) and return the result.
///
/// # Panics
/// Panics if the world does not have 2 ranks or the run deadlocks (the
/// benchmark programs cannot deadlock by construction).
pub fn run_pair(world: &mut SimWorld, pair: (Program, Program)) -> SimResult {
    assert_eq!(world.p(), 2, "benchmark worlds have exactly two ranks");
    let progs = [pair.0, pair.1];
    world
        .run(&progs)
        .expect("benchmark programs cannot deadlock")
}

/// Median of `values`, sorting them in place; even counts average the two
/// middle elements.
///
/// # Panics
/// Panics on an empty slice or non-finite values.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of no measurements");
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Measured one-way time of a size-`bytes` ping-pong between the two
/// ranks of `world`: the median of `reps` independent single-round runs.
pub fn measure_one_way(world: &mut SimWorld, bytes: usize, reps: usize) -> f64 {
    assert_eq!(world.p(), 2, "benchmark worlds have exactly two ranks");
    assert!(reps > 0, "need at least one repetition");
    let (a, b) = ping_pong(bytes);
    let progs = [a, b];
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let f = world
                .run_finish0(&progs)
                .expect("benchmark programs cannot deadlock");
            ns_to_sec(f) / 2.0
        })
        .collect();
    median(&mut times)
}

/// Measured `k`-message burst span (readiness mark → sender completion):
/// the median of `reps` independent single-burst runs.
pub fn measure_burst(world: &mut SimWorld, k: usize, reps: usize) -> f64 {
    assert_eq!(world.p(), 2, "benchmark worlds have exactly two ranks");
    assert!(reps > 0, "need at least one repetition");
    let (a, b) = multi_message(k);
    let progs = [a, b];
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let f = world
                .run_span0(&progs)
                .expect("benchmark programs cannot deadlock");
            ns_to_sec(f)
        })
        .collect();
    median(&mut times)
}

/// Measured mean transmission-free call cost over `k` calls at rank 0.
pub fn measure_noop(world: &mut SimWorld, k: usize) -> f64 {
    let progs = [noop_calls(k), Program::new()];
    let res = world
        .run(&progs)
        .expect("no communication, cannot deadlock");
    noop_call_mean(&res, k)
}

/// Amortized two-rank benchmark scratch: one reused world/engine, one
/// pair of program buffers refilled in place per sample point, and one
/// measurement buffer reused across the per-point repetition loop. After
/// the first (largest) build, no measurement allocates.
pub struct PairBench {
    world: SimWorld,
    progs: [Program; 2],
    times: Vec<f64>,
}

impl PairBench {
    /// Wraps a two-rank world.
    ///
    /// # Panics
    /// Panics if the world does not have exactly 2 ranks.
    pub fn new(world: SimWorld) -> Self {
        assert_eq!(world.p(), 2, "benchmark worlds have exactly two ranks");
        PairBench {
            world,
            progs: [Program::new(), Program::new()],
            times: Vec::new(),
        }
    }

    /// Measured one-way ping-pong time at `bytes`: the median of `reps`
    /// independent single-round runs.
    pub fn one_way(&mut self, bytes: usize, reps: usize) -> f64 {
        assert!(reps > 0, "need at least one repetition");
        let [a, b] = &mut self.progs;
        build_ping_pong(a, b, bytes);
        self.times.clear();
        for _ in 0..reps {
            let f = self
                .world
                .run_finish0(&self.progs)
                .expect("benchmark programs cannot deadlock");
            self.times.push(ns_to_sec(f) / 2.0);
        }
        median(&mut self.times)
    }

    /// Measured `k`-message burst span (readiness mark → sender
    /// completion): the median of `reps` independent single-burst runs.
    pub fn burst(&mut self, k: usize, reps: usize) -> f64 {
        assert!(reps > 0, "need at least one repetition");
        let [a, b] = &mut self.progs;
        build_multi_message(a, b, k);
        self.times.clear();
        for _ in 0..reps {
            let f = self
                .world
                .run_span0(&self.progs)
                .expect("benchmark programs cannot deadlock");
            self.times.push(ns_to_sec(f));
        }
        median(&mut self.times)
    }

    /// Measured mean transmission-free call cost over `k` calls.
    pub fn noop(&mut self, k: usize) -> f64 {
        let [a, b] = &mut self.progs;
        build_noop_calls(a, b, k);
        let f = self
            .world
            .run_finish0(&self.progs)
            .expect("no communication, cannot deadlock");
        ns_to_sec(f) / k as f64
    }
}

/// Virtual duration helper for tests.
pub fn makespan_sec(result: &SimResult) -> f64 {
    ns_to_sec(result.finish.iter().copied().max().unwrap_or(0) as Time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::SimConfig;
    use hbar_topo::machine::{LinkClass, MachineSpec};
    use hbar_topo::mapping::RankMapping;

    fn pair_world(machine: MachineSpec, core_a: usize, core_b: usize) -> SimWorld {
        let cfg = SimConfig::exact(machine, RankMapping::Custom(vec![core_a, core_b]));
        SimWorld::new(cfg, 2)
    }

    #[test]
    fn ping_pong_recovers_effective_o_inter_node() {
        let machine = MachineSpec::new(2, 1, 1);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let one_way = measure_one_way(&mut world, 0, 10);
        let expect = gt.effective_o(LinkClass::InterNode);
        let rel = (one_way - expect).abs() / expect;
        assert!(rel < 0.02, "one-way {one_way} vs effective O {expect}");
    }

    #[test]
    fn ping_pong_scales_with_payload() {
        let machine = MachineSpec::new(2, 1, 1);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let small = measure_one_way(&mut world, 1, 5);
        let big = measure_one_way(&mut world, 1 << 20, 5);
        let per_byte = (big - small) / ((1 << 20) - 1) as f64;
        let expect = gt.link(LinkClass::InterNode).ns_per_byte * 1e-9;
        assert!(
            (per_byte - expect).abs() / expect < 0.05,
            "per-byte {per_byte} vs {expect}"
        );
    }

    #[test]
    fn burst_gradient_recovers_effective_l() {
        // The marginal cost of messages 8→16 approximates L (pipelined
        // spacing), for both a local and a remote pair.
        for (machine, a, b, class) in [
            (
                MachineSpec::new(1, 1, 2),
                0usize,
                1usize,
                LinkClass::SameSocket,
            ),
            (MachineSpec::new(1, 2, 1), 0, 1, LinkClass::CrossSocket),
            (MachineSpec::new(2, 1, 1), 0, 1, LinkClass::InterNode),
        ] {
            let gt = machine.ground_truth.clone();
            let mut world = pair_world(machine, a, b);
            let t8 = measure_burst(&mut world, 8, 5);
            let t16 = measure_burst(&mut world, 16, 5);
            let marginal = (t16 - t8) / 8.0;
            let expect = gt.effective_l(class);
            let rel = (marginal - expect).abs() / expect;
            assert!(rel < 0.15, "{class:?}: marginal {marginal} vs L {expect}");
        }
    }

    #[test]
    fn noop_mean_recovers_call_overhead() {
        let machine = MachineSpec::new(1, 1, 2);
        let gt = machine.ground_truth.clone();
        let mut world = pair_world(machine, 0, 1);
        let mean = measure_noop(&mut world, 64);
        assert!((mean - gt.effective_oii()).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn burst_time_grows_monotonically_in_k() {
        let machine = MachineSpec::new(2, 1, 1);
        let mut world = pair_world(machine, 0, 1);
        let mut prev = 0.0;
        for k in [1, 2, 4, 8, 16, 32] {
            let t = measure_burst(&mut world, k, 3);
            assert!(t > prev, "k={k}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn pair_bench_matches_one_shot_measurements() {
        // The amortized scratch must reproduce the one-shot helpers
        // bit-for-bit: same run order ⇒ same run counter ⇒ same noise.
        let machine = MachineSpec::new(2, 1, 1);
        let mut world = pair_world(machine.clone(), 0, 1);
        let o1 = measure_one_way(&mut world, 1 << 10, 4);
        let b1 = measure_burst(&mut world, 8, 3);
        let n1 = measure_noop(&mut world, 16);
        let mut bench = PairBench::new(pair_world(machine, 0, 1));
        let o2 = bench.one_way(1 << 10, 4);
        let b2 = bench.burst(8, 3);
        let n2 = bench.noop(16);
        assert_eq!(o1.to_bits(), o2.to_bits());
        assert_eq!(b1.to_bits(), b2.to_bits());
        assert_eq!(n1.to_bits(), n2.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let mut world = pair_world(MachineSpec::new(2, 1, 1), 0, 1);
        measure_one_way(&mut world, 0, 0);
    }
}
