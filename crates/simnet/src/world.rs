//! User-facing simulation worlds.

use crate::engine::{Engine, EngineResult, SimDeadlock};
use crate::noise::{NoiseModel, NoiseState};
use crate::program::Program;
use crate::Time;
use hbar_topo::machine::{CoreId, MachineSpec};
use hbar_topo::mapping::RankMapping;

/// Configuration of a simulated machine plus rank placement.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    pub machine: MachineSpec,
    pub mapping: RankMapping,
    pub noise: NoiseModel,
}

impl SimConfig {
    /// Deterministic configuration (no noise).
    pub fn exact(machine: MachineSpec, mapping: RankMapping) -> Self {
        SimConfig {
            machine,
            mapping,
            noise: NoiseModel::none(),
        }
    }
}

/// Result of one simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-rank completion time of its whole program (ns).
    pub finish: Vec<Time>,
    /// Per-rank recorded marks.
    pub marks: Vec<Vec<(String, Time)>>,
    /// Events processed.
    pub events: u64,
}

impl SimResult {
    /// Latest completion across ranks (ns).
    pub fn makespan(&self) -> Time {
        self.finish.iter().copied().max().unwrap_or(0)
    }
}

/// A world of `p` ranks pinned to cores, ready to run programs.
///
/// The world owns **one** [`Engine`] whose arenas are built at
/// construction and reused by every [`run`](Self::run): programs are
/// borrowed per run, no ground truth or core list is cloned, and noise
/// draws are decorrelated across runs via an internal run counter, so
/// repeated runs model repeated benchmark executions at amortized cost.
pub struct SimWorld {
    config: SimConfig,
    engine: Engine,
    run_counter: u64,
}

impl SimWorld {
    /// Creates a world for ranks `0..p`.
    ///
    /// # Panics
    /// Panics if the mapping cannot place `p` ranks on the machine.
    pub fn new(config: SimConfig, p: usize) -> Self {
        let cores = config.mapping.cores(&config.machine, p);
        let engine = Engine::new(cores, config.machine.ground_truth.clone());
        SimWorld {
            config,
            engine,
            run_counter: 0,
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.engine.p()
    }

    /// The physical placement of each rank.
    pub fn cores(&self) -> &[CoreId] {
        self.engine.cores()
    }

    /// The machine this world simulates.
    pub fn machine(&self) -> &MachineSpec {
        &self.config.machine
    }

    /// Runs one program per rank to completion on the reused engine.
    ///
    /// # Panics
    /// Panics if the number of programs differs from the rank count.
    pub fn run(&mut self, programs: &[Program]) -> Result<SimResult, SimDeadlock> {
        self.run_inner(programs, false).map(|(result, _)| result)
    }

    /// Like [`run`](Self::run) but also records a per-message
    /// [`Trace`](crate::trace::Trace) — the instrumentation §VIII of the
    /// paper assumes for incremental cost updates at run time.
    pub fn run_traced(
        &mut self,
        programs: &[Program],
    ) -> Result<(SimResult, crate::trace::Trace), SimDeadlock> {
        self.run_inner(programs, true)
            .map(|(result, trace)| (result, trace.expect("trace was enabled")))
    }

    /// Lean run for benchmark loops: advances the run counter and executes
    /// like [`run`](Self::run), but returns only rank 0's finish time so
    /// the per-run path performs no result-vector allocation.
    pub(crate) fn run_finish0(&mut self, programs: &[Program]) -> Result<Time, SimDeadlock> {
        assert_eq!(programs.len(), self.p(), "one program per rank required");
        self.run_counter += 1;
        let noise = NoiseState::new(self.config.noise, self.run_counter);
        self.engine.execute(programs, noise)?;
        Ok(self.engine.finish_of(0))
    }

    /// Like [`run_finish0`](Self::run_finish0) but returns the span from
    /// rank 0's first recorded `Mark` to its finish — the simulated
    /// analogue of reading `MPI_Wtime` after a synchronizing handshake,
    /// so program setup stays out of the measured interval.
    pub(crate) fn run_span0(&mut self, programs: &[Program]) -> Result<Time, SimDeadlock> {
        assert_eq!(programs.len(), self.p(), "one program per rank required");
        self.run_counter += 1;
        let noise = NoiseState::new(self.config.noise, self.run_counter);
        self.engine.execute(programs, noise)?;
        Ok(self.engine.finish_of(0) - self.engine.first_mark_of(0))
    }

    fn run_inner(
        &mut self,
        programs: &[Program],
        traced: bool,
    ) -> Result<(SimResult, Option<crate::trace::Trace>), SimDeadlock> {
        assert_eq!(programs.len(), self.p(), "one program per rank required");
        self.run_counter += 1;
        let noise = NoiseState::new(self.config.noise, self.run_counter);
        if traced {
            self.engine.enable_trace();
        }
        self.engine.run(programs, noise).map(
            |EngineResult {
                 finish,
                 marks,
                 events,
                 trace,
             }| {
                (
                    SimResult {
                        finish,
                        marks,
                        events,
                    },
                    trace,
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn world_places_ranks() {
        let cfg = SimConfig::exact(MachineSpec::dual_quad_cluster(2), RankMapping::RoundRobin);
        let world = SimWorld::new(cfg, 16);
        assert_eq!(world.p(), 16);
        assert_eq!(world.cores()[0].node, 0);
        assert_eq!(world.cores()[1].node, 1);
    }

    #[test]
    fn deterministic_world_repeats_exactly() {
        let cfg = SimConfig::exact(MachineSpec::new(2, 1, 2), RankMapping::Block);
        let mut world = SimWorld::new(cfg, 4);
        let programs = vec![
            Program::new().issend(2).wait_all(),
            Program::new().issend(3).wait_all(),
            Program::new().irecv(0).wait_all(),
            Program::new().irecv(1).wait_all(),
        ];
        let a = world.run(&programs).unwrap();
        let b = world.run(&programs).unwrap();
        assert_eq!(a.finish, b.finish);
        assert!(a.makespan() > 0);
    }

    #[test]
    fn noisy_world_varies_between_runs_but_not_reconstructions() {
        let cfg = SimConfig {
            machine: MachineSpec::new(2, 1, 2),
            mapping: RankMapping::Block,
            noise: NoiseModel::realistic(11),
        };
        let programs = vec![
            Program::new().issend(2).wait_all(),
            Program::new().issend(3).wait_all(),
            Program::new().irecv(0).wait_all(),
            Program::new().irecv(1).wait_all(),
        ];
        let mut w1 = SimWorld::new(cfg.clone(), 4);
        let a = w1.run(&programs).unwrap();
        let b = w1.run(&programs).unwrap();
        assert_ne!(a.finish, b.finish, "noise must vary across runs");
        let mut w2 = SimWorld::new(cfg, 4);
        let a2 = w2.run(&programs).unwrap();
        assert_eq!(a.finish, a2.finish, "same seed and run index must repeat");
    }

    #[test]
    fn traced_run_records_message_lifecycle() {
        let cfg = SimConfig::exact(MachineSpec::new(2, 1, 1), RankMapping::Block);
        let mut world = SimWorld::new(cfg, 2);
        let programs = vec![
            Program::new().issend(1).wait_all(),
            Program::new().irecv(0).wait_all(),
        ];
        let (result, trace) = world.run_traced(&programs).unwrap();
        assert_eq!(trace.injected_messages(), 1);
        assert_eq!(trace.completed_messages(), 1);
        let pl = trace.pair_latencies();
        assert_eq!(pl.len(), 1);
        assert_eq!(pl[0].latencies.len(), 1);
        // The observed injection→consumption latency is the wire + NIC +
        // receiver path: strictly between zero and the full makespan.
        assert!(pl[0].latencies[0] > 0);
        assert!(pl[0].latencies[0] <= result.makespan());
        // The untraced path reports no trace but identical times.
        let again = world.run(&programs).unwrap();
        assert_eq!(again.finish, result.finish);
    }

    #[test]
    fn trace_conserves_barrier_signals() {
        use hbar_core::algorithms::Algorithm;
        let machine = MachineSpec::dual_quad_cluster(2);
        let p = 12;
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Dissemination.full_schedule(p, &members);
        let mut world = SimWorld::new(SimConfig::exact(machine, RankMapping::RoundRobin), p);
        let programs = crate::barrier::schedule_programs(&sched, 1);
        let (_, trace) = world.run_traced(&programs).unwrap();
        assert_eq!(trace.injected_messages(), sched.total_signals());
        assert_eq!(trace.completed_messages(), sched.total_signals());
    }

    #[test]
    #[should_panic(expected = "one program per rank")]
    fn wrong_program_count_panics() {
        let cfg = SimConfig::exact(MachineSpec::new(1, 1, 2), RankMapping::Block);
        let mut world = SimWorld::new(cfg, 2);
        let _ = world.run(&[Program::new()]);
    }
}
