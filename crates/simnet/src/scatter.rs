//! Out-of-core class-grid scatter: the `P ≫ 4096` back end of the
//! decomposed sweep.
//!
//! The dense scatter ([`crate::sweep`]) materializes two `|P|²` `f64`
//! matrices — 4 GiB at `P = 16384` — even though a clustered sweep only
//! ever *measured* a handful of class values. This module scatters into a
//! [`CompressedCostModel`] instead: a `u16` pair-class grid (2 bytes per
//! cell, 512 MiB at `P = 16384`) plus per-class value tables, never
//! touching dense storage.
//!
//! The grid itself is produced **tile-at-a-time** (a tile is
//! [`SpillConfig::tile_rows`] consecutive rows) so the scatter's working
//! set beyond the final grid is bounded: finished tiles stage in memory
//! while total staged bytes fit [`SpillConfig::mem_budget_bytes`], and
//! overflow tiles stream to `tile_NNNNN.bin` files in a spill directory.
//! The final merge walks tile ids in ascending order — memory-staged and
//! spilled tiles interleave arbitrarily, but the merge order is the
//! production order, so the resulting grid is byte-identical regardless
//! of budget, tile size, or how many tiles spilled. Spill files are
//! deleted as they are consumed.
//!
//! The class space of the grid extends the classing's:
//!
//! * pair classes `0..n_pair` (the classing's indices, verbatim),
//! * diag classes `n_pair..n_pair + n_diag`,
//! * then one appended class per *exploded* member — pairs in ascending
//!   `(i, j)` scan order, diagonals in ascending rank order — carrying
//!   that member's exact measurement.
//!
//! Diagonal cells never share a class with off-diagonal cells (diag
//! classes are a disjoint id range), which is precisely the invariant
//! [`CompressedCostModel::from_parts`] enforces so its derived
//! [`hbar_topo::DistanceMetric`] can alias the grid zero-copy.
//!
//! `CompressedCostModel::to_dense()` of the result is bit-identical to
//! the dense scatter of the same measurements — the values flowing into
//! the tables are the very `f64`s the dense path would have written.

use crate::noise::NoiseModel;
use crate::sweep::{
    measure_classes, ClassMeasurements, DescriptorExecutor, LocalExecutor, SweepConfig, SweepError,
    SweepReport,
};
use hbar_core::clustering::{classify_pairs, ClassingConfig, PairClassing};
use hbar_topo::compressed::{CompressError, CompressedCostModel, MAX_CLASSES};
use hbar_topo::features::{ExactExtractor, PairFeatureExtractor, TopologyExtractor};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use rayon::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Where and when scatter tiles spill to disk.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Spill directory; created lazily on first spill, so a run whose
    /// tiles all fit the budget never touches the filesystem.
    pub dir: PathBuf,
    /// Bytes of finished tiles allowed to stage in memory at once.
    /// Tiles that would exceed it are written to `dir` instead. The
    /// final grid allocation is *not* charged against this budget (it
    /// must exist in full for the model to be usable); the budget bounds
    /// the transient working set on top of it.
    pub mem_budget_bytes: usize,
    /// Rows per tile. Smaller tiles spill at finer granularity; larger
    /// tiles amortize i/o. The last tile may be shorter.
    pub tile_rows: usize,
}

impl SpillConfig {
    /// A configuration that stages everything in memory (no budget) —
    /// spill still available should the budget later be lowered.
    pub fn in_memory(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            mem_budget_bytes: usize::MAX,
            tile_rows: 256,
        }
    }

    /// A budgeted configuration with the default tile height.
    pub fn budgeted(dir: impl Into<PathBuf>, mem_budget_bytes: usize) -> Self {
        SpillConfig {
            mem_budget_bytes,
            ..SpillConfig::in_memory(dir)
        }
    }
}

/// What the tiled scatter did with its memory budget.
#[derive(Clone, Debug, Default)]
pub struct SpillReport {
    /// Tiles produced (== merged).
    pub tiles: usize,
    /// Tiles that overflowed the budget and went through the spill
    /// directory.
    pub spilled_tiles: usize,
    /// High-water mark of bytes staged in memory.
    pub staged_peak_bytes: usize,
    /// Total bytes written to spill files.
    pub spill_bytes: u64,
    /// Tile height the run used.
    pub tile_rows: usize,
}

/// Accepts finished tiles in production order, staging within the budget
/// and spilling the rest; then merges them back in tile-id order.
struct TileSink<'a> {
    cfg: &'a SpillConfig,
    staged: HashMap<usize, Vec<u16>>,
    staged_bytes: usize,
    dir_ready: bool,
    report: SpillReport,
}

impl<'a> TileSink<'a> {
    fn new(cfg: &'a SpillConfig) -> Self {
        TileSink {
            cfg,
            staged: HashMap::new(),
            staged_bytes: 0,
            dir_ready: false,
            report: SpillReport {
                tile_rows: cfg.tile_rows,
                ..SpillReport::default()
            },
        }
    }

    fn spill_path(&self, id: usize) -> PathBuf {
        self.cfg.dir.join(format!("tile_{id:05}.bin"))
    }

    fn push(&mut self, id: usize, tile: Vec<u16>) -> Result<(), SweepError> {
        debug_assert_eq!(id, self.report.tiles, "tiles must arrive in order");
        self.report.tiles += 1;
        let bytes = std::mem::size_of_val(tile.as_slice());
        if self.staged_bytes + bytes <= self.cfg.mem_budget_bytes {
            self.staged_bytes += bytes;
            self.report.staged_peak_bytes = self.report.staged_peak_bytes.max(self.staged_bytes);
            self.staged.insert(id, tile);
            return Ok(());
        }
        if !self.dir_ready {
            fs::create_dir_all(&self.cfg.dir)?;
            self.dir_ready = true;
        }
        let mut raw = Vec::with_capacity(bytes);
        for v in &tile {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let mut f = fs::File::create(self.spill_path(id))?;
        f.write_all(&raw)?;
        self.report.spilled_tiles += 1;
        self.report.spill_bytes += bytes as u64;
        Ok(())
    }

    /// Reassembles the full `p × p` grid, consuming staged tiles and
    /// deleting spill files as it goes.
    fn merge(mut self, p: usize) -> Result<(Vec<u16>, SpillReport), SweepError> {
        let mut grid = vec![0u16; p * p];
        let mut offset = 0usize;
        let mut raw = Vec::new();
        for id in 0..self.report.tiles {
            let dst = &mut grid[offset..];
            let len = if let Some(tile) = self.staged.remove(&id) {
                dst[..tile.len()].copy_from_slice(&tile);
                self.staged_bytes -= std::mem::size_of_val(tile.as_slice());
                tile.len()
            } else {
                let path = self.spill_path(id);
                raw.clear();
                fs::File::open(&path)?.read_to_end(&mut raw)?;
                fs::remove_file(&path)?;
                if raw.len() % 2 != 0 {
                    return Err(SweepError::Protocol(format!(
                        "spill tile {id} holds {} bytes (odd)",
                        raw.len()
                    )));
                }
                for (cell, chunk) in dst.iter_mut().zip(raw.chunks_exact(2)) {
                    *cell = u16::from_le_bytes([chunk[0], chunk[1]]);
                }
                raw.len() / 2
            };
            offset += len;
        }
        if offset != p * p {
            return Err(SweepError::Protocol(format!(
                "tiles covered {offset} cells of a {p}×{p} grid"
            )));
        }
        Ok((grid, self.report))
    }
}

/// Scatters class measurements into a [`CompressedCostModel`], producing
/// the grid tile-at-a-time under `spill`'s memory budget. Tile contents
/// are computed row-parallel; tile order (and therefore the grid, and
/// therefore the model fingerprint) is deterministic.
pub(crate) fn scatter_compressed_tiles(
    machine: &MachineSpec,
    cores: &[usize],
    classing: &PairClassing,
    extractor: &(dyn PairFeatureExtractor + Sync),
    symmetric: bool,
    m: &ClassMeasurements,
    spill: &SpillConfig,
) -> Result<(CompressedCostModel, SpillReport), SweepError> {
    let p = cores.len();
    let n_pair = classing.pair_classes.len();
    let n_diag = classing.diag_classes.len();
    let needed = n_pair + n_diag + m.exploded_pairs.len() + m.exploded_diags.len();
    if needed > MAX_CLASSES {
        return Err(SweepError::Compress(CompressError::ClassOverflow {
            needed,
        }));
    }

    // Class space: pair classes, diag classes, then exploded members in
    // deterministic (sorted) order.
    let mut table_o = Vec::with_capacity(needed);
    let mut table_l = Vec::with_capacity(needed);
    for &(o, l) in &m.pair_estimates {
        table_o.push(o);
        table_l.push(l);
    }
    for &o in &m.diag_estimates {
        table_o.push(o);
        table_l.push(0.0);
    }
    let mut exploded_pair_ids: HashMap<(usize, usize), u16> =
        HashMap::with_capacity(m.exploded_pairs.len());
    let mut pair_keys: Vec<(usize, usize)> = m.exploded_pairs.keys().copied().collect();
    pair_keys.sort_unstable();
    for key in pair_keys {
        let (o, l) = m.exploded_pairs[&key];
        exploded_pair_ids.insert(key, table_o.len() as u16);
        table_o.push(o);
        table_l.push(l);
    }
    let mut exploded_diag_ids: HashMap<usize, u16> = HashMap::with_capacity(m.exploded_diags.len());
    let mut diag_keys: Vec<usize> = m.exploded_diags.keys().copied().collect();
    diag_keys.sort_unstable();
    for key in diag_keys {
        exploded_diag_ids.insert(key, table_o.len() as u16);
        table_o.push(m.exploded_diags[&key]);
        table_l.push(0.0);
    }

    // Tile production. Each cell re-derives its features exactly as the
    // dense scatter does; symmetric classings saw only `(min, max)`
    // orientations, so lookups use that orientation for both triangles.
    let class_of_cell = |i: usize, j: usize| -> u16 {
        if i == j {
            let f = extractor.rank_features(machine, i, cores[i]);
            let c = classing
                .diag_class_index(&f)
                .expect("scatter features must re-derive a seen diag class");
            if m.explode_diag[c] {
                exploded_diag_ids[&i]
            } else {
                (n_pair + c) as u16
            }
        } else {
            let (a, b) = if symmetric {
                (i.min(j), i.max(j))
            } else {
                (i, j)
            };
            let f = extractor.pair_features(machine, (a, b), (cores[a], cores[b]));
            let c = classing
                .pair_class_index(&f)
                .expect("scatter features must re-derive a seen class");
            if m.explode_pair[c] {
                exploded_pair_ids[&(a, b)]
            } else {
                c as u16
            }
        }
    };
    let tile_rows = spill.tile_rows.max(1);
    let mut sink = TileSink::new(spill);
    for (tile_id, start) in (0..p).step_by(tile_rows).enumerate() {
        let rows = tile_rows.min(p - start);
        // Row-parallel with order-preserving collect: the tile bytes are
        // identical to a sequential fill regardless of thread count.
        let row_data: Vec<Vec<u16>> = (start..start + rows)
            .into_par_iter()
            .map(|i| (0..p).map(|j| class_of_cell(i, j)).collect())
            .collect();
        let mut tile = Vec::with_capacity(rows * p);
        for row in row_data {
            tile.extend_from_slice(&row);
        }
        sink.push(tile_id, tile)?;
    }
    let (grid, report) = sink.merge(p)?;

    let model =
        CompressedCostModel::from_parts(p, grid, table_o, table_l).map_err(SweepError::Compress)?;
    Ok((model, report))
}

/// The decomposed sweep with a class-compressed result: same classing,
/// measurement plan, adaptive growth, and explosion semantics as
/// [`crate::sweep::measure_profile_decomposed`], but the scatter builds a
/// [`CompressedCostModel`] tile-at-a-time under `spill`'s budget instead
/// of dense `|P|²` matrices. `model.to_dense()` is bit-identical to the
/// dense sweep's profile.
///
/// # Panics
/// Panics if `p < 2` or the mapping cannot place `p` ranks.
pub fn measure_profile_compressed(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &SweepConfig,
    spill: &SpillConfig,
    executor: &mut dyn DescriptorExecutor,
) -> Result<(CompressedCostModel, SweepReport, SpillReport), SweepError> {
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);
    let regime = crate::sweep::noise_regime_of(&noise);
    let topo_extractor = TopologyExtractor::with_noise_regime(regime);
    let exact_extractor = ExactExtractor {
        noise_regime: regime,
    };
    let extractor: &(dyn PairFeatureExtractor + Sync) = if cfg.exact_classes {
        &exact_extractor
    } else {
        &topo_extractor
    };
    let classing = classify_pairs(
        machine,
        &cores,
        p,
        extractor,
        &ClassingConfig {
            symmetric: cfg.profiling.symmetric,
            probes_per_class: cfg.probes_per_class,
            probe_seed: cfg.probe_seed,
        },
    );
    let (m, report) = measure_classes(machine, &cores, &classing, extractor, noise, cfg, executor)?;
    let (model, spill_report) = scatter_compressed_tiles(
        machine,
        &cores,
        &classing,
        extractor,
        cfg.profiling.symmetric,
        &m,
        spill,
    )?;
    Ok((model, report, spill_report))
}

/// [`measure_profile_compressed`] with local work-stealing execution —
/// the compressed sibling of
/// [`crate::sweep::measure_profile_clustered`].
///
/// # Panics
/// As [`measure_profile_compressed`].
pub fn measure_profile_clustered_compressed(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &SweepConfig,
    spill: &SpillConfig,
) -> Result<(CompressedCostModel, SweepReport, SpillReport), SweepError> {
    let mut executor = LocalExecutor::new(machine.clone(), noise, cfg.profiling.clone());
    measure_profile_compressed(machine, mapping, p, noise, cfg, spill, &mut executor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::measure_profile_clustered;
    use hbar_topo::cost::{CostMatrices, CostProvider};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn bit_equal(a: &CostMatrices, b: &CostMatrices) -> bool {
        a.o.as_slice()
            .iter()
            .zip(b.o.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.l
                .as_slice()
                .iter()
                .zip(b.l.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "hbar_scatter_{tag}_{}_{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn compressed_scatter_matches_dense_bit_for_bit() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let mapping = RankMapping::Block;
        let noise = NoiseModel::realistic(5);
        let cfg = SweepConfig::fast();
        let (dense, dense_report) = measure_profile_clustered(&machine, &mapping, 16, noise, &cfg);
        let spill = SpillConfig::in_memory(scratch_dir("parity"));
        let (model, report, spill_report) =
            measure_profile_clustered_compressed(&machine, &mapping, 16, noise, &cfg, &spill)
                .unwrap();
        assert!(bit_equal(&model.to_dense(), &dense.cost));
        assert_eq!(report.measurements, dense_report.measurements);
        assert_eq!(spill_report.spilled_tiles, 0);
        assert!(!spill.dir.exists(), "no-spill run must not touch disk");
        // The whole point: 4 pair + 2 diag classes instead of 16² values.
        assert_eq!(model.classes(), 6);
        assert!(model.is_symmetric());
    }

    #[test]
    fn spilled_tiles_reassemble_identically() {
        let machine = MachineSpec::dual_hex_cluster(3);
        let mapping = RankMapping::RoundRobin;
        let noise = NoiseModel::realistic(9);
        let cfg = SweepConfig::fast();
        let unspilled = SpillConfig::in_memory(scratch_dir("nospill"));
        let (a, _, ra) =
            measure_profile_clustered_compressed(&machine, &mapping, 24, noise, &cfg, &unspilled)
                .unwrap();
        assert_eq!(ra.spilled_tiles, 0);
        // A budget below one tile (3 rows × 24 cols × 2 B = 144 B) forces
        // every tile through the spill directory.
        let spilled = SpillConfig {
            mem_budget_bytes: 100,
            tile_rows: 3,
            ..SpillConfig::in_memory(scratch_dir("allspill"))
        };
        let (b, _, rb) =
            measure_profile_clustered_compressed(&machine, &mapping, 24, noise, &cfg, &spilled)
                .unwrap();
        assert_eq!(rb.tiles, 8);
        assert_eq!(rb.spilled_tiles, 8);
        assert_eq!(rb.spill_bytes, 24 * 24 * 2);
        assert_eq!(rb.staged_peak_bytes, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.grid(), b.grid());
        // Spill files are consumed by the merge.
        assert_eq!(fs::read_dir(&spilled.dir).unwrap().count(), 0);
        fs::remove_dir_all(&spilled.dir).unwrap();
    }

    #[test]
    fn partial_budget_interleaves_staged_and_spilled_tiles() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let mapping = RankMapping::Block;
        let noise = NoiseModel::realistic(2);
        let cfg = SweepConfig::fast();
        // 32 ranks, 4-row tiles → 8 tiles of 256 B; budget holds 2.
        let spill = SpillConfig {
            mem_budget_bytes: 512,
            tile_rows: 4,
            ..SpillConfig::in_memory(scratch_dir("mixed"))
        };
        let (mixed, _, report) =
            measure_profile_clustered_compressed(&machine, &mapping, 32, noise, &cfg, &spill)
                .unwrap();
        assert_eq!(report.tiles, 8);
        assert_eq!(report.spilled_tiles, 6);
        assert_eq!(report.staged_peak_bytes, 512);
        let baseline = SpillConfig::in_memory(scratch_dir("mixed_base"));
        let (full, _, _) =
            measure_profile_clustered_compressed(&machine, &mapping, 32, noise, &cfg, &baseline)
                .unwrap();
        assert_eq!(mixed.fingerprint(), full.fingerprint());
        assert_eq!(mixed.grid(), full.grid());
        fs::remove_dir_all(&spill.dir).unwrap();
    }

    #[test]
    fn exploded_members_scatter_their_exact_values() {
        // explode_rel_tol = 0 explodes every class with measurable
        // scatter; the compressed scatter must then carry per-member
        // values, matching the dense sweep (which matches the exhaustive
        // sweep) bit for bit.
        let machine = MachineSpec::dual_quad_cluster(2);
        let mapping = RankMapping::Block;
        let noise = NoiseModel::realistic(13);
        let cfg = SweepConfig {
            explode_rel_tol: 0.0,
            ..SweepConfig::fast()
        };
        let (dense, _) = measure_profile_clustered(&machine, &mapping, 16, noise, &cfg);
        let spill = SpillConfig::in_memory(scratch_dir("exploded"));
        let (model, report, _) =
            measure_profile_clustered_compressed(&machine, &mapping, 16, noise, &cfg, &spill)
                .unwrap();
        assert!(report.exploded_pair_classes > 0);
        assert!(bit_equal(&model.to_dense(), &dense.cost));
        // Exploded members each occupy their own appended class.
        assert!(model.classes() > 6, "classes = {}", model.classes());
    }

    #[test]
    fn asymmetric_sweeps_compress_too() {
        let machine = MachineSpec::new(2, 2, 2);
        let mapping = RankMapping::RoundRobin;
        let noise = NoiseModel::realistic(4);
        let cfg = SweepConfig {
            profiling: crate::profiling::ProfilingConfig {
                symmetric: false,
                ..crate::profiling::ProfilingConfig::fast()
            },
            ..SweepConfig::fast()
        };
        let (dense, _) = measure_profile_clustered(&machine, &mapping, 8, noise, &cfg);
        let spill = SpillConfig::in_memory(scratch_dir("asym"));
        let (model, _, _) =
            measure_profile_clustered_compressed(&machine, &mapping, 8, noise, &cfg, &spill)
                .unwrap();
        assert!(bit_equal(&model.to_dense(), &dense.cost));
    }

    #[test]
    fn class_overflow_is_reported_not_truncated() {
        // ExactExtractor at p = 384 yields 384·383/2 = 73 536 singleton
        // pair classes — past the u16 grid's 65 536. The scatter must
        // refuse up front (before measuring would even be attempted —
        // we synthesize the measurement phase's output to keep the test
        // fast).
        let machine = MachineSpec::new(48, 2, 4);
        let p = 384;
        let cores = RankMapping::Block.place(&machine, p);
        let extractor = ExactExtractor::default();
        let classing = classify_pairs(
            &machine,
            &cores,
            p,
            &extractor,
            &ClassingConfig {
                symmetric: true,
                probes_per_class: 0,
                probe_seed: 0,
            },
        );
        let n_pair = classing.pair_classes.len();
        assert!(n_pair > MAX_CLASSES);
        let m = ClassMeasurements {
            pair_estimates: vec![(1e-6, 1e-7); n_pair],
            diag_estimates: vec![1e-7; classing.diag_classes.len()],
            explode_pair: vec![false; n_pair],
            explode_diag: vec![false; classing.diag_classes.len()],
            exploded_pairs: HashMap::new(),
            exploded_diags: HashMap::new(),
        };
        let spill = SpillConfig::in_memory(scratch_dir("overflow"));
        let err =
            scatter_compressed_tiles(&machine, &cores, &classing, &extractor, true, &m, &spill)
                .expect_err("must overflow");
        match err {
            SweepError::Compress(CompressError::ClassOverflow { needed }) => {
                assert_eq!(needed, n_pair + classing.diag_classes.len());
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
