//! The `|P|²` pairwise profiling driver (§IV-A).
//!
//! "Benchmarking to find these values proceeds by a sequence of
//! |P|(|P|−1)/2 pairwise round-trip tests to establish O_ij, L_ij | i ≠ j,
//! and another |P| tests for O_ii."
//!
//! Each pair is measured in its own two-rank world pinned to the pair's
//! cores (the simulator's equivalent of `sched_setaffinity`), with a
//! per-pair noise sub-seed so interference is independent across pairs.
//! Pairs are measured in parallel with rayon — sound because the paper's
//! pairwise tests are themselves independent experiments.

use crate::benchprog::PairBench;
use crate::noise::NoiseModel;
use crate::world::{SimConfig, SimWorld};
use hbar_core::clustering::splitmix64;
use hbar_matrix::DenseMatrix;
use hbar_topo::cost::CostMatrices;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use hbar_topo::regress::{hockney_intercept, hockney_message_sizes, latency_gradient};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Benchmark schedule parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfilingConfig {
    /// Ping-pong payload sizes for the `O_ij` regression.
    pub sizes: Vec<usize>,
    /// Independent runs per ping-pong sample point, summarized by their
    /// median (paper: 25).
    pub reps: usize,
    /// Largest simultaneous-message count for the `L_ij` regression
    /// (paper: 32).
    pub max_messages: usize,
    /// Independent runs per burst sample point, summarized by their
    /// median (paper: 25).
    pub burst_reps: usize,
    /// Transmission-free calls averaged for `O_ii` (paper: |P|).
    pub noop_calls: usize,
    /// Measure each unordered pair once and mirror it (the paper's
    /// symmetric-link assumption); `false` measures both directions,
    /// supporting the asymmetric extension the paper calls trivial.
    pub symmetric: bool,
}

impl Default for ProfilingConfig {
    fn default() -> Self {
        ProfilingConfig {
            sizes: hockney_message_sizes(),
            reps: 25,
            max_messages: 32,
            burst_reps: 25,
            noop_calls: 32,
            symmetric: true,
        }
    }
}

impl ProfilingConfig {
    /// A reduced schedule for unit tests and quick runs: fewer sizes,
    /// fewer repetitions, shorter bursts. Estimates are noisier but the
    /// pipeline is identical.
    pub fn fast() -> Self {
        ProfilingConfig {
            sizes: vec![1, 64, 1 << 10, 1 << 14, 1 << 17],
            reps: 4,
            max_messages: 8,
            burst_reps: 3,
            noop_calls: 8,
            symmetric: true,
        }
    }
}

/// The noise sub-seed of pair `(i, j)`'s benchmark world: a SplitMix64
/// mix of the pair identity into the base seed.
///
/// The previous scheme — `seed + (i * p + j) * odd_constant` — handed
/// adjacent pairs consecutive multiples of one constant, so their
/// `SmallRng` streams started from low-entropy, correlated states, and it
/// depended on `p`, so the same physical pair got different noise under
/// different sweep sizes and the asymmetric direction `(j, i)` could
/// collide with an unrelated pair's representative at large `P`
/// (`i * p + j` wraps). Mixing each coordinate through the SplitMix64
/// finalizer gives every ordered pair an avalanche-decorrelated,
/// `p`-independent stream.
pub fn pair_sub_seed(i: usize, j: usize, seed: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15) ^ i as u64) ^ j as u64)
}

/// The noise sub-seed of rank `i`'s diagonal (`O_ii`) benchmark world,
/// domain-separated from every pair sub-seed.
pub fn diag_sub_seed(i: usize, seed: u64) -> u64 {
    splitmix64(splitmix64(seed ^ 0x000D_D1A6_u64) ^ i as u64)
}

/// Runs the full §IV-A benchmark suite on the simulated machine and
/// extracts a topology profile by least-squares regression.
///
/// # Panics
/// Panics if `p < 2` or `p` exceeds the machine capacity (via the mapping).
pub fn measure_profile(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &ProfilingConfig,
) -> TopologyProfile {
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);
    let directed_pairs: Vec<(usize, usize)> = if cfg.symmetric {
        (0..p)
            .flat_map(|i| ((i + 1)..p).map(move |j| (i, j)))
            .collect()
    } else {
        (0..p)
            .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect()
    };

    let measured: Vec<(usize, usize, f64, f64)> = directed_pairs
        .par_iter()
        .map(|&(i, j)| {
            let mut bench = pair_bench(
                machine,
                cores[i],
                cores[j],
                noise,
                pair_sub_seed(i, j, noise.seed),
            );
            let (o, l) = measure_pair(&mut bench, cfg);
            (i, j, o, l)
        })
        .collect();

    let diag: Vec<f64> = (0..p)
        .into_par_iter()
        .map(|i| {
            let partner = cores[(i + 1) % p];
            let mut bench = pair_bench(
                machine,
                cores[i],
                partner,
                noise,
                diag_sub_seed(i, noise.seed),
            );
            bench.noop(cfg.noop_calls)
        })
        .collect();

    let mut o = DenseMatrix::new(p);
    let mut l = DenseMatrix::new(p);
    for (i, j, oij, lij) in measured {
        o[(i, j)] = oij;
        l[(i, j)] = lij;
        if cfg.symmetric {
            o[(j, i)] = oij;
            l[(j, i)] = lij;
        }
    }
    for (i, &oii) in diag.iter().enumerate() {
        o[(i, i)] = oii;
        l[(i, i)] = 0.0;
    }

    TopologyProfile {
        machine: machine.clone(),
        mapping: mapping.clone(),
        p,
        cost: CostMatrices { o, l },
    }
}

/// The §IV-B profiling-cost reduction, end to end: benchmark only one
/// representative pair per link class present under the placement (plus
/// one `O_ii` rank), then replicate the class values across the full
/// `P × P` matrices.
///
/// "A great deal of duplicate effort could be rationalized by
/// constructing P × P matrices from replicating component submatrices" —
/// the paper measured everything anyway to rule out surprises, found
/// "similar submatrices corresponding to similar subsystems", and
/// concluded the shortcut loses no significant information. This
/// function is that shortcut; `replication_error` against a full
/// [`measure_profile`] quantifies the loss (tested).
///
/// # Panics
/// Panics if `p < 2` or the mapping cannot place `p` ranks.
pub fn measure_profile_replicated(
    machine: &MachineSpec,
    mapping: &RankMapping,
    p: usize,
    noise: NoiseModel,
    cfg: &ProfilingConfig,
) -> TopologyProfile {
    use hbar_topo::machine::LinkClass;
    use hbar_topo::replicate::{replicate_by_class, ClassRepresentatives};
    assert!(p >= 2, "profiling needs at least two ranks, got {p}");
    let cores = mapping.place(machine, p);

    // One representative ordered pair per class present.
    let mut rep_pair: Vec<(LinkClass, (usize, usize))> = Vec::new();
    for class in LinkClass::ALL {
        'outer: for i in 0..p {
            for j in 0..p {
                if i != j && machine.link_class(cores[i], cores[j]) == class {
                    rep_pair.push((class, (i, j)));
                    break 'outer;
                }
            }
        }
    }

    let mut reps = ClassRepresentatives {
        o_same_socket: 0.0,
        o_cross_socket: 0.0,
        o_inter_node: 0.0,
        l_same_socket: 0.0,
        l_cross_socket: 0.0,
        l_inter_node: 0.0,
        o_diag: 0.0,
    };
    for (class, (i, j)) in rep_pair {
        let mut bench = pair_bench(
            machine,
            cores[i],
            cores[j],
            noise,
            pair_sub_seed(i, j, noise.seed),
        );
        let (o, l) = measure_pair(&mut bench, cfg);
        match class {
            LinkClass::SameSocket => {
                reps.o_same_socket = o;
                reps.l_same_socket = l;
            }
            LinkClass::CrossSocket => {
                reps.o_cross_socket = o;
                reps.l_cross_socket = l;
            }
            LinkClass::InterNode => {
                reps.o_inter_node = o;
                reps.l_inter_node = l;
            }
        }
    }
    // One O_ii measurement, replicated along the diagonal.
    let mut bench = pair_bench(
        machine,
        cores[0],
        cores[1 % p],
        noise,
        diag_sub_seed(0, noise.seed),
    );
    reps.o_diag = bench.noop(cfg.noop_calls);

    TopologyProfile {
        machine: machine.clone(),
        mapping: mapping.clone(),
        p,
        cost: replicate_by_class(&reps, machine, &cores),
    }
}

/// Runs one pair's full §IV-A measurement schedule — the ping-pong size
/// sweep then the burst-count sweep, in the fixed order both drivers
/// promise — and regresses out `(O_ij, L_ij)`. Shared by
/// [`measure_profile`] and [`measure_profile_replicated`], amortizing one
/// engine and one pair of program buffers across every sample point.
pub(crate) fn measure_pair(bench: &mut PairBench, cfg: &ProfilingConfig) -> (f64, f64) {
    let o_points: Vec<(f64, f64)> = cfg
        .sizes
        .iter()
        .map(|&s| (s as f64, bench.one_way(s, cfg.reps)))
        .collect();
    let l_points: Vec<(f64, f64)> = (1..=cfg.max_messages)
        .map(|k| (k as f64, bench.burst(k, cfg.burst_reps)))
        .collect();
    (hockney_intercept(&o_points), latency_gradient(&l_points))
}

/// Builds an amortized two-rank benchmark scratch with local rank 0 on
/// `core_a` and local rank 1 on `core_b`, drawing noise from `sub_seed`
/// (already mixed — see [`pair_sub_seed`]/[`diag_sub_seed`]).
pub(crate) fn pair_bench(
    machine: &MachineSpec,
    core_a: usize,
    core_b: usize,
    noise: NoiseModel,
    sub_seed: u64,
) -> PairBench {
    let per_pair_noise = NoiseModel {
        seed: sub_seed,
        ..noise
    };
    let cfg = SimConfig {
        machine: machine.clone(),
        mapping: RankMapping::Custom(vec![core_a, core_b]),
        noise: per_pair_noise,
    };
    PairBench::new(SimWorld::new(cfg, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::LinkClass;

    /// Relative error of every off-diagonal profile entry against the
    /// ideal ground-truth profile.
    fn worst_error(measured: &TopologyProfile, ideal: &TopologyProfile) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..measured.p {
            for j in 0..measured.p {
                if i == j {
                    continue;
                }
                let (a, b) = (measured.cost.o[(i, j)], ideal.cost.o[(i, j)]);
                worst = worst.max((a - b).abs() / b);
                let (a, b) = (measured.cost.l[(i, j)], ideal.cost.l[(i, j)]);
                worst = worst.max((a - b).abs() / b);
            }
        }
        worst
    }

    #[test]
    fn noise_free_profile_matches_ground_truth_closely() {
        let machine = MachineSpec::new(2, 2, 2);
        let mapping = RankMapping::Block;
        let measured = measure_profile(
            &machine,
            &mapping,
            8,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        let ideal = TopologyProfile::from_ground_truth(&machine, &mapping);
        let err = worst_error(&measured, &ideal);
        assert!(err < 0.12, "worst relative error {err}");
    }

    #[test]
    fn profile_reflects_hierarchy_ordering() {
        let machine = MachineSpec::new(2, 2, 2);
        let measured = measure_profile(
            &machine,
            &RankMapping::Block,
            8,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        // same socket (0,1) < cross socket (0,4) < inter node (0,4+4).
        let o = &measured.cost.o;
        assert!(o[(0, 1)] < o[(0, 2)] || o[(0, 1)] < o[(0, 4)]);
        assert!(o[(0, 1)] < o[(0, 4)]);
        assert!(o[(0, 4)] < o[(0, 5)].max(o[(0, 6)]).max(o[(0, 7)]) * 100.0);
        // Inter-node pairs clearly dominate.
        let inter = o[(0, 4)];
        let local_max = o[(0, 1)].max(o[(0, 2)]).max(o[(0, 3)]);
        assert!(
            inter > 5.0 * local_max,
            "inter {inter} vs local {local_max}"
        );
    }

    #[test]
    fn noisy_profile_remains_usable() {
        let machine = MachineSpec::new(2, 1, 2);
        let mapping = RankMapping::Block;
        let measured = measure_profile(
            &machine,
            &mapping,
            4,
            NoiseModel::realistic(17),
            &ProfilingConfig::fast(),
        );
        let ideal = TopologyProfile::from_ground_truth(&machine, &mapping);
        let err = worst_error(&measured, &ideal);
        // Noise perturbs estimates but the profile stays in the right
        // ballpark — the reproducibility §IV-B claims.
        assert!(err < 0.6, "worst relative error {err}");
        // And the hierarchy ordering survives.
        assert!(measured.cost.o[(0, 1)] < measured.cost.o[(0, 2)]);
    }

    #[test]
    fn symmetric_profile_is_symmetric() {
        let machine = MachineSpec::new(2, 1, 2);
        let measured = measure_profile(
            &machine,
            &RankMapping::Block,
            4,
            NoiseModel::realistic(3),
            &ProfilingConfig::fast(),
        );
        assert!(measured.cost.o.is_symmetric());
        assert!(measured.cost.l.is_symmetric());
    }

    #[test]
    fn asymmetric_mode_measures_both_directions() {
        let machine = MachineSpec::new(2, 1, 2);
        let cfg = ProfilingConfig {
            symmetric: false,
            ..ProfilingConfig::fast()
        };
        let measured = measure_profile(
            &machine,
            &RankMapping::Block,
            4,
            NoiseModel::realistic(3),
            &cfg,
        );
        // With independent noisy measurements per direction, exact
        // symmetry is (almost surely) broken but values stay close.
        assert!(!measured.cost.o.is_symmetric());
        assert!(measured.cost.o.asymmetry() < 0.5);
    }

    #[test]
    fn replicated_profiling_loses_no_significant_information() {
        // §IV-B's claim, checked end to end: a profile built from one
        // measured pair per link class is close to the fully measured
        // one, at a fraction of the benchmark count.
        use hbar_topo::replicate::replication_error;
        let machine = MachineSpec::new(2, 2, 2);
        let mapping = RankMapping::RoundRobin;
        let full = measure_profile(
            &machine,
            &mapping,
            8,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        let replicated = super::measure_profile_replicated(
            &machine,
            &mapping,
            8,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        let err = replication_error(&full.cost, &replicated.cost);
        assert!(err < 0.05, "replication error {err}");
        // And it still drives the tuner to a valid barrier.
        let tuned = hbar_core::compose::tune_hybrid(
            &replicated,
            &hbar_core::compose::TunerConfig::default(),
        );
        assert!(hbar_core::verify::is_barrier(&tuned.schedule));
    }

    #[test]
    fn replicated_profiling_handles_single_class_machines() {
        // A single-socket node has only SameSocket links.
        let machine = MachineSpec::new(1, 1, 4);
        let prof = super::measure_profile_replicated(
            &machine,
            &RankMapping::Block,
            4,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        assert_eq!(prof.p, 4);
        assert!(prof.cost.o[(0, 3)] > 0.0);
        assert_eq!(prof.cost.o[(0, 1)], prof.cost.o[(2, 3)]);
    }

    #[test]
    fn sub_seeds_decorrelate_and_never_collide() {
        // p-independent by construction (no `p` argument), directed pairs
        // and diagonals all land on distinct seeds — the property the old
        // `(i * p + j)` salt violated at large P.
        let mut seen = std::collections::HashSet::new();
        for i in 0..128usize {
            for j in 0..128usize {
                if i != j {
                    assert!(seen.insert(pair_sub_seed(i, j, 42)), "collision ({i},{j})");
                }
            }
            assert!(seen.insert(diag_sub_seed(i, 42)), "diag collision {i}");
        }
        // And adjacent pairs differ in roughly half their bits rather than
        // by one multiple of a constant.
        let d = (pair_sub_seed(0, 1, 42) ^ pair_sub_seed(0, 2, 42)).count_ones();
        assert!((16..=48).contains(&d), "adjacent seeds too correlated: {d}");
    }

    #[test]
    fn diagonal_holds_call_overhead_estimate() {
        let machine = MachineSpec::new(1, 1, 2);
        let measured = measure_profile(
            &machine,
            &RankMapping::Block,
            2,
            NoiseModel::none(),
            &ProfilingConfig::fast(),
        );
        let expect = machine.ground_truth.effective_oii();
        for i in 0..2 {
            assert!((measured.cost.o[(i, i)] - expect).abs() / expect < 0.01);
            assert_eq!(measured.cost.l[(i, i)], 0.0);
        }
        // The noise-free L for a same-socket pair matches Fig. 9 scale.
        let l01 = measured.cost.l[(0, 1)];
        let expect_l = machine.ground_truth.effective_l(LinkClass::SameSocket);
        assert!(
            (l01 - expect_l).abs() / expect_l < 0.15,
            "{l01} vs {expect_l}"
        );
    }
}
