//! The discrete-event engine.
//!
//! ## Microscopic model
//!
//! A message from rank `i` to rank `j` of link class `c` passes through
//! serial resources in order, each charging a (possibly noise-perturbed)
//! occupancy from the machine's [`GroundTruth`]:
//!
//! 1. **Sender CPU** — `call_overhead + cpu_send(c)`; consecutive calls by
//!    the same process serialize here.
//! 2. **Node NIC TX** (inter-node only) — `nic_tx`; all traffic leaving a
//!    node serializes here, which is what makes many ranks per node
//!    sharing one gigabit NIC expensive (and what the measured `L`
//!    captures for inter-node pairs).
//! 3. **Wire** — `wire + bytes · ns_per_byte`, unlimited parallelism.
//! 4. **Node NIC RX** (inter-node only) — `nic_rx`.
//! 5. **Receiver CPU** — `cpu_recv(c)`, charged when the message matches a
//!    posted receive (at the later of availability and posting).
//!
//! A synchronous send's request completes at the *sender* when the
//! receiver has processed the message, plus one wire delay for the
//! acknowledgement — the `MPI_Issend` property the paper's benchmarks
//! lean on ("making local completion an indication that both processes
//! have been involved").
//!
//! Receives match per `(src, dst)` pair in FIFO order. Posting any call
//! costs `call_overhead` on the caller's CPU. `Delay` models computation
//! without occupying the CPU resource (message progress continues, as
//! with an MPI progress thread).
//!
//! ## Reuse lifecycle
//!
//! An `Engine` is built **once** per placement ([`Engine::new`] takes the
//! core list and ground truth) and then runs arbitrarily many program
//! sets: [`run`](Engine::run) borrows a program slice, [`reset`]s the
//! per-run state, and interprets instructions **by value** (`Instr` is
//! `Copy`; mark labels are interned ids). All per-run state lives in
//! arenas sized at construction — the event queue, per-process interpreter
//! states, per-resource clocks, and a flat `p × p` pool of head-indexed
//! FIFO queues for posted/ready message matching — and is cleared in
//! O(touched) between runs, so the hot loop performs no heap allocation
//! after warm-up. Results are bit-identical to a freshly constructed
//! engine: event ordering depends only on `(time, seq)` and `seq` restarts
//! at zero each run, so the deterministic noise stream is consumed in the
//! same order.
//!
//! [`reset`]: Engine::reset

use crate::noise::{NoiseModel, NoiseState};
use crate::program::{Instr, LabelId, Program};
use crate::trace::{Trace, TraceEvent};
use crate::Time;
use hbar_topo::machine::{CoreId, GroundTruth, LinkClass};

/// A serial resource reserved in event-time order.
#[derive(Clone, Copy, Debug, Default)]
struct Resource {
    free_at: Time,
}

impl Resource {
    /// Reserves the resource for `dur` starting no earlier than `at`;
    /// returns the completion time.
    fn acquire(&mut self, at: Time, dur: Time) -> Time {
        let start = self.free_at.max(at);
        self.free_at = start + dur;
        self.free_at
    }
}

/// Event tags, packed into the top bits of an event payload.
const TAG_RESUME: u32 = 0;
const TAG_ARRIVE: u32 = 1;
const TAG_RECV_DONE: u32 = 2;
const TAG_SEND_DONE: u32 = 3;

/// Rank-field width in a packed event payload (two ranks + a 2-bit tag
/// must fit in 32 bits).
const RANK_BITS: u32 = 15;
const RANK_MASK: u32 = (1 << RANK_BITS) - 1;

/// Packs `(tag, dst, src)` into an event payload word.
#[inline]
fn payload(tag: u32, dst: usize, src: usize) -> u32 {
    (tag << (2 * RANK_BITS)) | ((dst as u32) << RANK_BITS) | src as u32
}

/// A popped queue entry. `key` carries the tie-breaking sequence number
/// in its high half and the packed `(tag, dst, src)` payload in its low
/// half; in the queue both words live in one `u128` (`time` on top) whose
/// integer order is exactly the engine's `(time, seq)` event order, since
/// sequence numbers are unique.
#[derive(Clone, Copy, Debug)]
struct Event {
    time: Time,
    key: u64,
}

impl Event {
    #[inline]
    fn tag(&self) -> u32 {
        self.key as u32 >> (2 * RANK_BITS)
    }

    #[inline]
    fn src(&self) -> usize {
        (self.key as u32 & RANK_MASK) as usize
    }

    #[inline]
    fn dst(&self) -> usize {
        ((self.key as u32 >> RANK_BITS) & RANK_MASK) as usize
    }
}

/// A monotone (radix-heap) priority queue over packed `u128` events.
///
/// Discrete-event simulation never schedules into the past, so every
/// pushed key exceeds the last popped one — the property radix heaps
/// exploit. Keys are binned by the position of their highest bit
/// differing from the last popped key; a push is an XOR, a
/// leading-zeros count and a `Vec` push, and a pop drains the lowest
/// occupied bin (found through a 128-bit occupancy mask), re-binning its
/// entries relative to the new minimum. Each key only ever migrates to
/// strictly lower bins, so the amortized cost per event is a few moves —
/// far below the comparison-sift cost of a binary heap on this workload.
/// Pops still yield the exact global minimum in `(time, seq)` order, so
/// event ordering (and therefore the noise-draw order) is bit-identical
/// to an ordinary heap.
#[derive(Debug)]
struct EventQueue {
    /// `bins[i]` holds keys whose XOR with `last` has highest bit `i`.
    bins: Vec<Vec<u128>>,
    /// Bit `i` set ⇔ `bins[i]` is non-empty.
    occupied: u128,
    /// The minimum key, extracted from its bin and awaiting `pop`.
    front: Option<u128>,
    /// Last popped (or staged) key; all queued keys exceed it.
    last: u128,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            bins: vec![Vec::new(); 128],
            occupied: 0,
            front: None,
            last: 0,
            len: 0,
        }
    }
}

impl EventQueue {
    #[inline]
    fn push(&mut self, key: u128) {
        debug_assert!(key > self.last, "monotonicity violated");
        let bin = 127 - (key ^ self.last).leading_zeros() as usize;
        self.bins[bin].push(key);
        self.occupied |= 1 << bin;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<u128> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if let Some(v) = self.front.take() {
            return Some(v);
        }
        self.pull();
        self.front.take()
    }

    /// Extracts the minimum of the lowest occupied bin into `front` and
    /// re-bins that bin's remaining keys relative to it. Every re-binned
    /// key lands in a strictly lower bin (it shares the old highest
    /// differing bit with the minimum), which bounds the total moves.
    fn pull(&mut self) {
        let i = self.occupied.trailing_zeros() as usize;
        let mut bin = std::mem::take(&mut self.bins[i]);
        self.occupied &= !(1u128 << i);
        let (at, &min) = bin
            .iter()
            .enumerate()
            .min_by_key(|&(_, &k)| k)
            .expect("occupied bin is non-empty");
        bin.swap_remove(at);
        self.last = min;
        self.front = Some(min);
        for k in bin.drain(..) {
            let nb = 127 - (k ^ min).leading_zeros() as usize;
            self.bins[nb].push(k);
            self.occupied |= 1 << nb;
        }
        self.bins[i] = bin; // keep the drained bin's capacity
    }

    fn clear(&mut self) {
        let mut occ = self.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            self.bins[i].clear();
            occ &= occ - 1;
        }
        self.occupied = 0;
        self.front = None;
        self.last = 0;
        self.len = 0;
    }
}

/// Precomputed per-(src,dst) link charges: one cache line resolves what
/// previously took a `CoreId` comparison plus a `GroundTruth` match per
/// instruction.
#[derive(Clone, Copy, Debug)]
struct PairCost {
    inter_node: bool,
    /// `call_overhead + cpu_send` — the sender CPU injection occupancy.
    inject_ns: Time,
    cpu_recv_ns: Time,
    nic_tx_ns: Time,
    nic_rx_ns: Time,
    wire_ns: Time,
    ns_per_byte: f64,
}

/// Per-process interpreter state, reused across runs.
#[derive(Clone, Debug, Default)]
struct ProcState {
    pc: usize,
    /// Requests issued and not yet completed.
    outstanding: usize,
    /// Blocked in `WaitAll` (or at end of program awaiting completions).
    waiting: bool,
    done: bool,
    finish: Option<Time>,
    /// Recorded `Mark` timestamps as interned label ids; resolved to
    /// strings only when building the [`EngineResult`].
    marks: Vec<(LabelId, Time)>,
}

impl ProcState {
    fn reset(&mut self) {
        self.pc = 0;
        self.outstanding = 0;
        self.waiting = false;
        self.done = false;
        self.finish = None;
        self.marks.clear();
    }
}

/// Head-indexed FIFO queues for one `(dst, src)` pair: posted, unmatched
/// receives (post times) and arrived, unmatched messages (availability
/// times; the link class is implied by the pair). Pops advance a head
/// index instead of shifting, so entries stay in place and the backing
/// storage is reused run after run.
#[derive(Clone, Debug, Default)]
struct PairQueue {
    posted: Vec<Time>,
    posted_head: usize,
    ready: Vec<Time>,
    ready_head: usize,
    /// Set on first use in a run; indexes the engine's touched list.
    touched: bool,
}

impl PairQueue {
    #[inline]
    fn pop_posted(&mut self) -> Option<Time> {
        let v = self.posted.get(self.posted_head).copied()?;
        self.posted_head += 1;
        Some(v)
    }

    #[inline]
    fn pop_ready(&mut self) -> Option<Time> {
        let v = self.ready.get(self.ready_head).copied()?;
        self.ready_head += 1;
        Some(v)
    }

    fn clear(&mut self) {
        self.posted.clear();
        self.posted_head = 0;
        self.ready.clear();
        self.ready_head = 0;
        self.touched = false;
    }
}

/// Error returned when the simulation cannot complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimDeadlock {
    /// Processes that never finished, with their program counters and
    /// outstanding request counts.
    pub stuck: Vec<(usize, usize, usize)>,
}

impl std::fmt::Display for SimDeadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation deadlock; stuck (proc, pc, outstanding): {:?}",
            self.stuck
        )
    }
}

impl std::error::Error for SimDeadlock {}

/// Outcome of one engine run.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Per-process completion time of its entire program.
    pub finish: Vec<Time>,
    /// Per-process recorded `Mark` timestamps.
    pub marks: Vec<Vec<(String, Time)>>,
    /// Total events processed (a proxy for simulation effort).
    pub events: u64,
    /// Per-message event trace, if recording was enabled.
    pub trace: Option<Trace>,
}

/// The reusable event-driven interpreter: arenas sized once for a
/// placement, then [`run`](Engine::run) borrows program slices.
pub struct Engine {
    cores: Vec<CoreId>,
    gt: GroundTruth,
    procs: Vec<ProcState>,
    cpu: Vec<Resource>,
    nic_tx: Vec<Resource>,
    nic_rx: Vec<Resource>,
    queue: EventQueue,
    /// Flat `p × p` matching pools, indexed `dst * p + src`.
    pairs: Vec<PairQueue>,
    /// Flat `p × p` link charges, indexed `dst * p + src` (symmetric, so
    /// the same index convention as `pairs` serves both directions).
    costs: Vec<PairCost>,
    /// Node of each rank's core (for the shared NIC resources).
    node: Vec<u32>,
    /// Cached `GroundTruth::call_overhead_ns`.
    overhead_ns: Time,
    /// Pair indices dirtied during the current run (cleared on reset).
    touched: Vec<usize>,
    seq: u32,
    noise: NoiseState,
    events: u64,
    trace: Option<Trace>,
}

impl Engine {
    /// Builds an engine for processes pinned to `cores`, sizing every
    /// arena for `cores.len()` ranks. The engine holds no programs;
    /// [`run`](Self::run) borrows them per run.
    ///
    /// # Panics
    /// Panics if the rank count exceeds the packed-event rank field
    /// (32768 ranks — far beyond the paper's scale).
    pub fn new(cores: Vec<CoreId>, gt: GroundTruth) -> Self {
        let p = cores.len();
        assert!(
            p <= RANK_MASK as usize + 1,
            "engine supports at most {} ranks",
            RANK_MASK as usize + 1
        );
        let max_node = cores.iter().map(|c| c.node).max().unwrap_or(0);
        let mut costs = Vec::with_capacity(p * p);
        for dst in 0..p {
            for src in 0..p {
                let class = cores[dst].link_class(&cores[src]);
                let lc = gt.link(class);
                costs.push(PairCost {
                    inter_node: class == LinkClass::InterNode,
                    inject_ns: gt.call_overhead_ns + lc.cpu_send_ns,
                    cpu_recv_ns: lc.cpu_recv_ns,
                    nic_tx_ns: lc.nic_tx_ns,
                    nic_rx_ns: lc.nic_rx_ns,
                    wire_ns: lc.wire_ns,
                    ns_per_byte: lc.ns_per_byte,
                });
            }
        }
        Engine {
            procs: vec![ProcState::default(); p],
            cpu: vec![Resource::default(); p],
            nic_tx: vec![Resource::default(); max_node + 1],
            nic_rx: vec![Resource::default(); max_node + 1],
            queue: EventQueue::default(),
            pairs: vec![PairQueue::default(); p * p],
            costs,
            node: cores.iter().map(|c| c.node as u32).collect(),
            overhead_ns: gt.call_overhead_ns,
            touched: Vec::new(),
            seq: 0,
            noise: NoiseState::new(NoiseModel::none(), 0),
            events: 0,
            trace: None,
            cores,
            gt,
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.procs.len()
    }

    /// The physical placement of each rank.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// The ground truth this engine charges.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.gt
    }

    /// Enables per-message trace recording for the next run only (the
    /// run's result carries the trace out).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// Clears all per-run state — event queue, interpreter states,
    /// resource clocks, and every matching pool dirtied by the previous
    /// run (O(touched), not O(p²)) — and validates `programs` against the
    /// placement. Arenas retain their capacity, so a reset-and-run cycle
    /// allocates nothing once warm.
    ///
    /// # Panics
    /// Panics if the program count differs from the rank count, if any
    /// instruction references an out-of-range rank, or if a rank messages
    /// itself.
    pub fn reset(&mut self, programs: &[Program]) {
        let p = self.p();
        assert_eq!(programs.len(), p, "one program per rank required");
        for (r, prog) in programs.iter().enumerate() {
            for ins in &prog.instrs {
                match ins {
                    Instr::Issend { dst, .. } => {
                        assert!(*dst < p, "rank {r} sends to out-of-range {dst}");
                        assert_ne!(*dst, r, "rank {r} sends to itself");
                    }
                    Instr::Irecv { src } => {
                        assert!(*src < p, "rank {r} receives from out-of-range {src}");
                        assert_ne!(*src, r, "rank {r} receives from itself");
                    }
                    _ => {}
                }
            }
        }
        for pr in &mut self.procs {
            pr.reset();
        }
        for r in self
            .cpu
            .iter_mut()
            .chain(&mut self.nic_tx)
            .chain(&mut self.nic_rx)
        {
            r.free_at = 0;
        }
        self.queue.clear();
        for &idx in &self.touched {
            self.pairs[idx].clear();
        }
        self.touched.clear();
        self.seq = 0;
        self.events = 0;
        if let Some(t) = &mut self.trace {
            t.events.clear();
        }
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.events.push(event);
        }
    }

    #[inline]
    fn schedule(&mut self, time: Time, payload: u32) {
        self.seq = self.seq.checked_add(1).expect("event sequence overflow");
        self.queue
            .push((time as u128) << 64 | (self.seq as u128) << 32 | payload as u128);
    }

    /// The matching pool for messages `src → dst`, marked touched so the
    /// next [`reset`](Self::reset) clears it.
    #[inline]
    fn pair_mut(&mut self, dst: usize, src: usize) -> &mut PairQueue {
        let idx = dst * self.procs.len() + src;
        let q = &mut self.pairs[idx];
        if !q.touched {
            q.touched = true;
            self.touched.push(idx);
        }
        &mut self.pairs[idx]
    }

    /// Runs one program per rank to completion with the given per-run
    /// noise state, resetting all reused arenas first. Results are
    /// bit-identical to a freshly constructed engine fed the same
    /// programs and noise.
    pub fn run(
        &mut self,
        programs: &[Program],
        noise: NoiseState,
    ) -> Result<EngineResult, SimDeadlock> {
        self.execute(programs, noise)?;
        Ok(EngineResult {
            finish: self
                .procs
                .iter()
                .map(|pr| pr.finish.expect("done implies finish"))
                .collect(),
            marks: self
                .procs
                .iter()
                .enumerate()
                .map(|(r, pr)| {
                    pr.marks
                        .iter()
                        .map(|&(id, t)| (programs[r].label(id).to_string(), t))
                        .collect()
                })
                .collect(),
            events: self.events,
            trace: self.trace.take(),
        })
    }

    /// Rank `r`'s completion time after a successful [`execute`].
    ///
    /// [`execute`]: Self::execute
    pub(crate) fn finish_of(&self, r: usize) -> Time {
        self.procs[r].finish.expect("execute completed this rank")
    }

    /// Rank `r`'s first recorded `Mark` time after a successful
    /// [`execute`](Self::execute).
    pub(crate) fn first_mark_of(&self, r: usize) -> Time {
        self.procs[r].marks.first().expect("rank recorded a mark").1
    }

    /// The simulation loop without result assembly: benchmark drivers that
    /// only need one rank's finish time call this to keep the per-run path
    /// free of even the result-vector allocations.
    pub(crate) fn execute(
        &mut self,
        programs: &[Program],
        noise: NoiseState,
    ) -> Result<(), SimDeadlock> {
        self.reset(programs);
        self.noise = noise;
        let p = self.p();
        for r in 0..p {
            self.schedule(0, payload(TAG_RESUME, 0, r));
        }
        while let Some(v) = self.queue.pop() {
            let ev = Event {
                time: (v >> 64) as Time,
                key: v as u64,
            };
            self.events += 1;
            match ev.tag() {
                TAG_RESUME => self.run_program(programs, ev.src(), ev.time),
                TAG_ARRIVE => {
                    let (src, dst) = (ev.src(), ev.dst());
                    let c = self.costs[dst * p + src];
                    // NIC RX serialization for inter-node traffic.
                    let available = if c.inter_node {
                        let dur = self.noise.sample(c.nic_rx_ns);
                        self.nic_rx[self.node[dst] as usize].acquire(ev.time, dur)
                    } else {
                        ev.time
                    };
                    self.record(TraceEvent::Delivered {
                        time: available,
                        src,
                        dst,
                    });
                    if let Some(post_time) = self.pair_mut(dst, src).pop_posted() {
                        self.complete_match(src, dst, c, available.max(post_time));
                    } else {
                        self.pair_mut(dst, src).ready.push(available);
                    }
                }
                _ => {
                    let proc = ev.src();
                    let pr = &mut self.procs[proc];
                    debug_assert!(pr.outstanding > 0, "completion without outstanding request");
                    pr.outstanding -= 1;
                    if pr.waiting && pr.outstanding == 0 {
                        pr.waiting = false;
                        self.run_program(programs, proc, ev.time);
                    }
                }
            }
        }
        let stuck: Vec<(usize, usize, usize)> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, pr)| !pr.done)
            .map(|(r, pr)| (r, pr.pc, pr.outstanding))
            .collect();
        if !stuck.is_empty() {
            return Err(SimDeadlock { stuck });
        }
        Ok(())
    }

    /// Matches a message `src → dst`: charges the receiver CPU, completes
    /// the receive, and acknowledges the synchronous sender.
    #[inline]
    fn complete_match(&mut self, src: usize, dst: usize, c: PairCost, at: Time) {
        let dur = self.noise.sample(c.cpu_recv_ns);
        let done = self.cpu[dst].acquire(at, dur);
        self.schedule(done, payload(TAG_RECV_DONE, 0, dst));
        self.record(TraceEvent::RecvCompleted {
            time: done,
            src,
            dst,
        });
        // Acknowledgement back to the synchronous sender: one wire delay.
        let ack = self.noise.sample(c.wire_ns);
        self.schedule(done + ack, payload(TAG_SEND_DONE, 0, src));
        self.record(TraceEvent::SendCompleted {
            time: done + ack,
            src,
            dst,
        });
    }

    /// Interprets `proc`'s program starting at time `now` until it blocks
    /// or finishes. Instructions are read by value (`Instr: Copy`) — the
    /// loop performs no heap allocation.
    fn run_program(&mut self, programs: &[Program], proc: usize, now: Time) {
        let mut now = now;
        let instrs = &programs[proc].instrs;
        loop {
            let pr = &self.procs[proc];
            if pr.done {
                return;
            }
            if pr.pc >= instrs.len() {
                let pr = &mut self.procs[proc];
                if pr.outstanding == 0 {
                    pr.done = true;
                    pr.finish = Some(now);
                } else {
                    // Implicit trailing WaitAll: finish when requests drain.
                    pr.waiting = true;
                }
                return;
            }
            match instrs[pr.pc] {
                Instr::Delay { ns } => {
                    self.procs[proc].pc += 1;
                    self.schedule(now + ns, payload(TAG_RESUME, 0, proc));
                    return;
                }
                Instr::Mark { label } => {
                    self.procs[proc].marks.push((label, now));
                    self.procs[proc].pc += 1;
                }
                Instr::NoOpCall => {
                    let dur = self.noise.sample(self.overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                }
                Instr::WaitAll => {
                    if self.procs[proc].outstanding == 0 {
                        self.procs[proc].pc += 1;
                    } else {
                        self.procs[proc].waiting = true;
                        self.procs[proc].pc += 1; // resume past the wait
                        return;
                    }
                }
                Instr::Irecv { src } => {
                    let dur = self.noise.sample(self.overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    if let Some(available) = self.pair_mut(proc, src).pop_ready() {
                        let c = self.costs[proc * self.procs.len() + src];
                        self.complete_match(src, proc, c, available.max(now));
                    } else {
                        self.pair_mut(proc, src).posted.push(now);
                    }
                }
                Instr::Issend { dst, bytes } => {
                    let c = self.costs[dst * self.procs.len() + proc];
                    let inject = self.noise.sample(c.inject_ns);
                    now = self.cpu[proc].acquire(now, inject);
                    self.record(TraceEvent::SendInjected {
                        time: now,
                        src: proc,
                        dst,
                    });
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    let after_tx = if c.inter_node {
                        let dur = self.noise.sample(c.nic_tx_ns);
                        self.nic_tx[self.node[proc] as usize].acquire(now, dur)
                    } else {
                        now
                    };
                    let wire_ns = if bytes == 0 {
                        c.wire_ns // skip the f64 bandwidth term for signals
                    } else {
                        c.wire_ns + (bytes as f64 * c.ns_per_byte).round() as Time
                    };
                    let wire = self.noise.sample(wire_ns);
                    self.schedule(after_tx + wire, payload(TAG_ARRIVE, dst, proc));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::program::Program;
    use hbar_topo::machine::MachineSpec;

    fn engine_for(machine: &MachineSpec, flat_cores: &[usize]) -> Engine {
        let cores: Vec<CoreId> = flat_cores.iter().map(|&c| machine.core(c)).collect();
        Engine::new(cores, machine.ground_truth.clone())
    }

    fn exact() -> NoiseState {
        NoiseState::new(NoiseModel::none(), 0)
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let m = MachineSpec::new(1, 1, 2);
        let res = engine_for(&m, &[0, 1])
            .run(&[Program::new(), Program::new()], exact())
            .unwrap();
        assert_eq!(res.finish, vec![0, 0]);
    }

    #[test]
    fn single_signal_same_socket_cost_breakdown() {
        let m = MachineSpec::new(1, 1, 2);
        let gt = &m.ground_truth;
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        let c = gt.link(LinkClass::SameSocket);
        // Receiver done: inject + wire + cpu_recv (recv pre-posted at call_overhead).
        let inject = gt.call_overhead_ns + c.cpu_send_ns;
        let recv_done = inject + c.wire_ns + c.cpu_recv_ns;
        assert_eq!(res.finish[1], recv_done);
        // Sender done: + ack wire.
        assert_eq!(res.finish[0], recv_done + c.wire_ns);
    }

    #[test]
    fn inter_node_message_pays_nic_and_wire() {
        let m = MachineSpec::new(2, 1, 1);
        let gt = m.ground_truth.clone();
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        let c = gt.link(LinkClass::InterNode);
        let recv_done = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        assert_eq!(res.finish[1], recv_done);
        assert_eq!(res.finish[0], recv_done + c.wire_ns);
    }

    #[test]
    fn payload_adds_bandwidth_term() {
        let m = MachineSpec::new(2, 1, 1);
        let gt = m.ground_truth.clone();
        let bytes = 1 << 16;
        let p0 = Program::new().issend_bytes(1, bytes).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        let c = gt.link(LinkClass::InterNode);
        let extra = (bytes as f64 * c.ns_per_byte).round() as Time;
        let expect = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + extra
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        assert_eq!(res.finish[1], expect);
    }

    #[test]
    fn message_before_receive_is_queued() {
        // Receiver delays before posting: message waits, match at post time.
        let m = MachineSpec::new(1, 1, 2);
        let gt = m.ground_truth.clone();
        let c = *gt.link(LinkClass::SameSocket);
        let delay = 1_000_000;
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().delay(delay).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        let post = delay + gt.call_overhead_ns;
        assert_eq!(res.finish[1], post + c.cpu_recv_ns);
        assert_eq!(res.finish[0], post + c.cpu_recv_ns + c.wire_ns);
    }

    #[test]
    fn sync_send_blocks_until_receiver_participates() {
        // The Issend property §III relies on: sender completion implies
        // receiver involvement, so a late receiver delays the sender.
        let m = MachineSpec::new(2, 1, 1);
        let delay = 5_000_000;
        let p0 = Program::new().issend(1).wait_all().mark("sent");
        let p1 = Program::new().delay(delay).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        assert!(res.finish[0] > delay);
    }

    #[test]
    fn consecutive_sends_serialize_on_sender_cpu() {
        let m = MachineSpec::new(1, 2, 2);
        let gt = m.ground_truth.clone();
        // Rank 0 sends to 1 (same socket) and 2 (cross socket).
        let p0 = Program::new().issend(1).issend(2).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let p2 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1, 2])
            .run(&[p0, p1, p2], exact())
            .unwrap();
        let same = *gt.link(LinkClass::SameSocket);
        let cross = *gt.link(LinkClass::CrossSocket);
        let inj1 = gt.call_overhead_ns + same.cpu_send_ns;
        let inj2 = gt.call_overhead_ns + cross.cpu_send_ns;
        // Second injection starts only after the first finishes.
        let second_arrival = inj1 + inj2 + cross.wire_ns;
        assert_eq!(res.finish[2], second_arrival + cross.cpu_recv_ns);
    }

    #[test]
    fn nic_serializes_concurrent_inter_node_senders() {
        // Two ranks on node 0 send to two ranks on node 1 simultaneously:
        // the shared NIC TX forces one message behind the other.
        let m = MachineSpec::new(2, 1, 2);
        let gt = m.ground_truth.clone();
        let c = *gt.link(LinkClass::InterNode);
        let progs = vec![
            Program::new().issend(2).wait_all(),
            Program::new().issend(3).wait_all(),
            Program::new().irecv(0).wait_all(),
            Program::new().irecv(1).wait_all(),
        ];
        let res = engine_for(&m, &[0, 1, 2, 3]).run(&progs, exact()).unwrap();
        let first = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        let finishes = [res.finish[2], res.finish[3]];
        let early = *finishes.iter().min().unwrap();
        let late = *finishes.iter().max().unwrap();
        assert_eq!(early, first);
        // The later message queued one NIC TX slot (RX slot overlaps it).
        assert_eq!(late, first + c.nic_tx_ns);
    }

    #[test]
    fn fifo_matching_per_pair() {
        // Two sends 0→1 match two receives in order; the pair completes.
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().issend(1).issend(1).wait_all();
        let p1 = Program::new().irecv(0).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1]).run(&[p0, p1], exact()).unwrap();
        assert!(res.finish[0] > 0 && res.finish[1] > 0);
    }

    #[test]
    fn deadlock_is_reported() {
        let m = MachineSpec::new(1, 1, 2);
        // Receive that never gets a message.
        let p0 = Program::new().irecv(1).wait_all();
        let err = engine_for(&m, &[0, 1])
            .run(&[p0, Program::new()], exact())
            .unwrap_err();
        assert_eq!(err.stuck.len(), 1);
        assert_eq!(err.stuck[0].0, 0);
        assert_eq!(err.stuck[0].2, 1, "one outstanding request");
    }

    #[test]
    fn marks_record_virtual_times() {
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().mark("start").delay(500).mark("end");
        let res = engine_for(&m, &[0, 1])
            .run(&[p0, Program::new()], exact())
            .unwrap();
        assert_eq!(res.marks[0][0], ("start".into(), 0));
        assert_eq!(res.marks[0][1], ("end".into(), 500));
    }

    #[test]
    #[should_panic(expected = "sends to itself")]
    fn self_send_rejected() {
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().issend(0);
        let _ = engine_for(&m, &[0, 1]).run(&[p0, Program::new()], exact());
    }

    #[test]
    fn determinism_across_runs() {
        let m = MachineSpec::new(2, 1, 2);
        let progs = vec![
            Program::new().issend(2).irecv(3).wait_all(),
            Program::new().issend(3).irecv(2).wait_all(),
            Program::new()
                .issend(3)
                .irecv(0)
                .wait_all()
                .issend(1)
                .wait_all(),
            Program::new()
                .irecv(1)
                .irecv(2)
                .wait_all()
                .issend(0)
                .wait_all(),
        ];
        let r1 = engine_for(&m, &[0, 1, 2, 3]).run(&progs, exact()).unwrap();
        let r2 = engine_for(&m, &[0, 1, 2, 3]).run(&progs, exact()).unwrap();
        assert_eq!(r1.finish, r2.finish);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn reused_engine_matches_fresh_engine() {
        // The reuse contract: reset + run on one engine is bit-identical
        // to constructing a fresh engine per run, including under noise
        // and after a deadlocked run left state behind.
        let m = MachineSpec::new(2, 1, 2);
        let progs = vec![
            Program::new().issend(2).wait_all().irecv(2).wait_all(),
            Program::new().issend(3).wait_all(),
            Program::new()
                .irecv(0)
                .wait_all()
                .issend(0)
                .wait_all()
                .mark("ack"),
            Program::new().irecv(1).wait_all(),
        ];
        let noise = NoiseModel::realistic(41);
        let mut reused = engine_for(&m, &[0, 1, 2, 3]);
        // Poison the reused engine with a deadlocked run first.
        let deadlocked: Vec<Program> = vec![
            Program::new().irecv(1).wait_all(),
            Program::new(),
            Program::new(),
            Program::new(),
        ];
        assert!(reused.run(&deadlocked, NoiseState::new(noise, 0)).is_err());
        for salt in 0..4 {
            let a = reused.run(&progs, NoiseState::new(noise, salt)).unwrap();
            let mut fresh = engine_for(&m, &[0, 1, 2, 3]);
            let b = fresh.run(&progs, NoiseState::new(noise, salt)).unwrap();
            assert_eq!(a.finish, b.finish, "salt {salt}");
            assert_eq!(a.events, b.events, "salt {salt}");
            assert_eq!(a.marks, b.marks, "salt {salt}");
        }
    }

    #[test]
    fn trace_is_per_run_and_cleared_on_reuse() {
        let m = MachineSpec::new(1, 1, 2);
        let progs = vec![
            Program::new().issend(1).wait_all(),
            Program::new().irecv(0).wait_all(),
        ];
        let mut eng = engine_for(&m, &[0, 1]);
        eng.enable_trace();
        let traced = eng.run(&progs, exact()).unwrap();
        let trace = traced.trace.expect("trace enabled");
        assert_eq!(trace.injected_messages(), 1);
        // The next run is untraced and otherwise identical.
        let untraced = eng.run(&progs, exact()).unwrap();
        assert!(untraced.trace.is_none());
        assert_eq!(untraced.finish, traced.finish);
    }
}
