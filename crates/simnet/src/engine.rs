//! The discrete-event engine.
//!
//! ## Microscopic model
//!
//! A message from rank `i` to rank `j` of link class `c` passes through
//! serial resources in order, each charging a (possibly noise-perturbed)
//! occupancy from the machine's [`GroundTruth`]:
//!
//! 1. **Sender CPU** — `call_overhead + cpu_send(c)`; consecutive calls by
//!    the same process serialize here.
//! 2. **Node NIC TX** (inter-node only) — `nic_tx`; all traffic leaving a
//!    node serializes here, which is what makes many ranks per node
//!    sharing one gigabit NIC expensive (and what the measured `L`
//!    captures for inter-node pairs).
//! 3. **Wire** — `wire + bytes · ns_per_byte`, unlimited parallelism.
//! 4. **Node NIC RX** (inter-node only) — `nic_rx`.
//! 5. **Receiver CPU** — `cpu_recv(c)`, charged when the message matches a
//!    posted receive (at the later of availability and posting).
//!
//! A synchronous send's request completes at the *sender* when the
//! receiver has processed the message, plus one wire delay for the
//! acknowledgement — the `MPI_Issend` property the paper's benchmarks
//! lean on ("making local completion an indication that both processes
//! have been involved").
//!
//! Receives match per `(src, dst)` pair in FIFO order. Posting any call
//! costs `call_overhead` on the caller's CPU. `Delay` models computation
//! without occupying the CPU resource (message progress continues, as
//! with an MPI progress thread).

use crate::noise::NoiseState;
use crate::program::{Instr, Program};
use crate::trace::{Trace, TraceEvent};
use crate::Time;
use hbar_topo::machine::{CoreId, GroundTruth, LinkClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A serial resource reserved in event-time order.
#[derive(Clone, Copy, Debug, Default)]
struct Resource {
    free_at: Time,
}

impl Resource {
    /// Reserves the resource for `dur` starting no earlier than `at`;
    /// returns the completion time.
    fn acquire(&mut self, at: Time, dur: Time) -> Time {
        let start = self.free_at.max(at);
        self.free_at = start + dur;
        self.free_at
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum EventKind {
    /// Resume a process's program interpretation.
    Resume { proc: usize },
    /// A message has finished its wire (and pre-RX) journey.
    Arrive {
        dst: usize,
        src: usize,
        class: LinkClass,
    },
    /// A receive request completed at `proc`.
    RecvComplete { proc: usize },
    /// A synchronous send request completed at `proc`.
    SendComplete { proc: usize },
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Proc {
    program: Vec<Instr>,
    pc: usize,
    /// Requests issued and not yet completed.
    outstanding: usize,
    /// Blocked in `WaitAll` (or at end of program awaiting completions).
    waiting: bool,
    done: bool,
    /// Posted, unmatched receives: per source, post times (FIFO).
    posted: Vec<VecDeque<Time>>,
    /// Arrived, unmatched messages: per source, availability times (FIFO).
    ready: Vec<VecDeque<(Time, LinkClass)>>,
    finish: Option<Time>,
    marks: Vec<(String, Time)>,
}

/// Error returned when the simulation cannot complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimDeadlock {
    /// Processes that never finished, with their program counters and
    /// outstanding request counts.
    pub stuck: Vec<(usize, usize, usize)>,
}

impl std::fmt::Display for SimDeadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation deadlock; stuck (proc, pc, outstanding): {:?}",
            self.stuck
        )
    }
}

impl std::error::Error for SimDeadlock {}

/// Outcome of one engine run.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Per-process completion time of its entire program.
    pub finish: Vec<Time>,
    /// Per-process recorded `Mark` timestamps.
    pub marks: Vec<Vec<(String, Time)>>,
    /// Total events processed (a proxy for simulation effort).
    pub events: u64,
    /// Per-message event trace, if recording was enabled.
    pub trace: Option<Trace>,
}

/// The event-driven interpreter for one run.
pub struct Engine {
    procs: Vec<Proc>,
    cores: Vec<CoreId>,
    gt: GroundTruth,
    cpu: Vec<Resource>,
    nic_tx: Vec<Resource>,
    nic_rx: Vec<Resource>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    noise: NoiseState,
    events: u64,
    trace: Option<Trace>,
}

impl Engine {
    /// Builds an engine for `programs[r]` running on `cores[r]`.
    ///
    /// # Panics
    /// Panics if program and core counts differ, if any instruction
    /// references an out-of-range rank, or if a rank messages itself.
    pub fn new(
        programs: Vec<Program>,
        cores: Vec<CoreId>,
        gt: GroundTruth,
        noise: NoiseState,
    ) -> Self {
        assert_eq!(programs.len(), cores.len(), "one core per program required");
        let p = programs.len();
        for (r, prog) in programs.iter().enumerate() {
            for ins in &prog.instrs {
                match ins {
                    Instr::Issend { dst, .. } => {
                        assert!(*dst < p, "rank {r} sends to out-of-range {dst}");
                        assert_ne!(*dst, r, "rank {r} sends to itself");
                    }
                    Instr::Irecv { src } => {
                        assert!(*src < p, "rank {r} receives from out-of-range {src}");
                        assert_ne!(*src, r, "rank {r} receives from itself");
                    }
                    _ => {}
                }
            }
        }
        let max_node = cores.iter().map(|c| c.node).max().unwrap_or(0);
        let procs = programs
            .into_iter()
            .map(|prog| Proc {
                program: prog.instrs,
                pc: 0,
                outstanding: 0,
                waiting: false,
                done: false,
                posted: vec![VecDeque::new(); p],
                ready: vec![VecDeque::new(); p],
                finish: None,
                marks: Vec::new(),
            })
            .collect();
        Engine {
            procs,
            cores,
            gt,
            cpu: vec![Resource::default(); p],
            nic_tx: vec![Resource::default(); max_node + 1],
            nic_rx: vec![Resource::default(); max_node + 1],
            queue: BinaryHeap::new(),
            seq: 0,
            noise,
            events: 0,
            trace: None,
        }
    }

    /// Enables per-message trace recording for this run.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.events.push(event);
        }
    }

    fn schedule(&mut self, time: Time, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn link_class(&self, a: usize, b: usize) -> LinkClass {
        self.cores[a].link_class(&self.cores[b])
    }

    /// Runs all programs to completion.
    pub fn run(mut self) -> Result<EngineResult, SimDeadlock> {
        let p = self.procs.len();
        for r in 0..p {
            self.schedule(0, EventKind::Resume { proc: r });
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.events += 1;
            match ev.kind {
                EventKind::Resume { proc } => self.run_program(proc, ev.time),
                EventKind::Arrive { dst, src, class } => {
                    // NIC RX serialization for inter-node traffic.
                    let available = if class == LinkClass::InterNode {
                        let dur = self.noise.sample(self.gt.link(class).nic_rx_ns);
                        self.nic_rx[self.cores[dst].node].acquire(ev.time, dur)
                    } else {
                        ev.time
                    };
                    self.record(TraceEvent::Delivered {
                        time: available,
                        src,
                        dst,
                    });
                    if let Some(post_time) = self.procs[dst].posted[src].pop_front() {
                        self.complete_match(src, dst, class, available.max(post_time));
                    } else {
                        self.procs[dst].ready[src].push_back((available, class));
                    }
                }
                EventKind::RecvComplete { proc } | EventKind::SendComplete { proc } => {
                    let pr = &mut self.procs[proc];
                    debug_assert!(pr.outstanding > 0, "completion without outstanding request");
                    pr.outstanding -= 1;
                    if pr.waiting && pr.outstanding == 0 {
                        pr.waiting = false;
                        self.run_program(proc, ev.time);
                    }
                }
            }
        }
        let stuck: Vec<(usize, usize, usize)> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, pr)| !pr.done)
            .map(|(r, pr)| (r, pr.pc, pr.outstanding))
            .collect();
        if !stuck.is_empty() {
            return Err(SimDeadlock { stuck });
        }
        Ok(EngineResult {
            finish: self
                .procs
                .iter()
                .map(|pr| pr.finish.expect("done implies finish"))
                .collect(),
            marks: self
                .procs
                .iter_mut()
                .map(|pr| std::mem::take(&mut pr.marks))
                .collect(),
            events: self.events,
            trace: self.trace.take(),
        })
    }

    /// Matches a message `src → dst`: charges the receiver CPU, completes
    /// the receive, and acknowledges the synchronous sender.
    fn complete_match(&mut self, src: usize, dst: usize, class: LinkClass, at: Time) {
        let dur = self.noise.sample(self.gt.link(class).cpu_recv_ns);
        let done = self.cpu[dst].acquire(at, dur);
        self.schedule(done, EventKind::RecvComplete { proc: dst });
        self.record(TraceEvent::RecvCompleted {
            time: done,
            src,
            dst,
        });
        // Acknowledgement back to the synchronous sender: one wire delay.
        let ack = self.noise.sample(self.gt.link(class).wire_ns);
        self.schedule(done + ack, EventKind::SendComplete { proc: src });
        self.record(TraceEvent::SendCompleted {
            time: done + ack,
            src,
            dst,
        });
    }

    /// Interprets `proc`'s program starting at time `now` until it blocks
    /// or finishes.
    fn run_program(&mut self, proc: usize, now: Time) {
        let mut now = now;
        loop {
            let pr = &self.procs[proc];
            if pr.done {
                return;
            }
            if pr.pc >= pr.program.len() {
                let pr = &mut self.procs[proc];
                if pr.outstanding == 0 {
                    pr.done = true;
                    pr.finish = Some(now);
                } else {
                    // Implicit trailing WaitAll: finish when requests drain.
                    pr.waiting = true;
                }
                return;
            }
            let instr = pr.program[pr.pc].clone();
            match instr {
                Instr::Delay { ns } => {
                    self.procs[proc].pc += 1;
                    self.schedule(now + ns, EventKind::Resume { proc });
                    return;
                }
                Instr::Mark { label } => {
                    self.procs[proc].marks.push((label, now));
                    self.procs[proc].pc += 1;
                }
                Instr::NoOpCall => {
                    let dur = self.noise.sample(self.gt.call_overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                }
                Instr::WaitAll => {
                    if self.procs[proc].outstanding == 0 {
                        self.procs[proc].pc += 1;
                    } else {
                        self.procs[proc].waiting = true;
                        self.procs[proc].pc += 1; // resume past the wait
                        return;
                    }
                }
                Instr::Irecv { src } => {
                    let dur = self.noise.sample(self.gt.call_overhead_ns);
                    now = self.cpu[proc].acquire(now, dur);
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    if let Some((available, class)) = self.procs[proc].ready[src].pop_front() {
                        self.complete_match(src, proc, class, available.max(now));
                    } else {
                        self.procs[proc].posted[src].push_back(now);
                    }
                }
                Instr::Issend { dst, bytes } => {
                    let class = self.link_class(proc, dst);
                    let lc = *self.gt.link(class);
                    let inject = self.noise.sample(self.gt.call_overhead_ns + lc.cpu_send_ns);
                    now = self.cpu[proc].acquire(now, inject);
                    self.record(TraceEvent::SendInjected {
                        time: now,
                        src: proc,
                        dst,
                    });
                    self.procs[proc].pc += 1;
                    self.procs[proc].outstanding += 1;
                    let after_tx = if class == LinkClass::InterNode {
                        let dur = self.noise.sample(lc.nic_tx_ns);
                        self.nic_tx[self.cores[proc].node].acquire(now, dur)
                    } else {
                        now
                    };
                    let wire = self
                        .noise
                        .sample(lc.wire_ns + (bytes as f64 * lc.ns_per_byte).round() as Time);
                    self.schedule(
                        after_tx + wire,
                        EventKind::Arrive {
                            dst,
                            src: proc,
                            class,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::program::Program;
    use hbar_topo::machine::MachineSpec;

    fn engine_for(machine: &MachineSpec, flat_cores: &[usize], programs: Vec<Program>) -> Engine {
        let cores: Vec<CoreId> = flat_cores.iter().map(|&c| machine.core(c)).collect();
        Engine::new(
            programs,
            cores,
            machine.ground_truth.clone(),
            NoiseState::new(NoiseModel::none(), 0),
        )
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let m = MachineSpec::new(1, 1, 2);
        let res = engine_for(&m, &[0, 1], vec![Program::new(), Program::new()])
            .run()
            .unwrap();
        assert_eq!(res.finish, vec![0, 0]);
    }

    #[test]
    fn single_signal_same_socket_cost_breakdown() {
        let m = MachineSpec::new(1, 1, 2);
        let gt = &m.ground_truth;
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        let c = gt.link(LinkClass::SameSocket);
        // Receiver done: inject + wire + cpu_recv (recv pre-posted at call_overhead).
        let inject = gt.call_overhead_ns + c.cpu_send_ns;
        let recv_done = inject + c.wire_ns + c.cpu_recv_ns;
        assert_eq!(res.finish[1], recv_done);
        // Sender done: + ack wire.
        assert_eq!(res.finish[0], recv_done + c.wire_ns);
    }

    #[test]
    fn inter_node_message_pays_nic_and_wire() {
        let m = MachineSpec::new(2, 1, 1);
        let gt = m.ground_truth.clone();
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        let c = gt.link(LinkClass::InterNode);
        let recv_done = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        assert_eq!(res.finish[1], recv_done);
        assert_eq!(res.finish[0], recv_done + c.wire_ns);
    }

    #[test]
    fn payload_adds_bandwidth_term() {
        let m = MachineSpec::new(2, 1, 1);
        let gt = m.ground_truth.clone();
        let bytes = 1 << 16;
        let p0 = Program::new().issend_bytes(1, bytes).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        let c = gt.link(LinkClass::InterNode);
        let extra = (bytes as f64 * c.ns_per_byte).round() as Time;
        let expect = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + extra
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        assert_eq!(res.finish[1], expect);
    }

    #[test]
    fn message_before_receive_is_queued() {
        // Receiver delays before posting: message waits, match at post time.
        let m = MachineSpec::new(1, 1, 2);
        let gt = m.ground_truth.clone();
        let c = *gt.link(LinkClass::SameSocket);
        let delay = 1_000_000;
        let p0 = Program::new().issend(1).wait_all();
        let p1 = Program::new().delay(delay).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        let post = delay + gt.call_overhead_ns;
        assert_eq!(res.finish[1], post + c.cpu_recv_ns);
        assert_eq!(res.finish[0], post + c.cpu_recv_ns + c.wire_ns);
    }

    #[test]
    fn sync_send_blocks_until_receiver_participates() {
        // The Issend property §III relies on: sender completion implies
        // receiver involvement, so a late receiver delays the sender.
        let m = MachineSpec::new(2, 1, 1);
        let delay = 5_000_000;
        let p0 = Program::new().issend(1).wait_all().mark("sent");
        let p1 = Program::new().delay(delay).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        assert!(res.finish[0] > delay);
    }

    #[test]
    fn consecutive_sends_serialize_on_sender_cpu() {
        let m = MachineSpec::new(1, 2, 2);
        let gt = m.ground_truth.clone();
        // Rank 0 sends to 1 (same socket) and 2 (cross socket).
        let p0 = Program::new().issend(1).issend(2).wait_all();
        let p1 = Program::new().irecv(0).wait_all();
        let p2 = Program::new().irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1, 2], vec![p0, p1, p2]).run().unwrap();
        let same = *gt.link(LinkClass::SameSocket);
        let cross = *gt.link(LinkClass::CrossSocket);
        let inj1 = gt.call_overhead_ns + same.cpu_send_ns;
        let inj2 = gt.call_overhead_ns + cross.cpu_send_ns;
        // Second injection starts only after the first finishes.
        let second_arrival = inj1 + inj2 + cross.wire_ns;
        assert_eq!(res.finish[2], second_arrival + cross.cpu_recv_ns);
    }

    #[test]
    fn nic_serializes_concurrent_inter_node_senders() {
        // Two ranks on node 0 send to two ranks on node 1 simultaneously:
        // the shared NIC TX forces one message behind the other.
        let m = MachineSpec::new(2, 1, 2);
        let gt = m.ground_truth.clone();
        let c = *gt.link(LinkClass::InterNode);
        let progs = vec![
            Program::new().issend(2).wait_all(),
            Program::new().issend(3).wait_all(),
            Program::new().irecv(0).wait_all(),
            Program::new().irecv(1).wait_all(),
        ];
        let res = engine_for(&m, &[0, 1, 2, 3], progs).run().unwrap();
        let first = gt.call_overhead_ns
            + c.cpu_send_ns
            + c.nic_tx_ns
            + c.wire_ns
            + c.nic_rx_ns
            + c.cpu_recv_ns;
        let finishes = [res.finish[2], res.finish[3]];
        let early = *finishes.iter().min().unwrap();
        let late = *finishes.iter().max().unwrap();
        assert_eq!(early, first);
        // The later message queued one NIC TX slot (RX slot overlaps it).
        assert_eq!(late, first + c.nic_tx_ns);
    }

    #[test]
    fn fifo_matching_per_pair() {
        // Two sends 0→1 match two receives in order; the pair completes.
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().issend(1).issend(1).wait_all();
        let p1 = Program::new().irecv(0).irecv(0).wait_all();
        let res = engine_for(&m, &[0, 1], vec![p0, p1]).run().unwrap();
        assert!(res.finish[0] > 0 && res.finish[1] > 0);
    }

    #[test]
    fn deadlock_is_reported() {
        let m = MachineSpec::new(1, 1, 2);
        // Receive that never gets a message.
        let p0 = Program::new().irecv(1).wait_all();
        let err = engine_for(&m, &[0, 1], vec![p0, Program::new()])
            .run()
            .unwrap_err();
        assert_eq!(err.stuck.len(), 1);
        assert_eq!(err.stuck[0].0, 0);
        assert_eq!(err.stuck[0].2, 1, "one outstanding request");
    }

    #[test]
    fn marks_record_virtual_times() {
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().mark("start").delay(500).mark("end");
        let res = engine_for(&m, &[0, 1], vec![p0, Program::new()])
            .run()
            .unwrap();
        assert_eq!(res.marks[0][0], ("start".into(), 0));
        assert_eq!(res.marks[0][1], ("end".into(), 500));
    }

    #[test]
    #[should_panic(expected = "sends to itself")]
    fn self_send_rejected() {
        let m = MachineSpec::new(1, 1, 2);
        let p0 = Program::new().issend(0);
        engine_for(&m, &[0, 1], vec![p0, Program::new()]);
    }

    #[test]
    fn determinism_across_runs() {
        let m = MachineSpec::new(2, 1, 2);
        let mk = || {
            vec![
                Program::new().issend(2).irecv(3).wait_all(),
                Program::new().issend(3).irecv(2).wait_all(),
                Program::new()
                    .issend(3)
                    .irecv(0)
                    .wait_all()
                    .issend(1)
                    .wait_all(),
                Program::new()
                    .irecv(1)
                    .irecv(2)
                    .wait_all()
                    .issend(0)
                    .wait_all(),
            ]
        };
        let r1 = engine_for(&m, &[0, 1, 2, 3], mk()).run().unwrap();
        let r2 = engine_for(&m, &[0, 1, 2, 3], mk()).run().unwrap();
        assert_eq!(r1.finish, r2.finish);
        assert_eq!(r1.events, r2.events);
    }
}
