//! Framed wire protocol of the distributed profiling sweep.
//!
//! The driver ↔ worker conversation is a length-prefixed frame stream
//! over TCP (std-only; no async runtime, no external codec crates):
//!
//! ```text
//! [ tag: u8 ][ len: u32 LE ][ payload: len bytes ]
//! ```
//!
//! * [`FRAME_JOB`] — JSON-encoded [`JobHeader`] (machine, noise model,
//!   benchmark schedule). Sent once per connection, before any work. JSON
//!   because it is small, sent once, and debuggable with `nc`.
//! * [`FRAME_BATCH`] — a compact fixed-width binary batch of
//!   [`PairWorkDescriptor`]s (33 bytes each vs ~120 as JSON; at `P = 4096`
//!   singleton regimes ship millions of descriptors, so compactness is
//!   load-bearing, not cosmetic).
//! * [`FRAME_RESULT`] — binary batch of [`PairSample`]s (20 bytes each).
//! * [`FRAME_SHUTDOWN`] — empty payload; tells a worker process to exit
//!   its accept loop entirely (a plain disconnect only ends the current
//!   connection).
//!
//! Every decoder is total: corrupt tags, truncated payloads, and
//! oversized lengths return `InvalidData` errors instead of panicking, so
//! a confused peer can never take the driver down.

use crate::noise::NoiseModel;
use crate::profiling::ProfilingConfig;
use crate::sweep::{PairSample, PairWorkDescriptor, WorkKind};
use hbar_topo::machine::MachineSpec;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Frame tag: JSON job header.
pub const FRAME_JOB: u8 = 0x01;
/// Frame tag: binary descriptor batch.
pub const FRAME_BATCH: u8 = 0x02;
/// Frame tag: binary result batch.
pub const FRAME_RESULT: u8 = 0x03;
/// Frame tag: worker shutdown request (empty payload).
pub const FRAME_SHUTDOWN: u8 = 0x04;
/// Frame tag: graceful end-of-session (empty payload). A peer that is
/// done sending work emits this instead of dropping the socket; the
/// serving side finishes everything in flight, answers with its own
/// [`FRAME_DRAIN`], flushes, and only then closes the connection. Both
/// `hbar profile-worker` and `hbar serve` speak it, so a driver/client
/// can distinguish "clean end" from "peer crashed mid-conversation".
pub const FRAME_DRAIN: u8 = 0x05;

/// Upper bound on accepted payload length (guards against garbage length
/// prefixes allocating unbounded memory).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Bytes of one encoded descriptor.
pub const DESCRIPTOR_WIRE_LEN: usize = 33;
/// Bytes of one encoded sample.
pub const SAMPLE_WIRE_LEN: usize = 20;

/// Everything a worker needs to reproduce the driver's measurements:
/// sent once per connection, ahead of any descriptor batch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobHeader {
    /// The simulated machine measurements run on.
    pub machine: MachineSpec,
    /// The base noise model (descriptors carry pre-mixed sub-seeds; the
    /// model supplies the distribution parameters).
    pub noise: NoiseModel,
    /// The base benchmark schedule (descriptors scale it via
    /// `rep_scale`).
    pub profiling: ProfilingConfig,
}

/// Writes one `[tag][len][payload]` frame and flushes the writer.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    write_frame_buffered(w, tag, payload)?;
    w.flush()
}

/// [`write_frame`] without the trailing flush: for buffered writers
/// that batch many frames into one syscall. The caller owns the flush
/// policy (the serve hot path flushes once per drained request batch,
/// not once per response).
pub fn write_frame_buffered(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds cap", payload.len()),
        ));
    }
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, returning `(tag, payload)`.
///
/// Allocates a fresh payload vector per call; connection loops that
/// read many frames should use [`read_frame_into`] with one reusable
/// buffer instead.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut payload = Vec::new();
    let tag = read_frame_into(r, &mut payload)?;
    Ok((tag, payload))
}

/// Reads one frame into a caller-owned buffer (cleared and refilled),
/// returning the tag. The per-connection loops in `distrib` and
/// `hbar serve` call this with one long-lived buffer, so steady-state
/// frame reads perform zero heap allocation once the buffer has grown
/// to the session's largest frame.
pub fn read_frame_into(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<u8> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let tag = head[0];
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    payload.clear();
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(tag)
}

/// Encodes the job header as a JSON frame payload.
pub fn encode_job(job: &JobHeader) -> io::Result<Vec<u8>> {
    serde_json::to_string(job)
        .map(String::into_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("job encode: {e}")))
}

/// Decodes a JSON job-header payload.
pub fn decode_job(payload: &[u8]) -> io::Result<JobHeader> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("job utf-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("job decode: {e}")))
}

/// Encodes a descriptor batch into the compact fixed-width layout:
/// `id:u32 | kind:u8 | i:u32 | j:u32 | core_a:u32 | core_b:u32 |
/// sub_seed:u64 | rep_scale:u32`, all little-endian.
pub fn encode_batch(descriptors: &[PairWorkDescriptor]) -> Vec<u8> {
    let mut out = Vec::with_capacity(descriptors.len() * DESCRIPTOR_WIRE_LEN);
    encode_batch_into(descriptors, &mut out);
    out
}

/// [`encode_batch`] into a caller-owned buffer (cleared first), so a
/// feeder loop reuses one encode buffer across every batch it ships.
pub fn encode_batch_into(descriptors: &[PairWorkDescriptor], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(descriptors.len() * DESCRIPTOR_WIRE_LEN);
    for d in descriptors {
        out.extend_from_slice(&d.id.to_le_bytes());
        out.push(match d.kind {
            WorkKind::Pair => 0,
            WorkKind::Diag => 1,
        });
        out.extend_from_slice(&d.i.to_le_bytes());
        out.extend_from_slice(&d.j.to_le_bytes());
        out.extend_from_slice(&d.core_a.to_le_bytes());
        out.extend_from_slice(&d.core_b.to_le_bytes());
        out.extend_from_slice(&d.sub_seed.to_le_bytes());
        out.extend_from_slice(&d.rep_scale.to_le_bytes());
    }
}

/// Decodes a descriptor batch.
pub fn decode_batch(payload: &[u8]) -> io::Result<Vec<PairWorkDescriptor>> {
    if !payload.len().is_multiple_of(DESCRIPTOR_WIRE_LEN) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "batch payload of {} bytes is not a multiple of {DESCRIPTOR_WIRE_LEN}",
                payload.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(payload.len() / DESCRIPTOR_WIRE_LEN);
    for rec in payload.chunks_exact(DESCRIPTOR_WIRE_LEN) {
        let u32_at = |o: usize| u32::from_le_bytes(rec[o..o + 4].try_into().expect("4 bytes"));
        let kind = match rec[4] {
            0 => WorkKind::Pair,
            1 => WorkKind::Diag,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown work kind {other}"),
                ))
            }
        };
        out.push(PairWorkDescriptor {
            id: u32_at(0),
            kind,
            i: u32_at(5),
            j: u32_at(9),
            core_a: u32_at(13),
            core_b: u32_at(17),
            sub_seed: u64::from_le_bytes(rec[21..29].try_into().expect("8 bytes")),
            rep_scale: u32_at(29),
        });
    }
    Ok(out)
}

/// Encodes a result batch: `id:u32 | o:f64 | l:f64`, little-endian.
pub fn encode_results(samples: &[PairSample]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * SAMPLE_WIRE_LEN);
    encode_results_into(samples, &mut out);
    out
}

/// [`encode_results`] into a caller-owned buffer (cleared first); the
/// worker loop reuses one encode buffer across every answered batch.
pub fn encode_results_into(samples: &[PairSample], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(samples.len() * SAMPLE_WIRE_LEN);
    for s in samples {
        out.extend_from_slice(&s.id.to_le_bytes());
        out.extend_from_slice(&s.o.to_le_bytes());
        out.extend_from_slice(&s.l.to_le_bytes());
    }
}

/// Decodes a result batch.
pub fn decode_results(payload: &[u8]) -> io::Result<Vec<PairSample>> {
    if !payload.len().is_multiple_of(SAMPLE_WIRE_LEN) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "result payload of {} bytes is not a multiple of {SAMPLE_WIRE_LEN}",
                payload.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(payload.len() / SAMPLE_WIRE_LEN);
    for rec in payload.chunks_exact(SAMPLE_WIRE_LEN) {
        out.push(PairSample {
            id: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
            o: f64::from_le_bytes(rec[4..12].try_into().expect("8 bytes")),
            l: f64::from_le_bytes(rec[12..20].try_into().expect("8 bytes")),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_descriptors() -> Vec<PairWorkDescriptor> {
        vec![
            PairWorkDescriptor {
                id: 0,
                kind: WorkKind::Pair,
                i: 1,
                j: 4095,
                core_a: 8,
                core_b: 4094,
                sub_seed: u64::MAX,
                rep_scale: 1,
            },
            PairWorkDescriptor {
                id: u32::MAX,
                kind: WorkKind::Diag,
                i: 0,
                j: 1,
                core_a: 0,
                core_b: 1,
                sub_seed: 0,
                rep_scale: 16,
            },
        ]
    }

    #[test]
    fn batch_binary_roundtrip() {
        let descs = sample_descriptors();
        let bytes = encode_batch(&descs);
        assert_eq!(bytes.len(), 2 * DESCRIPTOR_WIRE_LEN);
        assert_eq!(decode_batch(&bytes).unwrap(), descs);
        assert!(decode_batch(&bytes[..DESCRIPTOR_WIRE_LEN - 1]).is_err());
        let mut corrupt = bytes;
        corrupt[4] = 9; // invalid kind byte
        assert!(decode_batch(&corrupt).is_err());
    }

    #[test]
    fn results_binary_roundtrip() {
        let samples = vec![
            PairSample {
                id: 3,
                o: 2.625e-6,
                l: 1.0e-7,
            },
            PairSample {
                id: 0,
                o: f64::MIN_POSITIVE,
                l: 0.0,
            },
        ];
        let bytes = encode_results(&samples);
        let back = decode_results(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&samples) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.o.to_bits(), b.o.to_bits());
            assert_eq!(a.l.to_bits(), b.l.to_bits());
        }
        assert!(decode_results(&bytes[..SAMPLE_WIRE_LEN + 3]).is_err());
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_BATCH, &encode_batch(&sample_descriptors())).unwrap();
        write_frame(&mut buf, FRAME_SHUTDOWN, &[]).unwrap();
        let mut cursor = &buf[..];
        let (tag, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(tag, FRAME_BATCH);
        assert_eq!(decode_batch(&payload).unwrap(), sample_descriptors());
        let (tag, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!(tag, FRAME_SHUTDOWN);
        assert!(payload.is_empty());
        assert!(read_frame(&mut cursor).is_err(), "stream exhausted");
    }

    #[test]
    fn reusable_buffer_roundtrip_and_drain() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_BATCH, &encode_batch(&sample_descriptors())).unwrap();
        write_frame(&mut buf, FRAME_DRAIN, &[]).unwrap();
        let mut cursor = &buf[..];
        let mut payload = vec![0xAA; 3]; // stale content must be cleared
        assert_eq!(
            read_frame_into(&mut cursor, &mut payload).unwrap(),
            FRAME_BATCH
        );
        assert_eq!(decode_batch(&payload).unwrap(), sample_descriptors());
        assert_eq!(
            read_frame_into(&mut cursor, &mut payload).unwrap(),
            FRAME_DRAIN
        );
        assert!(payload.is_empty());
    }

    #[test]
    fn into_encoders_match_allocating_encoders() {
        let descs = sample_descriptors();
        let mut buf = vec![1, 2, 3];
        encode_batch_into(&descs, &mut buf);
        assert_eq!(buf, encode_batch(&descs));
        let samples = vec![PairSample {
            id: 9,
            o: 1.5e-6,
            l: 2.5e-7,
        }];
        encode_results_into(&samples, &mut buf);
        assert_eq!(buf, encode_results(&samples));
    }

    #[test]
    fn frame_rejects_oversized_lengths() {
        let mut buf = vec![FRAME_BATCH];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn job_header_json_roundtrip() {
        let job = JobHeader {
            machine: MachineSpec::dual_quad_cluster(2),
            noise: NoiseModel::realistic(42),
            profiling: ProfilingConfig::fast(),
        };
        let payload = encode_job(&job).unwrap();
        assert_eq!(decode_job(&payload).unwrap(), job);
        assert!(decode_job(b"{nonsense").is_err());
    }
}
