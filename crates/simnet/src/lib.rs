//! Discrete-event simulation of heterogeneous clusters.
//!
//! This crate is the stand-in for the paper's physical testbeds (see
//! DESIGN.md, substitution 1): an event-driven model of processes pinned
//! to cores, exchanging zero- or small-payload messages through a
//! three-level interconnect (shared socket, cross socket, inter-node) with
//! serial per-resource occupancies (sender CPU, per-node NIC TX/RX,
//! receiver CPU) and seeded measurement noise.
//!
//! The execution semantics mirror what the paper relies on from OpenMPI:
//! **synchronous sends** (`MPI_Issend`) whose local completion implies the
//! receiver participated, nonblocking receives, and per-step `Waitall`.
//! Processes run little instruction [`program`]s, which is exactly how the
//! paper's general simulator executes matrix-encoded barriers.
//!
//! * [`engine`] — the event queue and process interpreter;
//! * [`world`] — user-facing configuration and runs;
//! * [`noise`] — multiplicative jitter plus rare preemption spikes;
//! * [`benchprog`] — the §IV-A profiling workloads (ping-pong size sweep,
//!   multi-message bursts, transmission-free calls);
//! * [`profiling`] — the full `|P|²` pairwise benchmark driver that
//!   produces a [`hbar_topo::profile::TopologyProfile`] by regression;
//! * [`sweep`] — the decomposed (pair-clustered, representative +
//!   validation-probe) profiling sweep with work-stealing local fan-out;
//! * [`scatter`] — the out-of-core class-grid scatter that writes the
//!   sweep's results into a [`hbar_topo::CompressedCostModel`]
//!   tile-at-a-time under a memory budget, for `P ≫ 4096`;
//! * [`wire`] — the compact framed codec for shipping sweep work to
//!   remote workers;
//! * [`distrib`] — the TCP worker loop and the fleet driver that shards
//!   class representatives across workers with retry-on-disconnect;
//! * [`barrier`] — compiled barrier execution and the staggered-delay
//!   synchronization check of §VI.

pub mod barrier;
pub mod benchprog;
pub mod distrib;
pub mod engine;
pub mod noise;
pub mod profiling;
pub mod program;
pub mod scatter;
pub mod sweep;
pub mod trace;
pub mod wire;
pub mod world;

pub use noise::{NoiseModel, NoiseState};
pub use program::{Instr, Program};
pub use scatter::{
    measure_profile_clustered_compressed, measure_profile_compressed, SpillConfig, SpillReport,
};
pub use sweep::{
    measure_profile_clustered, measure_profile_decomposed, DescriptorExecutor, LocalExecutor,
    PairSample, PairWorkDescriptor, SequentialExecutor, SweepConfig, SweepError, SweepReport,
    WorkKind,
};
pub use world::{SimConfig, SimResult, SimWorld};

/// Virtual time in integer nanoseconds.
pub type Time = u64;

/// Converts virtual nanoseconds to seconds.
pub fn ns_to_sec(t: Time) -> f64 {
    t as f64 * 1e-9
}
