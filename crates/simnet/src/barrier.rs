//! Executing compiled barriers on the simulator, and the §VI
//! synchronization check.
//!
//! "Execution amounts to each participating process looping over the
//! required number of stages, issuing nonblocking, synchronized signals
//! according to the dependencies of the stage (with `MPI_Issend`), and
//! awaiting completion of all issued requests."

use crate::program::Program;
use crate::world::SimWorld;
use crate::{ns_to_sec, Time};
use hbar_core::codegen::{compile_schedule, RankProgram};
use hbar_core::schedule::BarrierSchedule;

/// Converts one compiled rank program into a simulator program:
/// per step, post receives, issue synchronous sends, wait for all.
pub fn sim_program(program: &RankProgram) -> Program {
    sim_program_repeated(program, 1)
}

/// Like [`sim_program`] but executing the barrier `reps` times
/// back-to-back, the way the measurement loops run it.
pub fn sim_program_repeated(program: &RankProgram, reps: usize) -> Program {
    let mut p = Program::new();
    for _ in 0..reps {
        for step in &program.steps {
            for &src in &step.recvs {
                p = p.irecv(src);
            }
            for &dst in &step.sends {
                p = p.issend(dst);
            }
            p = p.wait_all();
        }
    }
    p
}

/// Simulator programs for every rank of a schedule.
///
/// # Panics
/// Panics if the schedule fails codegen validation (see
/// [`compile_schedule`]); impossible for schedules built through the
/// `BarrierSchedule` API.
pub fn schedule_programs(schedule: &BarrierSchedule, reps: usize) -> Vec<Program> {
    compile_schedule(schedule)
        .expect("schedule passes codegen validation")
        .iter()
        .map(|rp| sim_program_repeated(rp, reps))
        .collect()
}

/// Measures the mean execution time (seconds) of a barrier schedule on
/// `world`: `reps` back-to-back executions, makespan divided by `reps`.
///
/// # Panics
/// Panics if the schedule's rank count differs from the world's, or if
/// execution deadlocks (impossible for verified barrier schedules).
pub fn measure_schedule(world: &mut SimWorld, schedule: &BarrierSchedule, reps: usize) -> f64 {
    assert_eq!(
        schedule.n(),
        world.p(),
        "schedule/world rank count mismatch"
    );
    assert!(reps > 0, "need at least one repetition");
    let programs = schedule_programs(schedule, reps);
    let result = world
        .run(&programs)
        .expect("verified barrier cannot deadlock");
    ns_to_sec(result.makespan()) / reps as f64
}

/// Result of the staggered-delay check for one delayed rank.
#[derive(Clone, Debug)]
pub struct DelayCheckRun {
    /// The rank that entered the barrier late.
    pub delayed_rank: usize,
    /// Every rank's exit time (ns).
    pub finish: Vec<Time>,
}

/// The §VI correctness validation: "each algorithm was tested P times …
/// with each of the P participants introducing a 1-second delay before
/// calling the barrier. Observing the expected delay in the execution
/// time at every process verifies that all processes are actually
/// synchronized."
///
/// Runs the schedule once per delayed rank and returns whether every rank
/// observed at least the injected delay in every run (plus the runs, for
/// diagnostics).
pub fn staggered_delay_check(
    world: &mut SimWorld,
    schedule: &BarrierSchedule,
    delay_ns: Time,
) -> (bool, Vec<DelayCheckRun>) {
    assert_eq!(
        schedule.n(),
        world.p(),
        "schedule/world rank count mismatch"
    );
    let base = schedule_programs(schedule, 1);
    let mut runs = Vec::with_capacity(world.p());
    let mut all_ok = true;
    for delayed in 0..world.p() {
        let programs: Vec<Program> = base
            .iter()
            .enumerate()
            .map(|(r, p)| {
                if r == delayed {
                    let mut d = Program::with_capacity(p.len() + 1);
                    d.push_delay(delay_ns);
                    d.instrs.extend_from_slice(&p.instrs);
                    d.labels = p.labels.clone();
                    d
                } else {
                    p.clone()
                }
            })
            .collect();
        let result = world
            .run(&programs)
            .expect("verified barrier cannot deadlock");
        all_ok &= result.finish.iter().all(|&f| f >= delay_ns);
        runs.push(DelayCheckRun {
            delayed_rank: delayed,
            finish: result.finish,
        });
    }
    (all_ok, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::world::SimConfig;
    use hbar_core::algorithms::Algorithm;
    use hbar_core::schedule::Stage;
    use hbar_matrix::BoolMatrix;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;

    fn world(machine: MachineSpec, p: usize) -> SimWorld {
        SimWorld::new(SimConfig::exact(machine, RankMapping::RoundRobin), p)
    }

    #[test]
    fn all_paper_algorithms_execute_without_deadlock() {
        let machine = MachineSpec::dual_quad_cluster(2);
        for p in [2usize, 5, 9, 16] {
            let members: Vec<usize> = (0..p).collect();
            for alg in Algorithm::PAPER_SET {
                let sched = alg.full_schedule(p, &members);
                let mut w = world(machine.clone(), p);
                let t = measure_schedule(&mut w, &sched, 3);
                assert!(t > 0.0, "{alg} p={p}");
            }
        }
    }

    #[test]
    fn staggered_delay_verifies_synchronization() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let p = 9;
        let members: Vec<usize> = (0..p).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(p, &members);
            let mut w = world(machine.clone(), p);
            let delay = 50_000_000; // 50 ms virtual
            let (ok, runs) = staggered_delay_check(&mut w, &sched, delay);
            assert!(
                ok,
                "{alg}: some rank exited before the delayed rank entered"
            );
            assert_eq!(runs.len(), p);
        }
    }

    #[test]
    fn broken_schedule_fails_delay_check() {
        // Arrival-only linear "barrier": ranks 1..p signal 0 and leave —
        // they do NOT wait for stragglers, so the check must fail when a
        // *different* rank is delayed.
        let p = 4;
        let mut sched = BarrierSchedule::new(p);
        let mut s0 = BoolMatrix::zeros(p);
        for i in 1..p {
            s0.set(i, 0, true);
        }
        sched.push(Stage::arrival(s0));
        assert!(!sched.is_barrier());
        let mut w = world(MachineSpec::dual_quad_cluster(1), p);
        let (ok, _) = staggered_delay_check(&mut w, &sched, 50_000_000);
        assert!(!ok);
    }

    #[test]
    fn barrier_times_are_in_paper_magnitude() {
        // 16 ranks over 2 quad nodes: all three algorithms should land in
        // the 10 µs – 2 ms band the paper's figures span.
        let machine = MachineSpec::dual_quad_cluster(2);
        let members: Vec<usize> = (0..16).collect();
        for alg in Algorithm::PAPER_SET {
            let sched = alg.full_schedule(16, &members);
            let mut w = world(machine.clone(), 16);
            let t = measure_schedule(&mut w, &sched, 5);
            assert!((1e-5..2e-3).contains(&t), "{alg}: {t}");
        }
    }

    #[test]
    fn linear_is_slowest_at_scale() {
        let machine = MachineSpec::dual_quad_cluster(8);
        let p = 64;
        let members: Vec<usize> = (0..p).collect();
        let time_for = |alg: Algorithm| {
            let sched = alg.full_schedule(p, &members);
            let mut w = world(machine.clone(), p);
            measure_schedule(&mut w, &sched, 3)
        };
        let lin = time_for(Algorithm::Linear);
        let tree = time_for(Algorithm::Tree);
        let diss = time_for(Algorithm::Dissemination);
        assert!(lin > tree, "linear {lin} !> tree {tree}");
        assert!(lin > diss, "linear {lin} !> dissemination {diss}");
    }

    #[test]
    fn repeated_execution_amortizes() {
        let machine = MachineSpec::dual_quad_cluster(1);
        let members: Vec<usize> = (0..8).collect();
        let sched = Algorithm::Tree.full_schedule(8, &members);
        let mut w = world(machine, 8);
        let t1 = measure_schedule(&mut w, &sched, 1);
        let t10 = measure_schedule(&mut w, &sched, 10);
        // Mean per-barrier time should be stable within 2x.
        assert!(t10 < t1 * 2.0 && t1 < t10 * 2.0, "{t1} vs {t10}");
    }

    #[test]
    fn empty_rank_program_is_passive() {
        // A schedule over 3 ranks where rank 2 never participates.
        let mut sched = BarrierSchedule::new(3);
        sched.push(Stage::arrival(BoolMatrix::from_edges(3, &[(1, 0)])));
        sched.push(Stage::departure(BoolMatrix::from_edges(3, &[(0, 1)])));
        let mut w = world(MachineSpec::dual_quad_cluster(1), 3);
        let programs = schedule_programs(&sched, 1);
        assert!(programs[2].is_empty());
        let res = w.run(&programs).unwrap();
        assert_eq!(res.finish[2], 0);
    }

    #[test]
    fn noisy_execution_still_synchronizes() {
        let cfg = SimConfig {
            machine: MachineSpec::dual_quad_cluster(2),
            mapping: RankMapping::RoundRobin,
            noise: NoiseModel::realistic(23),
        };
        let mut w = SimWorld::new(cfg, 12);
        let members: Vec<usize> = (0..12).collect();
        let sched = Algorithm::Dissemination.full_schedule(12, &members);
        let (ok, _) = staggered_delay_check(&mut w, &sched, 10_000_000);
        assert!(ok);
    }
}
