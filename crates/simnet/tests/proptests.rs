//! Property-based tests of the discrete-event engine.

use hbar_core::algorithms::Algorithm;
use hbar_simnet::barrier::{measure_schedule, staggered_delay_check};
use hbar_simnet::engine::Engine;
use hbar_simnet::program::Program;
use hbar_simnet::world::{SimConfig, SimWorld};
use hbar_simnet::{NoiseModel, NoiseState};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use proptest::prelude::*;

/// Random machine shapes within the paper's scale.
fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    (1usize..=3, 1usize..=2, 1usize..=4)
        .prop_map(|(nodes, sockets, cores)| MachineSpec::new(nodes, sockets, cores))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Verified barrier schedules never deadlock on the simulator, and
    /// always take positive time for ≥2 ranks.
    #[test]
    fn verified_barriers_never_deadlock(machine in arb_machine(), alg_idx in 0usize..3, seed in 0u64..100) {
        let p = machine.total_cores();
        prop_assume!(p >= 2);
        let alg = Algorithm::PAPER_SET[alg_idx];
        let members: Vec<usize> = (0..p).collect();
        let sched = alg.full_schedule(p, &members);
        let mut world = SimWorld::new(
            SimConfig {
                machine,
                mapping: RankMapping::RoundRobin,
                noise: NoiseModel::realistic(seed),
            },
            p,
        );
        let t = measure_schedule(&mut world, &sched, 2);
        prop_assert!(t > 0.0);
    }

    /// A matched send/receive pattern between random pairs completes,
    /// and the makespan is deterministic for a fixed configuration.
    #[test]
    fn matched_pairs_complete_deterministically(
        machine in arb_machine(),
        pairs in prop::collection::vec((0usize..12, 0usize..12), 1..10),
    ) {
        let p = machine.total_cores();
        prop_assume!(p >= 2);
        // Build per-rank programs from the sanitized pair list.
        let mk = |p: usize, pairs: &[(usize, usize)]| {
            let mut programs: Vec<Program> = (0..p).map(|_| Program::new()).collect();
            for &(a, b) in pairs {
                let (a, b) = (a % p, b % p);
                if a == b {
                    continue;
                }
                programs[a] = std::mem::take(&mut programs[a]).issend(b);
                programs[b] = std::mem::take(&mut programs[b]).irecv(a);
            }
            programs.into_iter().map(|pr| pr.wait_all()).collect::<Vec<_>>()
        };
        let cfg = SimConfig::exact(machine, RankMapping::Block);
        let programs = mk(p, &pairs);
        let mut w1 = SimWorld::new(cfg.clone(), p);
        let r1 = w1.run(&programs).expect("matched pattern completes");
        let mut w2 = SimWorld::new(cfg, p);
        let r2 = w2.run(&programs).expect("matched pattern completes");
        prop_assert_eq!(r1.finish, r2.finish);
    }

    /// Adding a delay to any one rank never reduces the makespan of a
    /// barrier (monotonicity of the simulated fabric).
    #[test]
    fn delay_is_monotone(delayed in 0usize..8, delay_ms in 1u64..50) {
        let machine = MachineSpec::new(2, 1, 4);
        let p = 8;
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Tree.full_schedule(p, &members);
        let programs = hbar_simnet::barrier::schedule_programs(&sched, 1);
        let cfg = SimConfig::exact(machine, RankMapping::RoundRobin);
        let mut world = SimWorld::new(cfg, p);
        let base = world.run(&programs).expect("runs").finish;
        let delayed_programs: Vec<Program> = programs
            .iter()
            .enumerate()
            .map(|(r, pr)| {
                if r == delayed {
                    let mut d = Program::with_capacity(pr.len() + 1);
                    d.push_delay(delay_ms * 1_000_000);
                    d.instrs.extend_from_slice(&pr.instrs);
                    d.labels = pr.labels.clone();
                    d
                } else {
                    pr.clone()
                }
            })
            .collect();
        let slow = world.run(&delayed_programs).expect("runs").finish;
        for r in 0..p {
            prop_assert!(slow[r] >= base[r], "rank {r}: {} < {}", slow[r], base[r]);
        }
        // And everyone waits out the delay (it is a barrier).
        let min_finish = slow.iter().copied().min().unwrap();
        prop_assert!(min_finish >= delay_ms * 1_000_000);
    }

    /// Noise never makes anything faster than the deterministic fabric.
    #[test]
    fn noise_only_slows_down(seed in 1u64..200) {
        let machine = MachineSpec::new(2, 1, 2);
        let p = 4;
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Dissemination.full_schedule(p, &members);
        let mut exact = SimWorld::new(SimConfig::exact(machine.clone(), RankMapping::Block), p);
        let t_exact = measure_schedule(&mut exact, &sched, 1);
        let mut noisy = SimWorld::new(
            SimConfig {
                machine,
                mapping: RankMapping::Block,
                noise: NoiseModel::realistic(seed),
            },
            p,
        );
        let t_noisy = measure_schedule(&mut noisy, &sched, 1);
        prop_assert!(t_noisy >= t_exact * 0.999, "{t_noisy} < {t_exact}");
    }

    /// A reused engine (`reset` + `run` three times) is observationally
    /// identical to three freshly constructed engines: same finish times
    /// and same event counts under realistic noise, for random matched
    /// communication patterns. This is the arena-reuse correctness
    /// contract — no state may leak between runs.
    #[test]
    fn reused_engine_is_indistinguishable_from_fresh(
        machine in arb_machine(),
        pairs in prop::collection::vec((0usize..12, 0usize..12), 1..10),
        seed in 0u64..100,
    ) {
        let p = machine.total_cores();
        prop_assume!(p >= 2);
        let mut programs: Vec<Program> = (0..p).map(|_| Program::new()).collect();
        for &(a, b) in &pairs {
            let (a, b) = (a % p, b % p);
            if a == b {
                continue;
            }
            programs[a].push_issend(b);
            programs[b].push_irecv(a);
        }
        for pr in &mut programs {
            pr.push_wait_all();
        }
        let model = NoiseModel::realistic(seed);
        let cores = RankMapping::RoundRobin.cores(&machine, p);
        let mut reused = Engine::new(cores.clone(), machine.ground_truth.clone());
        for salt in 1..=3u64 {
            let fresh_result = Engine::new(cores.clone(), machine.ground_truth.clone())
                .run(&programs, NoiseState::new(model, salt))
                .expect("matched pattern completes");
            let reused_result = reused
                .run(&programs, NoiseState::new(model, salt))
                .expect("matched pattern completes");
            prop_assert_eq!(fresh_result.finish, reused_result.finish);
            prop_assert_eq!(fresh_result.events, reused_result.events);
        }
    }

    /// The §VI staggered-delay check holds for every paper algorithm on
    /// random machines.
    #[test]
    fn delay_check_holds_on_random_machines(machine in arb_machine(), alg_idx in 0usize..3) {
        let p = machine.total_cores();
        prop_assume!((2..=12).contains(&p));
        let alg = Algorithm::PAPER_SET[alg_idx];
        let members: Vec<usize> = (0..p).collect();
        let sched = alg.full_schedule(p, &members);
        let mut world = SimWorld::new(SimConfig::exact(machine, RankMapping::RoundRobin), p);
        let (ok, _) = staggered_delay_check(&mut world, &sched, 5_000_000);
        prop_assert!(ok);
    }
}
