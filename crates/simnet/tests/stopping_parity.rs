//! Pins the decomposed sweep's adaptive-repetition behavior to golden
//! hashes captured before the stopping rule was delegated to
//! `hbar-stats`. The configuration deliberately drives every layer of
//! the repetition logic — multi-member classes, validation probes, a
//! tolerance tight enough to force growth rounds, and the explosion
//! safety valve disabled — so any drift in the shared rule's arithmetic
//! (median, relative spread, grow/stop decision) changes the scattered
//! matrices and flips the hash.

use hbar_simnet::profiling::ProfilingConfig;
use hbar_simnet::sweep::{measure_profile_clustered, SweepConfig};
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;

/// FNV-1a over the bit patterns of both cost matrices, row-major O then L.
fn profile_fingerprint(p: &TopologyProfile) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: f64| {
        for byte in x.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for v in p.cost.o.as_slice() {
        eat(*v);
    }
    for v in p.cost.l.as_slice() {
        eat(*v);
    }
    hash
}

/// The frozen configuration: fast schedule, 2 probes per class, a 1%
/// tolerance that realistic noise cannot meet in round 0 (so growth
/// rounds actually run), and no explosion.
fn pinned_config() -> SweepConfig {
    SweepConfig {
        profiling: ProfilingConfig::fast(),
        probes_per_class: 2,
        probe_seed: 0,
        ci_rel_tol: 0.01,
        max_growth_rounds: 2,
        explode_rel_tol: f64::INFINITY,
        exact_classes: false,
    }
}

fn pinned_profile(p: usize) -> (TopologyProfile, hbar_simnet::sweep::SweepReport) {
    let machine = MachineSpec::dual_quad_cluster(p.div_ceil(8));
    measure_profile_clustered(
        &machine,
        &RankMapping::Block,
        p,
        NoiseModel::realistic(42),
        &pinned_config(),
    )
}

#[test]
fn adaptive_repetition_is_bit_identical_to_pre_refactor_behavior_p8() {
    let (profile, report) = pinned_profile(8);
    assert!(
        report.growth_rounds > 0,
        "the pinned tolerance must actually exercise the stopping rule"
    );
    assert_eq!(
        profile_fingerprint(&profile),
        GOLDEN_P8,
        "clustered profile at P=8 diverged from the pre-refactor stopping rule"
    );
}

#[test]
fn adaptive_repetition_is_bit_identical_to_pre_refactor_behavior_p16() {
    let (profile, report) = pinned_profile(16);
    assert!(
        report.growth_rounds > 0,
        "the pinned tolerance must actually exercise the stopping rule"
    );
    assert_eq!(
        profile_fingerprint(&profile),
        GOLDEN_P16,
        "clustered profile at P=16 diverged from the pre-refactor stopping rule"
    );
}

/// Golden fingerprints captured from the pre-refactor sweep (the
/// hand-rolled `rel_spreads`/`medians` in `sweep.rs` as of PR 7) under
/// the pinned seeds above. Do not update these without demonstrating the
/// new value reproduces the old measurement plan measurement-for-
/// measurement.
const GOLDEN_P8: u64 = 7051013349102083021;
const GOLDEN_P16: u64 = 15183762971726166949;
