//! Integration tests of the decomposed profiling sweep: singleton-regime
//! bit-parity, clustered-vs-exhaustive error bounds on the paper
//! clusters, wire-format round trips, and the loopback driver↔worker
//! fleet with a mid-sweep crash.

use hbar_simnet::distrib::{
    serve_worker, shutdown_worker, FleetExecutor, FleetOptions, WorkerFault,
};
use hbar_simnet::profiling::{measure_profile, ProfilingConfig};
use hbar_simnet::sweep::{
    measure_profile_clustered, measure_profile_decomposed, PairSample, PairWorkDescriptor,
    SweepConfig, WorkKind,
};
use hbar_simnet::wire::JobHeader;
use hbar_simnet::NoiseModel;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use proptest::prelude::*;
use std::net::TcpListener;
use std::time::Duration;

/// Bit-level equality of two profiles' cost matrices.
fn bits_equal(a: &TopologyProfile, b: &TopologyProfile) -> bool {
    a.cost
        .o
        .as_slice()
        .iter()
        .zip(b.cost.o.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.cost
            .l
            .as_slice()
            .iter()
            .zip(b.cost.l.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Worst relative off-diagonal error of `a` against reference `b`.
fn worst_rel_error(a: &TopologyProfile, b: &TopologyProfile) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..a.p {
        for j in 0..a.p {
            if i == j {
                continue;
            }
            let (x, y) = (a.cost.o[(i, j)], b.cost.o[(i, j)]);
            worst = worst.max((x - y).abs() / y);
            let (x, y) = (a.cost.l[(i, j)], b.cost.l[(i, j)]);
            worst = worst.max((x - y).abs() / y);
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Singleton-class property: when every pair is its own class, the
    /// clustered sweep IS the exhaustive sweep — bit for bit, for any
    /// machine shape, mapping, and noise seed.
    #[test]
    fn singleton_regime_is_bit_identical_to_exhaustive(
        (nodes, sockets, cores) in (1usize..=2, 1usize..=2, 1usize..=3),
        p in 2usize..=8,
        seed in 0u64..1000,
        round_robin in any::<bool>(),
    ) {
        let machine = MachineSpec::new(nodes, sockets, cores);
        prop_assume!(p <= machine.total_cores());
        let mapping = if round_robin { RankMapping::RoundRobin } else { RankMapping::Block };
        let noise = NoiseModel::realistic(seed);
        let cfg = ProfilingConfig::fast();
        let exhaustive = measure_profile(&machine, &mapping, p, noise, &cfg);
        let (clustered, report) = measure_profile_clustered(
            &machine,
            &mapping,
            p,
            noise,
            &SweepConfig::exact(cfg),
        );
        prop_assert!(bits_equal(&exhaustive, &clustered));
        prop_assert_eq!(report.measurements, p * (p - 1) / 2 + p);
    }
}

/// Clustered estimates stay within the recorded error bound of the
/// exhaustive sweep on both paper clusters at P ∈ {16, 32, 64}.
///
/// The bound here (20%) is for the `fast()` test schedule, whose few
/// repetitions leave substantial residual noise in *both* sweeps (the
/// worst observed gap, ~15% on dual_hex at P = 32, is noise floor, not
/// clustering bias — both estimates of the same pair wobble that much);
/// the full schedule is held to ≤ 5% by the `profile-perf` harness
/// (recorded in BENCH_profile.json).
#[test]
fn clustered_error_bounded_on_paper_clusters() {
    for (name, machine) in [
        ("dual_quad", MachineSpec::dual_quad_cluster(8)),
        ("dual_hex", MachineSpec::dual_hex_cluster(6)),
    ] {
        for p in [16usize, 32, 64] {
            let mapping = RankMapping::Block;
            let noise = NoiseModel::realistic(2026);
            let exhaustive =
                measure_profile(&machine, &mapping, p, noise, &ProfilingConfig::fast());
            let (clustered, report) =
                measure_profile_clustered(&machine, &mapping, p, noise, &SweepConfig::fast());
            let err = worst_rel_error(&clustered, &exhaustive);
            assert!(
                err < 0.2,
                "{name} P={p}: clustered error {err} out of bound"
            );
            assert!(
                report.measurements < report.total_pairs + p,
                "{name} P={p}: no reduction ({} measurements)",
                report.measurements
            );
        }
    }
}

/// JSON round trip of descriptor/response batches (the compact binary
/// round trip is covered by `wire`'s unit tests).
#[test]
fn descriptor_batches_roundtrip_as_json() {
    let batch: Vec<PairWorkDescriptor> = (0..5)
        .map(|k| PairWorkDescriptor {
            id: k,
            kind: if k % 2 == 0 {
                WorkKind::Pair
            } else {
                WorkKind::Diag
            },
            i: k * 7,
            j: k * 7 + 1,
            core_a: k,
            core_b: k + 1,
            sub_seed: 0x5EED ^ u64::from(k),
            rep_scale: 1 << (k % 4),
        })
        .collect();
    let json = serde_json::to_string(&batch).unwrap();
    let back: Vec<PairWorkDescriptor> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, batch);

    let responses = vec![
        PairSample {
            id: 0,
            o: 2.625e-6,
            l: 1.07e-7,
        },
        PairSample {
            id: 1,
            o: 3.5e-6,
            l: 0.0,
        },
    ];
    let json = serde_json::to_string(&responses).unwrap();
    let back: Vec<PairSample> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), responses.len());
    for (a, b) in back.iter().zip(&responses) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.o.to_bits(), b.o.to_bits());
        assert_eq!(a.l.to_bits(), b.l.to_bits());
    }

    let job = JobHeader {
        machine: MachineSpec::dual_quad_cluster(2),
        noise: NoiseModel::realistic(1),
        profiling: ProfilingConfig::fast(),
    };
    let json = serde_json::to_string(&job).unwrap();
    let back: JobHeader = serde_json::from_str(&json).unwrap();
    assert_eq!(back, job);
}

/// Spawns a worker on an ephemeral loopback port, returning its address
/// and join handle.
fn spawn_worker(fault: WorkerFault) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || serve_worker(listener, fault));
    (addr, handle)
}

/// The loopback fleet test: two workers on 127.0.0.1, one crashing
/// mid-sweep (connection dropped after its first answered batch). The
/// driver must requeue the in-flight batch, reconnect, and produce a
/// merged profile bit-identical to the purely local sweep — with local
/// fallback disabled, so every measurement demonstrably came through the
/// fleet.
#[test]
fn loopback_fleet_survives_mid_sweep_crash_and_matches_local() {
    let machine = MachineSpec::dual_quad_cluster(2);
    let mapping = RankMapping::Block;
    let noise = NoiseModel::realistic(77);
    // Exact classes make the sweep big enough (120 pair + 16 diag
    // descriptors) to spread over many small batches.
    let sweep_cfg = SweepConfig::exact(ProfilingConfig::fast());
    let p = 16;

    let (local_profile, local_report) =
        measure_profile_clustered(&machine, &mapping, p, noise, &sweep_cfg);

    let (addr_a, handle_a) = spawn_worker(WorkerFault::DropConnectionOnce { after: 1 });
    let (addr_b, handle_b) = spawn_worker(WorkerFault::None);
    let mut fleet = FleetExecutor::for_sweep(
        vec![addr_a.clone(), addr_b.clone()],
        machine.clone(),
        noise,
        sweep_cfg.profiling.clone(),
        FleetOptions {
            batch_size: 8,
            reconnect_attempts: 4,
            reconnect_backoff: Duration::from_millis(10),
            local_fallback: false,
        },
    );
    let (fleet_profile, fleet_report) =
        measure_profile_decomposed(&machine, &mapping, p, noise, &sweep_cfg, &mut fleet)
            .expect("fleet sweep must survive the crash");

    assert!(
        bits_equal(&local_profile, &fleet_profile),
        "fleet-merged profile must be bit-identical to the local sweep"
    );
    assert_eq!(local_report.measurements, fleet_report.measurements);

    shutdown_worker(&addr_a).expect("shutdown worker a");
    shutdown_worker(&addr_b).expect("shutdown worker b");
    handle_a.join().expect("join a").expect("worker a ok");
    handle_b.join().expect("join b").expect("worker b ok");
}

/// Drain handshake: a driver that finishes its queue sends FRAME_DRAIN
/// and gets an acknowledging FRAME_DRAIN back, and the worker stays
/// alive for the next session instead of seeing an abrupt EOF.
#[test]
fn worker_acknowledges_drain_and_keeps_serving() {
    use hbar_simnet::wire::{
        encode_batch, encode_job, read_frame, write_frame, FRAME_BATCH, FRAME_DRAIN, FRAME_JOB,
        FRAME_RESULT,
    };
    use std::net::TcpStream;

    let (addr, handle) = spawn_worker(WorkerFault::None);
    let job = JobHeader {
        machine: MachineSpec::new(1, 1, 2),
        noise: NoiseModel::none(),
        profiling: ProfilingConfig::fast(),
    };

    for session in 0..2 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_frame(&mut stream, FRAME_JOB, &encode_job(&job).unwrap()).expect("send job");
        let batch = vec![PairWorkDescriptor {
            id: 0,
            kind: WorkKind::Pair,
            i: 0,
            j: 1,
            core_a: 0,
            core_b: 1,
            sub_seed: 42 + session,
            rep_scale: 1,
        }];
        write_frame(&mut stream, FRAME_BATCH, &encode_batch(&batch)).expect("send batch");
        let (tag, _) = read_frame(&mut stream).expect("read result");
        assert_eq!(tag, FRAME_RESULT, "session {session}: expected a result");
        write_frame(&mut stream, FRAME_DRAIN, &[]).expect("send drain");
        let (tag, payload) = read_frame(&mut stream).expect("read drain ack");
        assert_eq!(tag, FRAME_DRAIN, "session {session}: expected a drain ack");
        assert!(payload.is_empty());
    }

    shutdown_worker(&addr).expect("shutdown worker");
    handle.join().expect("join").expect("worker ok");
}

/// A second fleet scenario: a worker that dies for good. The other
/// worker must drain the whole queue alone.
#[test]
fn loopback_fleet_tolerates_permanent_worker_death() {
    let machine = MachineSpec::new(2, 2, 2);
    let mapping = RankMapping::RoundRobin;
    let noise = NoiseModel::realistic(13);
    let sweep_cfg = SweepConfig::exact(ProfilingConfig::fast());
    let p = 8;

    let (local_profile, _) = measure_profile_clustered(&machine, &mapping, p, noise, &sweep_cfg);

    let (addr_a, handle_a) = spawn_worker(WorkerFault::DieAfter { after: 1 });
    let (addr_b, handle_b) = spawn_worker(WorkerFault::None);
    let mut fleet = FleetExecutor::for_sweep(
        vec![addr_a, addr_b.clone()],
        machine.clone(),
        noise,
        sweep_cfg.profiling.clone(),
        FleetOptions {
            batch_size: 4,
            reconnect_attempts: 2,
            reconnect_backoff: Duration::from_millis(5),
            local_fallback: false,
        },
    );
    let (fleet_profile, _) =
        measure_profile_decomposed(&machine, &mapping, p, noise, &sweep_cfg, &mut fleet)
            .expect("surviving worker must finish the sweep");
    assert!(bits_equal(&local_profile, &fleet_profile));

    handle_a
        .join()
        .expect("join a")
        .expect("worker a exited by fault");
    shutdown_worker(&addr_b).expect("shutdown worker b");
    handle_b.join().expect("join b").expect("worker b ok");
}
