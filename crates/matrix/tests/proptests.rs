//! Property-based tests for the matrix substrate.

use hbar_matrix::{knowledge_closure, BoolMatrix, DenseMatrix};
use proptest::prelude::*;

fn arb_bool_matrix(max_n: usize) -> impl Strategy<Value = BoolMatrix> {
    (1..=max_n)
        .prop_flat_map(move |n| (Just(n), prop::collection::vec((0..n, 0..n), 0..n * 3)))
        .prop_map(|(n, edges)| BoolMatrix::from_edges(n, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// De Morgan-ish algebra: (A|B)ᵀ = Aᵀ|Bᵀ and (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_distributes(n in 1usize..30,
                             e1 in prop::collection::vec((0usize..30, 0usize..30), 0..60),
                             e2 in prop::collection::vec((0usize..30, 0usize..30), 0..60)) {
        let clip = |edges: Vec<(usize, usize)>| -> Vec<(usize, usize)> {
            edges.into_iter().filter(|(i, j)| *i < n && *j < n).collect()
        };
        let a = BoolMatrix::from_edges(n, &clip(e1));
        let b = BoolMatrix::from_edges(n, &clip(e2));
        prop_assert_eq!(a.or(&b).transpose(), a.transpose().or(&b.transpose()));
        prop_assert_eq!(
            a.and_or_product(&b).transpose(),
            b.transpose().and_or_product(&a.transpose())
        );
    }

    /// Identity is neutral for the boolean product.
    #[test]
    fn identity_is_neutral(m in arb_bool_matrix(40)) {
        let i = BoolMatrix::identity(m.n());
        prop_assert_eq!(i.and_or_product(&m), m.clone());
        prop_assert_eq!(m.and_or_product(&i), m);
    }

    /// The boolean product is associative.
    #[test]
    fn product_is_associative(n in 1usize..16,
                              e in prop::collection::vec((0usize..16, 0usize..16), 0..90)) {
        let edges: Vec<(usize, usize)> = e.into_iter().filter(|(i, j)| *i < n && *j < n).collect();
        let third = edges.len() / 3;
        let a = BoolMatrix::from_edges(n, &edges[..third]);
        let b = BoolMatrix::from_edges(n, &edges[third..2 * third]);
        let c = BoolMatrix::from_edges(n, &edges[2 * third..]);
        prop_assert_eq!(
            a.and_or_product(&b).and_or_product(&c),
            a.and_or_product(&b.and_or_product(&c))
        );
    }

    /// popcount is consistent with the edge iterator and row popcounts.
    #[test]
    fn popcount_consistency(m in arb_bool_matrix(50)) {
        let via_edges = m.edges().count();
        let via_rows: usize = (0..m.n()).map(|i| m.row_popcount(i)).sum();
        prop_assert_eq!(m.popcount(), via_edges);
        prop_assert_eq!(m.popcount(), via_rows);
    }

    /// Stage order within a *pipeline* matters, but closure over a
    /// permutation of identical stages doesn't change the final result
    /// when every stage is the same matrix.
    #[test]
    fn closure_idempotent_on_repeated_stage(m in arb_bool_matrix(20), reps in 1usize..5) {
        let n = m.n();
        let stages: Vec<BoolMatrix> = std::iter::repeat_n(m.clone(), reps + n).collect();
        let k1 = knowledge_closure(n, &stages);
        // More repetitions beyond n cannot add knowledge (fixed point).
        let more: Vec<BoolMatrix> = std::iter::repeat_n(m, 2 * (reps + n)).collect();
        let k2 = knowledge_closure(n, &more);
        prop_assert_eq!(k1, k2);
    }

    /// Transpose is an involution and swaps coordinates, across sizes that
    /// straddle the 64-bit word boundary (the blocked kernel's tile edges).
    #[test]
    fn transpose_involution_and_swap(n in 1usize..=130,
                                     edges in prop::collection::vec((0usize..130, 0usize..130), 0..400)) {
        let edges: Vec<(usize, usize)> = edges.into_iter().filter(|(i, j)| *i < n && *j < n).collect();
        let m = BoolMatrix::from_edges(n, &edges);
        let t = m.transpose();
        prop_assert_eq!(&t.transpose(), &m);
        for &(i, j) in &edges {
            prop_assert_eq!(m.get(i, j), t.get(j, i));
        }
        // Spot-check zero entries too, not just the set ones.
        for i in (0..n).step_by(7) {
            for j in (0..n).step_by(5) {
                prop_assert_eq!(m.get(i, j), t.get(j, i), "at ({}, {})", i, j);
            }
        }
    }

    /// Embedding a submatrix back through its index map preserves every
    /// edge: `embed` then `submatrix` is the identity for random masks.
    #[test]
    fn embed_submatrix_roundtrip(n in 1usize..=130,
                                 host_pad in 0usize..40,
                                 mask_bits in prop::collection::vec(any::<bool>(), 130),
                                 edges in prop::collection::vec((0usize..130, 0usize..130), 0..300)) {
        // Random mask over a host of n + pad ranks, guaranteed non-empty.
        let host_n = n + host_pad;
        let mut map: Vec<usize> = (0..n).filter(|&k| mask_bits[k]).collect();
        if map.is_empty() {
            map.push(n - 1);
        }
        let local_n = map.len();
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(i, j)| (i % local_n, j % local_n))
            .collect();
        let local = BoolMatrix::from_edges(local_n, &edges);
        let global = local.embed(host_n, &map);
        // Every local edge lands exactly where the map says, and nothing else.
        prop_assert_eq!(global.popcount(), local.popcount());
        for &(i, j) in &edges {
            prop_assert!(global.get(map[i], map[j]));
        }
        prop_assert_eq!(global.submatrix(&map), local);
    }

    /// Dense symmetrize is idempotent and commutes with transpose.
    #[test]
    fn symmetrize_idempotent(n in 1usize..12, vals in prop::collection::vec(-100.0f64..100.0, 144)) {
        let mut m = DenseMatrix::from_fn(n, |i, j| vals[(i * n + j) % vals.len()]);
        m.symmetrize();
        prop_assert!(m.is_symmetric());
        let mut again = m.clone();
        again.symmetrize();
        prop_assert_eq!(again, m.clone());
        prop_assert_eq!(m.transpose(), m);
    }
}
