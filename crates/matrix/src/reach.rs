//! Knowledge-closure computations for barrier verification.
//!
//! The paper's Eq. 3 tracks which arrivals each process knows about after
//! every stage: starting from `K₋₁ = I` (each process knows of its own
//! arrival), each stage `S_a` propagates knowledge along its signals:
//!
//! ```text
//! K_a = K_{a-1} + K_{a-1} · S_a        (boolean semiring)
//! ```
//!
//! A stage sequence is a barrier iff the final `K_k` is the all-ones matrix.
//! Note the orientation: entry `K[i][j]` set means *j knows that i arrived*
//! (row i's knowledge has reached column j), because a signal `i → j`
//! carries everything its sender knows.

use crate::BoolMatrix;

/// The per-stage knowledge matrices of a stage sequence, starting with the
/// identity (before any stage) and ending with the final knowledge state.
pub struct KnowledgeTrace {
    /// `states[a]` is `K_{a-1}` in the paper's numbering; `states[0] = I`.
    pub states: Vec<BoolMatrix>,
}

impl KnowledgeTrace {
    /// Creates an empty trace; populate it with
    /// [`KnowledgeTrace::recompute`].
    pub fn new() -> Self {
        KnowledgeTrace { states: Vec::new() }
    }

    /// Final knowledge matrix after all stages.
    pub fn last(&self) -> &BoolMatrix {
        self.states
            .last()
            .expect("trace always has the identity state")
    }

    /// True if the traced sequence synchronizes all processes.
    pub fn is_barrier(&self) -> bool {
        self.last().is_all_true()
    }

    /// The first stage index after which knowledge is complete, if any.
    /// (`Some(0)` would mean complete after stage 0, i.e. `states[1]` full.)
    pub fn first_complete_stage(&self) -> Option<usize> {
        self.states.iter().skip(1).position(|k| k.is_all_true())
    }

    /// Recomputes the trace over `stages` in place — the reusable-buffer
    /// mode. Every state matrix recorded by a previous call is reused, so a
    /// tuner tracing many candidate schedules of similar depth allocates
    /// only on its first trace.
    pub fn recompute<'a, I>(&mut self, n: usize, stages: I)
    where
        I: IntoIterator<Item = &'a BoolMatrix>,
    {
        let mut len = 1;
        self.slot(0).reset_identity(n);
        for s in stages {
            assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
            self.slot(len);
            // The previous state doubles as the Eq. 3 snapshot: copy it
            // into the next slot and accumulate the flow on top.
            let (prev, next) = self.states.split_at_mut(len);
            let (k, out) = (&prev[len - 1], &mut next[0]);
            out.copy_from(k);
            k.and_or_accumulate_into(s, out);
            len += 1;
        }
        self.states.truncate(len);
    }

    fn slot(&mut self, idx: usize) -> &mut BoolMatrix {
        if self.states.len() <= idx {
            self.states.push(BoolMatrix::zeros(0));
        }
        &mut self.states[idx]
    }
}

impl Default for KnowledgeTrace {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable scratch for allocation-free knowledge closures.
///
/// Owns the evolving `K`, the per-stage snapshot of its previous value, a
/// CSR image of the current stage, and per-row saturation flags; after the
/// first run on a given size, closures never touch the allocator.
///
/// Two properties of Eq. 3 drive the fast paths:
///
/// - Row `i` of `K_a` depends only on row `i` of `K_{a-1}` (a signal
///   `k → j` forwards what its *sender* knows about arrival `i`), so a row
///   that is already all-ones can be skipped for every remaining stage —
///   and when every row is saturated the closure exits early.
/// - Stage matrices are sparse (a rank signals one or two peers), so for
///   low out-degree senders scattering the individual target bits beats
///   OR-ing whole `words_per_row`-sized rows.
#[derive(Clone, Debug)]
pub struct ClosureWorkspace {
    k: BoolMatrix,
    prev: BoolMatrix,
    /// CSR of the current stage: row `r` signals
    /// `targets[offsets[r]..offsets[r + 1]]`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    saturated: Vec<bool>,
}

impl ClosureWorkspace {
    pub fn new() -> Self {
        ClosureWorkspace {
            k: BoolMatrix::zeros(0),
            prev: BoolMatrix::zeros(0),
            offsets: Vec::new(),
            targets: Vec::new(),
            saturated: Vec::new(),
        }
    }

    /// Runs the Eq. 3 closure over `stages`; the returned reference borrows
    /// the workspace's internal `K` buffer.
    pub fn closure<'a, I>(&mut self, n: usize, stages: I) -> &BoolMatrix
    where
        I: IntoIterator<Item = &'a BoolMatrix>,
    {
        self.run(n, stages, None);
        &self.k
    }

    /// Closure delta support: runs the Eq. 3 closure as if the single
    /// signal `edge = (src, dst)` of stage `skip_stage` were absent,
    /// without materializing a modified stage matrix. Comparing the result
    /// against [`Self::closure`] of the unmodified sequence decides whether
    /// that signal carries any knowledge the rest of the schedule does not
    /// already deliver (a *dead* signal).
    pub fn closure_excluding<'a, I>(
        &mut self,
        n: usize,
        stages: I,
        skip_stage: usize,
        edge: (usize, usize),
    ) -> &BoolMatrix
    where
        I: IntoIterator<Item = &'a BoolMatrix>,
    {
        self.run(n, stages, Some((skip_stage, edge.0, edge.1)));
        &self.k
    }

    /// Early-exit barrier test: true iff the closure saturates every row.
    /// Stops consuming stages as soon as knowledge is complete.
    pub fn is_barrier<'a, I>(&mut self, n: usize, stages: I) -> bool
    where
        I: IntoIterator<Item = &'a BoolMatrix>,
    {
        self.run(n, stages, None) == n
    }

    /// Executes the closure, returning the number of saturated rows.
    /// `skip`, if set, is `(stage_idx, src, dst)`: that one signal is
    /// treated as absent from its stage.
    fn run<'a, I>(&mut self, n: usize, stages: I, skip: Option<(usize, usize, usize)>) -> usize
    where
        I: IntoIterator<Item = &'a BoolMatrix>,
    {
        self.k.reset_identity(n);
        self.saturated.clear();
        self.saturated.resize(n, false);
        let mut saturated_rows = 0;
        for i in 0..n {
            // Only n == 1 starts saturated, but stay generic.
            if self.k.row_is_full(i) {
                self.saturated[i] = true;
                saturated_rows += 1;
            }
        }
        for (idx, s) in stages.into_iter().enumerate() {
            assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
            if saturated_rows == n {
                break; // all-ones is a fixed point of Eq. 3
            }
            let stage_skip = match skip {
                Some((si, src, dst)) if si == idx => Some((src, dst)),
                _ => None,
            };
            self.prev.copy_from(&self.k);
            self.compile_stage(s, stage_skip);
            saturated_rows += self.apply_stage(s, stage_skip);
        }
        saturated_rows
    }

    /// Snapshots stage `s` as CSR so the scatter path can walk a sender's
    /// targets without re-scanning its words per known arrival. `skip`,
    /// if set, is a `(src, dst)` signal to leave out of the image.
    fn compile_stage(&mut self, s: &BoolMatrix, skip: Option<(usize, usize)>) {
        let n = s.n();
        self.offsets.clear();
        self.targets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        for r in 0..n {
            for t in s.row_iter(r) {
                if skip == Some((r, t)) {
                    continue;
                }
                self.targets.push(t as u32);
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// One Eq. 3 update `K |= K·S`, skipping saturated rows. Scatters
    /// single bits for sparse senders and falls back to whole-row ORs for
    /// dense ones. Returns the number of rows newly saturated. A sender
    /// with a masked-out signal (`skip`) always takes the scatter path,
    /// whose CSR image already excludes the signal.
    fn apply_stage(&mut self, s: &BoolMatrix, skip: Option<(usize, usize)>) -> usize {
        let n = s.n();
        let wpr = self.k.words_per_row();
        // A row OR costs `wpr` word ops; a scatter costs ~2 per target.
        let scatter_max = (wpr / 2) as u32;
        let skip_src = skip.map(|(src, _)| src);
        let mut newly = 0;
        for i in 0..n {
            if self.saturated[i] {
                continue;
            }
            let dst = self.k.row_mut(i);
            for (w_idx, &word) in self.prev.row(i).iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let sender = w_idx * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let (t0, t1) = (
                        self.offsets[sender] as usize,
                        self.offsets[sender + 1] as usize,
                    );
                    if t1 - t0 == 0 {
                        continue;
                    }
                    if (t1 - t0) as u32 <= scatter_max || skip_src == Some(sender) {
                        for &t in &self.targets[t0..t1] {
                            dst[t as usize / 64] |= 1u64 << (t % 64);
                        }
                    } else {
                        for (d, sw) in dst.iter_mut().zip(s.row(sender)) {
                            *d |= sw;
                        }
                    }
                }
            }
            if self.k.row_is_full(i) {
                self.saturated[i] = true;
                newly += 1;
            }
        }
        newly
    }
}

impl Default for ClosureWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs Eq. 3 over `stages` and returns only the final knowledge matrix.
pub fn knowledge_closure<'a, I>(n: usize, stages: I) -> BoolMatrix
where
    I: IntoIterator<Item = &'a BoolMatrix>,
{
    let mut k = BoolMatrix::identity(n);
    let mut prev = BoolMatrix::zeros(n);
    for s in stages {
        assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
        prev.copy_from(&k);
        prev.and_or_accumulate_into(s, &mut k);
    }
    k
}

/// Runs Eq. 3 over `stages`, recording the knowledge matrix after every
/// stage (plus the initial identity).
pub fn knowledge_steps<'a, I>(n: usize, stages: I) -> KnowledgeTrace
where
    I: IntoIterator<Item = &'a BoolMatrix>,
{
    let mut trace = KnowledgeTrace::new();
    trace.recompute(n, stages);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_stages(n: usize) -> Vec<BoolMatrix> {
        // All non-zero ranks signal rank 0, then rank 0 signals everyone.
        let mut s0 = BoolMatrix::zeros(n);
        for i in 1..n {
            s0.set(i, 0, true);
        }
        let s1 = s0.transpose();
        vec![s0, s1]
    }

    #[test]
    fn linear_barrier_closes() {
        for n in [1, 2, 3, 4, 7, 65] {
            let k = knowledge_closure(n, &linear_stages(n));
            assert!(k.is_all_true(), "linear barrier failed for n={n}");
        }
    }

    #[test]
    fn arrival_only_is_not_a_barrier() {
        let stages = linear_stages(5);
        let k = knowledge_closure(5, &stages[..1]);
        assert!(!k.is_all_true());
        // Rank 0 knows all arrivals...
        for i in 0..5 {
            assert!(k.get(i, 0), "rank 0 should know arrival of {i}");
        }
        // ...but rank 1 does not know rank 2 arrived.
        assert!(!k.get(2, 1));
    }

    #[test]
    fn empty_stage_list_keeps_identity() {
        let k = knowledge_closure(4, &[]);
        assert_eq!(k, BoolMatrix::identity(4));
    }

    #[test]
    fn trace_records_progress() {
        let trace = knowledge_steps(4, &linear_stages(4));
        assert_eq!(trace.states.len(), 3);
        assert_eq!(trace.states[0], BoolMatrix::identity(4));
        assert!(!trace.states[1].is_all_true());
        assert!(trace.states[2].is_all_true());
        assert!(trace.is_barrier());
        assert_eq!(trace.first_complete_stage(), Some(1));
    }

    #[test]
    fn knowledge_is_monotone() {
        let trace = knowledge_steps(6, &linear_stages(6));
        for w in trace.states.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            // prev ⊆ next
            assert_eq!(prev.and(next), *prev);
        }
    }

    #[test]
    fn dissemination_pattern_closes_without_departure() {
        // dlog2(n)e stages; stage s: i signals (i + 2^s) mod n.
        let n = 6;
        let mut stages = Vec::new();
        let mut step = 1;
        while step < n {
            let mut s = BoolMatrix::zeros(n);
            for i in 0..n {
                s.set(i, (i + step) % n, true);
            }
            stages.push(s);
            step *= 2;
        }
        let trace = knowledge_steps(n, &stages);
        assert!(trace.is_barrier());
        // No earlier prefix closes: first completion is at the final stage.
        assert_eq!(trace.first_complete_stage(), Some(stages.len() - 1));
    }

    #[test]
    fn single_process_is_trivially_synchronized() {
        let k = knowledge_closure(1, &[]);
        assert!(k.is_all_true());
    }

    #[test]
    #[should_panic(expected = "stage dimension")]
    fn dimension_mismatch_panics() {
        knowledge_closure(3, &[BoolMatrix::zeros(4)]);
    }

    fn dissemination_stages(n: usize) -> Vec<BoolMatrix> {
        let mut stages = Vec::new();
        let mut step = 1;
        while step < n {
            let mut s = BoolMatrix::zeros(n);
            for i in 0..n {
                s.set(i, (i + step) % n, true);
            }
            stages.push(s);
            step *= 2;
        }
        stages
    }

    #[test]
    fn workspace_closure_matches_free_function() {
        let mut ws = ClosureWorkspace::new();
        for n in [1, 2, 6, 64, 65, 130] {
            for stages in [linear_stages(n), dissemination_stages(n)] {
                let expected = knowledge_closure(n, &stages);
                // The same workspace is reused across sizes on purpose.
                assert_eq!(ws.closure(n, &stages), &expected, "n={n}");
                assert_eq!(ws.is_barrier(n, &stages), expected.is_all_true());
            }
        }
    }

    #[test]
    fn workspace_closure_on_incomplete_sequences() {
        let mut ws = ClosureWorkspace::new();
        let stages = linear_stages(9);
        let arrival_only = &stages[..1];
        assert_eq!(
            ws.closure(9, arrival_only),
            &knowledge_closure(9, arrival_only)
        );
        assert!(!ws.is_barrier(9, arrival_only));
        assert_eq!(ws.closure(9, &[]), &BoolMatrix::identity(9));
    }

    #[test]
    fn workspace_mixed_degree_stage_takes_both_paths() {
        // A departure-style stage: rank 0 signals everyone (dense row,
        // word-OR path) while all others are silent; preceded by a sparse
        // arrival so the scatter path runs too.
        let n = 200;
        let stages = linear_stages(n);
        let mut ws = ClosureWorkspace::new();
        assert!(ws.is_barrier(n, &stages));
        assert_eq!(
            ws.closure(n, &stages[..1]),
            &knowledge_closure(n, &stages[..1])
        );
    }

    #[test]
    fn workspace_early_exit_ignores_trailing_stages() {
        let n = 8;
        let mut stages = dissemination_stages(n);
        // Append a stage of the wrong flavour after saturation: the early
        // exit must not change the outcome.
        stages.push(BoolMatrix::identity(n));
        stages.push(BoolMatrix::zeros(n));
        let mut ws = ClosureWorkspace::new();
        assert!(ws.is_barrier(n, &stages));
        assert!(ws.closure(n, &stages).is_all_true());
    }

    #[test]
    fn closure_excluding_matches_materialized_removal() {
        let mut ws = ClosureWorkspace::new();
        for n in [3usize, 6, 9, 70] {
            let stages = dissemination_stages(n);
            for (si, s) in stages.iter().enumerate() {
                for (src, dst) in s.edges().take(6) {
                    // Reference: clone the stage matrix and clear the bit.
                    let mut modified: Vec<BoolMatrix> = stages.clone();
                    modified[si].set(src, dst, false);
                    let expected = knowledge_closure(n, &modified);
                    let got = ws.closure_excluding(n, &stages, si, (src, dst));
                    assert_eq!(got, &expected, "n={n} stage={si} edge=({src},{dst})");
                }
            }
        }
    }

    #[test]
    fn closure_excluding_dense_sender_takes_scatter_path() {
        // Linear departure: rank 0 signals every other rank (dense row, the
        // word-OR fallback) — masking one of its signals must force the
        // scatter path and leave exactly that target short of knowledge.
        let n = 130;
        let stages = linear_stages(n);
        let mut ws = ClosureWorkspace::new();
        assert!(ws.closure(n, &stages).is_all_true());
        let masked = ws.closure_excluding(n, &stages, 1, (0, 77));
        assert!(!masked.is_all_true());
        assert!(!masked.get(1, 77), "77 must not learn of rank 1's arrival");
        assert!(masked.get(1, 76));
    }

    #[test]
    fn closure_excluding_nonexistent_edge_is_identity_operation() {
        let n = 8;
        let stages = dissemination_stages(n);
        let mut ws = ClosureWorkspace::new();
        let expected = knowledge_closure(n, &stages);
        // (0, 3) is not a signal of stage 0 (stage 0 is i -> i+1).
        assert_eq!(ws.closure_excluding(n, &stages, 0, (0, 3)), &expected);
        // Out-of-range stage index: nothing skipped.
        assert_eq!(ws.closure_excluding(n, &stages, 99, (0, 1)), &expected);
    }

    #[test]
    fn trace_recompute_reuses_states() {
        let mut trace = KnowledgeTrace::new();
        trace.recompute(6, &linear_stages(6));
        let fresh = knowledge_steps(6, &linear_stages(6));
        assert_eq!(trace.states.len(), fresh.states.len());
        for (a, b) in trace.states.iter().zip(&fresh.states) {
            assert_eq!(a, b);
        }
        // Recomputing a shorter sequence shrinks the trace.
        trace.recompute(4, &linear_stages(4)[..1]);
        assert_eq!(trace.states.len(), 2);
        assert_eq!(trace.states[0], BoolMatrix::identity(4));
        assert!(!trace.is_barrier());
    }
}
