//! Knowledge-closure computations for barrier verification.
//!
//! The paper's Eq. 3 tracks which arrivals each process knows about after
//! every stage: starting from `K₋₁ = I` (each process knows of its own
//! arrival), each stage `S_a` propagates knowledge along its signals:
//!
//! ```text
//! K_a = K_{a-1} + K_{a-1} · S_a        (boolean semiring)
//! ```
//!
//! A stage sequence is a barrier iff the final `K_k` is the all-ones matrix.
//! Note the orientation: entry `K[i][j]` set means *j knows that i arrived*
//! (row i's knowledge has reached column j), because a signal `i → j`
//! carries everything its sender knows.

use crate::BoolMatrix;

/// The per-stage knowledge matrices of a stage sequence, starting with the
/// identity (before any stage) and ending with the final knowledge state.
pub struct KnowledgeTrace {
    /// `states[a]` is `K_{a-1}` in the paper's numbering; `states[0] = I`.
    pub states: Vec<BoolMatrix>,
}

impl KnowledgeTrace {
    /// Final knowledge matrix after all stages.
    pub fn last(&self) -> &BoolMatrix {
        self.states
            .last()
            .expect("trace always has the identity state")
    }

    /// True if the traced sequence synchronizes all processes.
    pub fn is_barrier(&self) -> bool {
        self.last().is_all_true()
    }

    /// The first stage index after which knowledge is complete, if any.
    /// (`Some(0)` would mean complete after stage 0, i.e. `states[1]` full.)
    pub fn first_complete_stage(&self) -> Option<usize> {
        self.states.iter().skip(1).position(|k| k.is_all_true())
    }
}

/// Runs Eq. 3 over `stages` and returns only the final knowledge matrix.
pub fn knowledge_closure(n: usize, stages: &[BoolMatrix]) -> BoolMatrix {
    let mut k = BoolMatrix::identity(n);
    for s in stages {
        assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
        let flow = k.and_or_product(s);
        k.or_assign(&flow);
    }
    k
}

/// Runs Eq. 3 over `stages`, recording the knowledge matrix after every
/// stage (plus the initial identity).
pub fn knowledge_steps(n: usize, stages: &[BoolMatrix]) -> KnowledgeTrace {
    let mut states = Vec::with_capacity(stages.len() + 1);
    let mut k = BoolMatrix::identity(n);
    states.push(k.clone());
    for s in stages {
        assert_eq!(s.n(), n, "stage dimension {} != {}", s.n(), n);
        let flow = k.and_or_product(s);
        k.or_assign(&flow);
        states.push(k.clone());
    }
    KnowledgeTrace { states }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_stages(n: usize) -> Vec<BoolMatrix> {
        // All non-zero ranks signal rank 0, then rank 0 signals everyone.
        let mut s0 = BoolMatrix::zeros(n);
        for i in 1..n {
            s0.set(i, 0, true);
        }
        let s1 = s0.transpose();
        vec![s0, s1]
    }

    #[test]
    fn linear_barrier_closes() {
        for n in [1, 2, 3, 4, 7, 65] {
            let k = knowledge_closure(n, &linear_stages(n));
            assert!(k.is_all_true(), "linear barrier failed for n={n}");
        }
    }

    #[test]
    fn arrival_only_is_not_a_barrier() {
        let stages = linear_stages(5);
        let k = knowledge_closure(5, &stages[..1]);
        assert!(!k.is_all_true());
        // Rank 0 knows all arrivals...
        for i in 0..5 {
            assert!(k.get(i, 0), "rank 0 should know arrival of {i}");
        }
        // ...but rank 1 does not know rank 2 arrived.
        assert!(!k.get(2, 1));
    }

    #[test]
    fn empty_stage_list_keeps_identity() {
        let k = knowledge_closure(4, &[]);
        assert_eq!(k, BoolMatrix::identity(4));
    }

    #[test]
    fn trace_records_progress() {
        let trace = knowledge_steps(4, &linear_stages(4));
        assert_eq!(trace.states.len(), 3);
        assert_eq!(trace.states[0], BoolMatrix::identity(4));
        assert!(!trace.states[1].is_all_true());
        assert!(trace.states[2].is_all_true());
        assert!(trace.is_barrier());
        assert_eq!(trace.first_complete_stage(), Some(1));
    }

    #[test]
    fn knowledge_is_monotone() {
        let trace = knowledge_steps(6, &linear_stages(6));
        for w in trace.states.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            // prev ⊆ next
            assert_eq!(prev.and(next), *prev);
        }
    }

    #[test]
    fn dissemination_pattern_closes_without_departure() {
        // dlog2(n)e stages; stage s: i signals (i + 2^s) mod n.
        let n = 6;
        let mut stages = Vec::new();
        let mut step = 1;
        while step < n {
            let mut s = BoolMatrix::zeros(n);
            for i in 0..n {
                s.set(i, (i + step) % n, true);
            }
            stages.push(s);
            step *= 2;
        }
        let trace = knowledge_steps(n, &stages);
        assert!(trace.is_barrier());
        // No earlier prefix closes: first completion is at the final stage.
        assert_eq!(trace.first_complete_stage(), Some(stages.len() - 1));
    }

    #[test]
    fn single_process_is_trivially_synchronized() {
        let k = knowledge_closure(1, &[]);
        assert!(k.is_all_true());
    }

    #[test]
    #[should_panic(expected = "stage dimension")]
    fn dimension_mismatch_panics() {
        knowledge_closure(3, &[BoolMatrix::zeros(4)]);
    }
}
