//! Row-major dense matrices, used with `f64` entries for the topological
//! cost matrices `O` (startup overheads) and `L` (per-message latencies).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A square row-major dense matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> DenseMatrix<T> {
    /// Creates an `n × n` matrix filled with `T::default()`.
    pub fn new(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![T::default(); n * n],
        }
    }

    /// Creates an `n × n` matrix filled with `value`.
    pub fn filled(n: usize, value: T) -> Self {
        DenseMatrix {
            n,
            data: vec![value; n * n],
        }
    }
}

impl<T> DenseMatrix<T> {
    /// Builds from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            n * n,
            "expected {} entries, got {}",
            n * n,
            data.len()
        );
        DenseMatrix { n, data }
    }

    /// Builds entry-by-entry from a function of `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        DenseMatrix { n, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Flat row-major view of all entries.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> DenseMatrix<U> {
        DenseMatrix {
            n: self.n,
            data: self.data.iter().map(&mut f).collect(),
        }
    }
}

impl<T: Clone> DenseMatrix<T> {
    /// Transpose.
    pub fn transpose(&self) -> Self {
        let n = self.n;
        DenseMatrix::from_fn(n, |i, j| self[(j, i)].clone())
    }

    /// Extracts the submatrix over `indices` (in the given order).
    pub fn submatrix(&self, indices: &[usize]) -> Self {
        DenseMatrix::from_fn(indices.len(), |i, j| self[(indices[i], indices[j])].clone())
    }
}

impl DenseMatrix<f64> {
    /// Maximum finite entry, or `None` for an empty matrix.
    pub fn max(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Minimum finite entry, or `None` for an empty matrix.
    pub fn min(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Minimum finite off-diagonal entry, or `None` if there is none.
    pub fn min_off_diagonal(&self) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self[(i, j)].is_finite() {
                    acc = Some(acc.map_or(self[(i, j)], |a| a.min(self[(i, j)])));
                }
            }
        }
        acc
    }

    /// Maximum finite off-diagonal entry, or `None` if there is none.
    pub fn max_off_diagonal(&self) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self[(i, j)].is_finite() {
                    acc = Some(acc.map_or(self[(i, j)], |a| a.max(self[(i, j)])));
                }
            }
        }
        acc
    }

    /// Mean of the entries selected by `pred(row, col)`; `None` if empty.
    pub fn mean_where(&self, mut pred: impl FnMut(usize, usize) -> bool) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in 0..self.n {
                if pred(i, j) {
                    sum += self[(i, j)];
                    count += 1;
                }
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Symmetrizes in place: both `(i,j)` and `(j,i)` become their mean.
    ///
    /// The paper assumes `O_ij = O_ji` (symmetric links) so that round-trip
    /// cost is twice one-way cost; measured estimates are symmetrized the
    /// same way before clustering.
    pub fn symmetrize(&mut self) {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let m = (self[(i, j)] + self[(j, i)]) / 2.0;
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Returns true if the matrix is exactly symmetric.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self[(i, j)] != self[(j, i)] {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute relative deviation from symmetry,
    /// `max |a_ij - a_ji| / max(|a_ij|, |a_ji|, eps)`.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let (a, b) = (self[(i, j)], self[(j, i)]);
                let denom = a.abs().max(b.abs()).max(1e-300);
                worst = worst.max((a - b).abs() / denom);
            }
        }
        worst
    }
}

impl<T> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        &self.data[i * self.n + j]
    }
}

impl<T> IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        &mut self.data[i * self.n + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.n, self.n)?;
        for i in 0..self.n {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_default_filled() {
        let m: DenseMatrix<f64> = DenseMatrix::new(3);
        assert_eq!(m.as_slice(), &[0.0; 9]);
    }

    #[test]
    fn from_fn_row_major() {
        let m = DenseMatrix::from_fn(3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(2), &[20.0, 21.0, 22.0]);
    }

    #[test]
    fn transpose_swaps() {
        let m = DenseMatrix::from_fn(4, |i, j| (i * 4 + j) as f64);
        let t = m.transpose();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn submatrix_selects() {
        let m = DenseMatrix::from_fn(5, |i, j| (i * 5 + j) as f64);
        let s = m.submatrix(&[4, 0]);
        assert_eq!(s[(0, 0)], 24.0);
        assert_eq!(s[(0, 1)], 20.0);
        assert_eq!(s[(1, 0)], 4.0);
        assert_eq!(s[(1, 1)], 0.0);
    }

    #[test]
    fn min_max_helpers() {
        let m = DenseMatrix::from_vec(2, vec![5.0, 1.0, 9.0, 0.5]);
        assert_eq!(m.max(), Some(9.0));
        assert_eq!(m.min(), Some(0.5));
        assert_eq!(m.min_off_diagonal(), Some(1.0));
        assert_eq!(m.max_off_diagonal(), Some(9.0));
    }

    #[test]
    fn mean_where_off_diagonal() {
        let m = DenseMatrix::from_vec(2, vec![100.0, 2.0, 4.0, 100.0]);
        assert_eq!(m.mean_where(|i, j| i != j), Some(3.0));
        assert_eq!(m.mean_where(|_, _| false), None);
    }

    #[test]
    fn symmetrize_and_checks() {
        let mut m = DenseMatrix::from_vec(2, vec![0.0, 2.0, 4.0, 0.0]);
        assert!(!m.is_symmetric());
        assert!(m.asymmetry() > 0.4);
        m.symmetrize();
        assert!(m.is_symmetric());
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.asymmetry(), 0.0);
    }

    #[test]
    fn map_changes_type() {
        let m = DenseMatrix::from_vec(2, vec![1.0f64, 2.0, 3.0, 4.0]);
        let b = m.map(|&v| v > 2.5);
        assert!(!b[(0, 0)] && !b[(0, 1)]);
        assert!(b[(1, 0)] && b[(1, 1)]);
    }

    #[test]
    fn empty_matrix_extremes_are_none() {
        let m: DenseMatrix<f64> = DenseMatrix::new(0);
        assert_eq!(m.max(), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.min_off_diagonal(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m: DenseMatrix<f64> = DenseMatrix::new(2);
        let _ = m[(2, 0)];
    }
}
