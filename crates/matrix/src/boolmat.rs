//! Bitset-backed square boolean matrices.
//!
//! Rows are stored as contiguous `u64` words, so the and/or product that
//! drives barrier verification reduces to word-wise OR of whole rows: for
//! each set bit `(i, k)` of the left operand, row `k` of the right operand
//! is OR-ed into row `i` of the result. For the `P ≤ 128` scales evaluated
//! in the paper a row is one or two words, making verification effectively
//! linear in the number of signals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A square boolean matrix stored as packed 64-bit words per row.
///
/// The entry `(row, col)` is interpreted throughout this workspace as
/// "`row` signals `col`" (an edge of a barrier dependency graph layer).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// Creates the `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BoolMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an edge list of `(from, to)` pairs.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = Self::zeros(n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    /// Builds a matrix from nested boolean rows (row-major), mainly for
    /// tests and doc examples mirroring the paper's figures.
    ///
    /// # Panics
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let n = rows.len();
        let mut m = Self::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has length {} != {n}", row.len());
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes of heap the packed bit storage occupies. Capacity, not
    /// length: this feeds cache budgets, which must account for what the
    /// allocator actually holds.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Borrow of row `i`'s words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[self.row_range(i)]
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Returns true if every entry is set — the paper's criterion for a
    /// signal-pattern sequence to constitute a barrier (all processes know
    /// of all arrivals).
    pub fn is_all_true(&self) -> bool {
        (0..self.n).all(|i| self.row_is_full(i))
    }

    /// Returns true if every entry of row `i` is set, comparing whole
    /// words against the all-ones pattern instead of popcounting.
    #[inline]
    pub fn row_is_full(&self, i: usize) -> bool {
        let row = self.row(i);
        let full_words = self.n / 64;
        row[..full_words].iter().all(|&w| w == !0)
            && (self.n.is_multiple_of(64) || row[full_words] == (1u64 << (self.n % 64)) - 1)
    }

    /// Returns true if no entry is set (a no-op stage).
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of set entries in row `i` (out-degree of `i` in this layer).
    pub fn row_popcount(&self, i: usize) -> usize {
        self.row(i).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total number of set entries (signals in this stage).
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over set columns of row `i`, ascending.
    pub fn row_iter(&self, i: usize) -> RowIter<'_> {
        RowIter {
            words: self.row(i),
            word_idx: 0,
            current: self.row(i).first().copied().unwrap_or(0),
            n: self.n,
        }
    }

    /// Materializes the set columns of row `i`, ascending, into `out`
    /// (clearing it first).
    ///
    /// This is the allocation-free analogue of `row_iter(i).collect()`:
    /// hot prediction paths call it with a reused buffer, and the scan
    /// works a whole `u64` word at a time.
    pub fn row_targets_into(&self, i: usize, out: &mut Vec<usize>) {
        out.clear();
        for (w_idx, &word) in self.row(i).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let idx = w_idx * 64 + bit;
                // Bits beyond n should never be set, but guard anyway.
                if idx < self.n {
                    out.push(idx);
                }
            }
        }
    }

    /// Iterator over set rows of column `j` (in-neighbours of `j`),
    /// ascending. Strides directly over the column's word in each row, so
    /// advancing costs one shift-and-test per row instead of a bounds-checked
    /// `get`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(j < self.n, "column {j} out of range {}", self.n);
        let jb = (j % 64) as u32;
        self.bits[j / 64..]
            .iter()
            .step_by(self.words_per_row)
            .enumerate()
            .filter_map(move |(i, &w)| (w >> jb & 1 == 1).then_some(i))
    }

    /// True if column `j` has any set bit (any in-neighbour).
    pub fn col_any(&self, j: usize) -> bool {
        assert!(j < self.n, "column {j} out of range {}", self.n);
        let jb = (j % 64) as u32;
        self.bits[j / 64..]
            .iter()
            .step_by(self.words_per_row)
            .any(|&w| w >> jb & 1 == 1)
    }

    /// Iterator over all set `(row, col)` pairs in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_iter(i).map(move |j| (i, j)))
    }

    /// Transpose. Barrier departure phases are the transposed arrival
    /// matrices applied in reverse order (paper §V-B).
    ///
    /// Works on 64×64 bit tiles: gather one word-column of up to 64 rows,
    /// transpose the tile in registers, scatter it to one word-column of
    /// the result. All-zero tiles (the common case for sparse stage
    /// matrices) are skipped after the gather.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.n);
        let wpr = self.words_per_row;
        let word_blocks = self.n.div_ceil(64);
        let mut tile = [0u64; 64];
        for bi in 0..word_blocks {
            let rows = (self.n - bi * 64).min(64);
            for bj in 0..word_blocks {
                let mut any = 0u64;
                for (r, slot) in tile[..rows].iter_mut().enumerate() {
                    let w = self.bits[(bi * 64 + r) * wpr + bj];
                    *slot = w;
                    any |= w;
                }
                if any == 0 {
                    continue;
                }
                tile[rows..].fill(0);
                transpose64(&mut tile);
                let cols = (self.n - bj * 64).min(64);
                for (c, &w) in tile[..cols].iter().enumerate() {
                    if w != 0 {
                        t.bits[(bj * 64 + c) * wpr + bi] = w;
                    }
                }
            }
        }
        t
    }

    /// Saturating (boolean OR) sum: `self | other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// In-place boolean OR.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        // Row-skip: stage matrices merged during hierarchical composition
        // are zero outside one small cluster's rows, so most destination
        // rows need neither the read-modify-write nor the dirty cache
        // line. The source-row scan touches memory that the OR would have
        // read anyway, so the dense case loses nothing.
        for (dst, src) in self
            .bits
            .chunks_exact_mut(self.words_per_row)
            .zip(other.bits.chunks_exact(self.words_per_row))
        {
            if src.iter().any(|&w| w != 0) {
                for (a, b) in dst.iter_mut().zip(src) {
                    *a |= b;
                }
            }
        }
    }

    /// Boolean AND.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
        out
    }

    /// Boolean (and/or semiring) matrix product `self · other`.
    ///
    /// Entry `(i, j)` of the result is set iff there is some `k` with
    /// `self[i][k] ∧ other[k][j]` — i.e. knowledge held at `i` flows to `j`
    /// through a stage-`other` signal from `k`.
    pub fn and_or_product(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.n);
        self.and_or_product_into(other, &mut out);
        out
    }

    /// [`BoolMatrix::and_or_product`] into a caller-provided matrix whose
    /// storage is reused (it is resized and cleared first).
    pub fn and_or_product_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        out.reset_zeros(self.n);
        self.accumulate_product(other, out);
    }

    /// Accumulating product: `out |= self · other` without clearing `out`.
    ///
    /// The Eq. 3 update `K_a = K_{a-1} + K_{a-1}·S_a` becomes a single
    /// allocation-free call with `out` holding a copy of `K_{a-1}` and
    /// `self` the snapshot it was copied from.
    pub fn and_or_accumulate_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        assert_eq!(self.n, out.n, "dimension mismatch {} vs {}", self.n, out.n);
        self.accumulate_product(other, out);
    }

    /// Cache-blocked kernel behind the product entry points.
    ///
    /// The naive loop visits `other`'s rows in whatever order row `i` of
    /// `self` selects them; at P = 1024 those rows span a 128 KiB matrix
    /// and most ORs miss L1. Blocking over bands of 256 source rows (one
    /// 32 KiB slab at 16 words/row) keeps a band resident while every
    /// output row streams through it once.
    fn accumulate_product(&self, other: &Self, out: &mut Self) {
        const BAND_WORDS: usize = 4;
        let n = self.n;
        let wpr = self.words_per_row;
        let mut band = 0;
        while band < wpr {
            let band_end = (band + BAND_WORDS).min(wpr);
            for i in 0..n {
                let row_start = i * wpr;
                let sel = &self.bits[row_start + band..row_start + band_end];
                if sel.iter().all(|&w| w == 0) {
                    continue;
                }
                for (w_idx, &word) in sel.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let k = (band + w_idx) * 64 + w.trailing_zeros() as usize;
                        w &= w - 1;
                        debug_assert!(k < n, "padding bit set in row {i}");
                        let src = other.row(k);
                        let dst = &mut out.bits[row_start..row_start + wpr];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d |= s;
                        }
                    }
                }
            }
            band = band_end;
        }
    }

    /// Returns the set of rows with at least one set entry (active senders).
    pub fn active_rows(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.active_rows_into(&mut out);
        out
    }

    /// Allocation-free [`BoolMatrix::active_rows`]: fills `out` (cleared
    /// first) with every row that has a set entry, scanning whole words.
    pub fn active_rows_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for i in 0..self.n {
            if self.row(i).iter().any(|&w| w != 0) {
                out.push(i);
            }
        }
    }

    /// First row whose diagonal entry is set, touching one word per row.
    pub fn first_self_loop(&self) -> Option<usize> {
        (0..self.n).find(|&i| self.bits[i * self.words_per_row + i / 64] >> (i % 64) & 1 == 1)
    }

    /// Overwrites `self` with a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Self) {
        self.n = src.n;
        self.words_per_row = src.words_per_row;
        self.bits.clear();
        self.bits.extend_from_slice(&src.bits);
    }

    /// Resets to the `n × n` zero matrix, reusing the allocation.
    pub fn reset_zeros(&mut self, n: usize) {
        self.n = n;
        self.words_per_row = n.div_ceil(64).max(1);
        self.bits.clear();
        self.bits.resize(self.words_per_row * n, 0);
    }

    /// Resets to the `n × n` identity, reusing the allocation.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_zeros(n);
        for i in 0..n {
            self.bits[i * self.words_per_row + i / 64] |= 1 << (i % 64);
        }
    }

    /// Words-per-row stride of the packed representation.
    #[inline]
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Mutable borrow of row `i`'s words.
    #[inline]
    pub(crate) fn row_mut(&mut self, i: usize) -> &mut [u64] {
        let r = self.row_range(i);
        &mut self.bits[r]
    }

    /// Embeds this matrix into a larger `m × m` matrix, mapping local index
    /// `k` to global index `index_map[k]`.
    ///
    /// Used when a local barrier over a rank cluster is lifted into the
    /// full-system signal pattern (paper §VII-B).
    ///
    /// # Panics
    /// Panics if `index_map.len() != self.n`, if `m` is too small, or if the
    /// map contains duplicate targets.
    pub fn embed(&self, m: usize, index_map: &[usize]) -> Self {
        assert_eq!(index_map.len(), self.n, "index map length mismatch");
        let mut seen = vec![false; m];
        for &g in index_map {
            assert!(g < m, "mapped index {g} out of range {m}");
            assert!(!seen[g], "duplicate mapped index {g}");
            seen[g] = true;
        }
        let mut out = Self::zeros(m);
        // Maximal runs of consecutive locals mapping to consecutive globals
        // move as funnel-shifted word copies instead of one set() per bit.
        let runs = ascending_runs(index_map);
        for (li, &gi) in index_map.iter().enumerate() {
            let src = self.row(li);
            if src.iter().all(|&w| w == 0) {
                continue;
            }
            let dst_start = gi * out.words_per_row;
            let dst = &mut out.bits[dst_start..dst_start + out.words_per_row];
            for &(start, len) in &runs {
                or_bit_run(src, start, dst, index_map[start], len);
            }
        }
        out
    }

    /// Extracts the submatrix over `indices` (in the given order).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn submatrix(&self, indices: &[usize]) -> Self {
        for &g in indices {
            assert!(g < self.n, "index {g} out of range {}", self.n);
        }
        let mut out = Self::zeros(indices.len());
        let runs = ascending_runs(indices);
        for (li, &gi) in indices.iter().enumerate() {
            let src = self.row(gi);
            if src.iter().all(|&w| w == 0) {
                continue;
            }
            let dst_start = li * out.words_per_row;
            let dst = &mut out.bits[dst_start..dst_start + out.words_per_row];
            for &(start, len) in &runs {
                or_bit_run(src, indices[start], dst, start, len);
            }
        }
        out
    }
}

/// In-place transpose of a 64×64 bit tile stored as 64 words, bit `c` of
/// word `r` holding element `(r, c)` (LSB-first, matching [`BoolMatrix`]).
///
/// Classic recursive block-swap: at each level, the quadrant with row bit
/// `j` clear / column bit `j` set trades places with its mirror.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Decomposes `map` into maximal runs of consecutive ascending values,
/// as `(start_position, length)` pairs covering `map` left to right.
fn ascending_runs(map: &[usize]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut s = 0;
    while s < map.len() {
        let mut e = s + 1;
        while e < map.len() && map[e] == map[e - 1] + 1 {
            e += 1;
        }
        runs.push((s, e - s));
        s = e;
    }
    runs
}

/// ORs the bit range `src_off..src_off + len` of `src` into `dst` starting
/// at bit `dst_off`, moving up to a whole word per step via funnel shifts.
fn or_bit_run(src: &[u64], src_off: usize, dst: &mut [u64], dst_off: usize, len: usize) {
    let mut done = 0;
    while done < len {
        let (sw, sb) = ((src_off + done) / 64, (src_off + done) % 64);
        let (dw, db) = ((dst_off + done) / 64, (dst_off + done) % 64);
        let take = (64 - sb).min(64 - db).min(len - done);
        let mask = if take == 64 { !0 } else { (1u64 << take) - 1 };
        dst[dw] |= ((src[sw] >> sb) & mask) << db;
        done += take;
    }
}

/// Iterator over the set bits of one row.
pub struct RowIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    n: usize,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.n {
                    return Some(idx);
                }
                // Bits beyond n should never be set, but guard anyway.
                continue;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix {}x{} [", self.n, self.n)?;
        for i in 0..self.n {
            write!(f, "  ")?;
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            if i + 1 < self.n {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let m = BoolMatrix::zeros(5);
        assert!(m.is_zero());
        assert!(!m.is_all_true());
        assert_eq!(m.popcount(), 0);
    }

    #[test]
    fn identity_diagonal() {
        let m = BoolMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), i == j);
            }
        }
        assert_eq!(m.popcount(), 4);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BoolMatrix::zeros(70); // spans two words per row
        m.set(69, 69, true);
        m.set(69, 0, true);
        m.set(0, 64, true);
        assert!(m.get(69, 69));
        assert!(m.get(69, 0));
        assert!(m.get(0, 64));
        assert!(!m.get(0, 63));
        m.set(69, 69, false);
        assert!(!m.get(69, 69));
    }

    #[test]
    fn row_iter_crosses_word_boundary() {
        let mut m = BoolMatrix::zeros(130);
        for j in [0, 63, 64, 127, 128, 129] {
            m.set(1, j, true);
        }
        let cols: Vec<usize> = m.row_iter(1).collect();
        assert_eq!(cols, vec![0, 63, 64, 127, 128, 129]);
    }

    #[test]
    fn row_targets_into_matches_row_iter() {
        let mut m = BoolMatrix::zeros(130);
        for j in [0, 63, 64, 127, 128, 129] {
            m.set(1, j, true);
        }
        let mut buf = vec![99, 98]; // stale contents must be discarded
        m.row_targets_into(1, &mut buf);
        assert_eq!(buf, m.row_iter(1).collect::<Vec<_>>());
        m.row_targets_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn col_iter_matches_transpose_row() {
        let m = BoolMatrix::from_edges(6, &[(0, 3), (2, 3), (5, 3), (3, 1)]);
        let t = m.transpose();
        let via_col: Vec<usize> = m.col_iter(3).collect();
        let via_row: Vec<usize> = t.row_iter(3).collect();
        assert_eq!(via_col, via_row);
        assert_eq!(via_col, vec![0, 2, 5]);
    }

    #[test]
    fn transpose_involution() {
        let m = BoolMatrix::from_edges(9, &[(0, 1), (1, 2), (8, 0), (4, 4)]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn or_and_combinations() {
        let a = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let b = BoolMatrix::from_edges(3, &[(1, 2), (2, 0)]);
        let o = a.or(&b);
        assert!(o.get(0, 1) && o.get(1, 2) && o.get(2, 0));
        assert_eq!(o.popcount(), 3);
        let n = a.and(&b);
        assert!(n.get(1, 2));
        assert_eq!(n.popcount(), 1);
    }

    #[test]
    fn product_is_reachability_step() {
        // 0 -> 1 -> 2: knowledge at 0 after "0 knows itself" times S(0->1)
        let s = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let k = BoolMatrix::identity(3);
        let k1 = k.and_or_product(&s);
        // I·S = S
        assert_eq!(k1, s);
        // Two-step: (I+S)·S includes 0->2 through 1.
        let k_acc = k.or(&s);
        let k2 = k_acc.and_or_product(&s);
        assert!(k2.get(0, 2));
    }

    #[test]
    fn product_dimension_128_boundary() {
        // Exactly two words per row.
        let n = 128;
        let mut s = BoolMatrix::zeros(n);
        for i in 0..n - 1 {
            s.set(i, i + 1, true);
        }
        let p = s.and_or_product(&s);
        assert!(p.get(0, 2));
        assert!(!p.get(0, 1));
        assert!(p.get(125, 127));
    }

    #[test]
    fn linear_barrier_matrices_from_paper_fig2() {
        // Figure 2: S0 has ranks 1..3 signalling rank 0; S1 = S0^T.
        let s0 = BoolMatrix::from_rows(&[
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
        ]);
        let s1 = s0.transpose();
        for j in 1..4 {
            assert!(s1.get(0, j));
        }
        assert_eq!(s1.row_popcount(0), 3);
    }

    #[test]
    fn embed_maps_edges() {
        let local = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let global = local.embed(10, &[7, 2, 5]);
        assert!(global.get(7, 2));
        assert!(global.get(2, 5));
        assert_eq!(global.popcount(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate mapped index")]
    fn embed_rejects_duplicates() {
        let local = BoolMatrix::zeros(2);
        local.embed(5, &[1, 1]);
    }

    #[test]
    fn submatrix_inverse_of_embed() {
        let local = BoolMatrix::from_edges(4, &[(0, 3), (3, 1), (2, 2)]);
        let map = [9, 0, 4, 6];
        let global = local.embed(12, &map);
        assert_eq!(global.submatrix(&map), local);
    }

    #[test]
    fn active_rows_reports_senders() {
        let m = BoolMatrix::from_edges(5, &[(1, 0), (3, 0), (3, 2)]);
        assert_eq!(m.active_rows(), vec![1, 3]);
    }

    #[test]
    fn display_renders_grid() {
        let m = BoolMatrix::from_edges(2, &[(0, 1)]);
        assert_eq!(format!("{m}"), "0 1\n0 0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BoolMatrix::zeros(3).get(3, 0);
    }

    #[test]
    fn zero_dimension_matrix() {
        let m = BoolMatrix::zeros(0);
        assert!(m.is_zero());
        // An empty matrix vacuously satisfies "all true".
        assert!(m.is_all_true());
        assert_eq!(m.edges().count(), 0);
    }

    /// Deterministic pseudo-random edge set, dense enough to exercise every
    /// word of every row at the given size.
    fn scrambled(n: usize, seed: u64) -> BoolMatrix {
        let mut m = BoolMatrix::zeros(n);
        let mut x = seed | 1;
        for i in 0..n {
            for j in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x >> 61 == 0 {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    #[test]
    fn transpose_matches_get_swap_across_word_boundaries() {
        for n in [1, 5, 63, 64, 65, 128, 130] {
            let m = scrambled(n, n as u64);
            let t = m.transpose();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(m.get(i, j), t.get(j, i), "n={n} at ({i},{j})");
                }
            }
            assert_eq!(t.transpose(), m, "involution failed for n={n}");
        }
    }

    #[test]
    fn product_into_matches_product_and_reuses_buffer() {
        let a = scrambled(130, 7);
        let b = scrambled(130, 9);
        let mut out = BoolMatrix::zeros(3); // wrong size: must be resized
        a.and_or_product_into(&b, &mut out);
        assert_eq!(out, a.and_or_product(&b));
        // A second call with a different pair reuses the storage.
        let c = scrambled(130, 11);
        a.and_or_product_into(&c, &mut out);
        assert_eq!(out, a.and_or_product(&c));
    }

    #[test]
    fn accumulate_into_is_eq3_update() {
        let k = scrambled(97, 3);
        let s = scrambled(97, 5);
        let mut acc = k.clone();
        k.and_or_accumulate_into(&s, &mut acc);
        assert_eq!(acc, k.or(&k.and_or_product(&s)));
    }

    #[test]
    fn embed_scattered_map_crosses_words() {
        let local = scrambled(70, 13);
        // Mix of runs and jumps, straddling the 64-bit boundary of the host.
        let map: Vec<usize> = (0..70)
            .map(|k| if k < 35 { k * 2 } else { 29 + k * 2 })
            .collect();
        let global = local.embed(200, &map);
        let mut expected = BoolMatrix::zeros(200);
        for (i, j) in local.edges() {
            expected.set(map[i], map[j], true);
        }
        assert_eq!(global, expected);
        assert_eq!(global.submatrix(&map), local);
    }

    #[test]
    fn row_is_full_checks_tail_word() {
        for n in [1, 64, 65, 130] {
            let mut m = BoolMatrix::zeros(n);
            for j in 0..n {
                m.set(0, j, true);
            }
            assert!(m.row_is_full(0), "n={n}");
            m.set(0, n - 1, false);
            assert!(!m.row_is_full(0), "n={n}");
        }
    }

    #[test]
    fn col_any_and_active_rows_into() {
        let m = BoolMatrix::from_edges(130, &[(1, 0), (3, 0), (3, 128)]);
        assert!(m.col_any(0));
        assert!(m.col_any(128));
        assert!(!m.col_any(64));
        let mut rows = vec![42]; // stale contents must be discarded
        m.active_rows_into(&mut rows);
        assert_eq!(rows, m.active_rows());
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn first_self_loop_finds_diagonal() {
        let mut m = BoolMatrix::zeros(100);
        assert_eq!(m.first_self_loop(), None);
        m.set(70, 70, true);
        m.set(90, 90, true);
        assert_eq!(m.first_self_loop(), Some(70));
    }

    #[test]
    fn reset_and_copy_reuse_storage() {
        let mut m = BoolMatrix::zeros(130);
        m.reset_identity(70);
        assert_eq!(m, BoolMatrix::identity(70));
        m.reset_zeros(5);
        assert_eq!(m, BoolMatrix::zeros(5));
        let src = scrambled(97, 17);
        m.copy_from(&src);
        assert_eq!(m, src);
    }
}
