//! Bitset-backed square boolean matrices.
//!
//! Rows are stored as contiguous `u64` words, so the and/or product that
//! drives barrier verification reduces to word-wise OR of whole rows: for
//! each set bit `(i, k)` of the left operand, row `k` of the right operand
//! is OR-ed into row `i` of the result. For the `P ≤ 128` scales evaluated
//! in the paper a row is one or two words, making verification effectively
//! linear in the number of signals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A square boolean matrix stored as packed 64-bit words per row.
///
/// The entry `(row, col)` is interpreted throughout this workspace as
/// "`row` signals `col`" (an edge of a barrier dependency graph layer).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// Creates the `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BoolMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an edge list of `(from, to)` pairs.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = Self::zeros(n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    /// Builds a matrix from nested boolean rows (row-major), mainly for
    /// tests and doc examples mirroring the paper's figures.
    ///
    /// # Panics
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: &[Vec<bool>]) -> Self {
        let n = rows.len();
        let mut m = Self::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has length {} != {n}", row.len());
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Borrow of row `i`'s words.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[self.row_range(i)]
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of range {}",
            self.n
        );
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1 << (j % 64);
        } else {
            *w &= !(1 << (j % 64));
        }
    }

    /// Returns true if every entry is set — the paper's criterion for a
    /// signal-pattern sequence to constitute a barrier (all processes know
    /// of all arrivals).
    pub fn is_all_true(&self) -> bool {
        (0..self.n).all(|i| self.row_popcount(i) == self.n)
    }

    /// Returns true if no entry is set (a no-op stage).
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of set entries in row `i` (out-degree of `i` in this layer).
    pub fn row_popcount(&self, i: usize) -> usize {
        self.row(i).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total number of set entries (signals in this stage).
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over set columns of row `i`, ascending.
    pub fn row_iter(&self, i: usize) -> RowIter<'_> {
        RowIter {
            words: self.row(i),
            word_idx: 0,
            current: self.row(i).first().copied().unwrap_or(0),
            n: self.n,
        }
    }

    /// Materializes the set columns of row `i`, ascending, into `out`
    /// (clearing it first).
    ///
    /// This is the allocation-free analogue of `row_iter(i).collect()`:
    /// hot prediction paths call it with a reused buffer, and the scan
    /// works a whole `u64` word at a time.
    pub fn row_targets_into(&self, i: usize, out: &mut Vec<usize>) {
        out.clear();
        for (w_idx, &word) in self.row(i).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let idx = w_idx * 64 + bit;
                // Bits beyond n should never be set, but guard anyway.
                if idx < self.n {
                    out.push(idx);
                }
            }
        }
    }

    /// Iterator over set rows of column `j` (in-neighbours of `j`), ascending.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.get(i, j))
    }

    /// Iterator over all set `(row, col)` pairs in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.row_iter(i).map(move |j| (i, j)))
    }

    /// Transpose. Barrier departure phases are the transposed arrival
    /// matrices applied in reverse order (paper §V-B).
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.n);
        for (i, j) in self.edges() {
            t.set(j, i, true);
        }
        t
    }

    /// Saturating (boolean OR) sum: `self | other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// In-place boolean OR.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Boolean AND.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
        out
    }

    /// Boolean (and/or semiring) matrix product `self · other`.
    ///
    /// Entry `(i, j)` of the result is set iff there is some `k` with
    /// `self[i][k] ∧ other[k][j]` — i.e. knowledge held at `i` flows to `j`
    /// through a stage-`other` signal from `k`.
    pub fn and_or_product(&self, other: &Self) -> Self {
        assert_eq!(
            self.n, other.n,
            "dimension mismatch {} vs {}",
            self.n, other.n
        );
        let mut out = Self::zeros(self.n);
        for i in 0..self.n {
            // OR together the rows of `other` selected by row i of `self`.
            for k in self.row_iter(i) {
                let src_range = other.row_range(k);
                let dst_range = out.row_range(i);
                let (dst, src) = (dst_range.start, src_range.start);
                for w in 0..self.words_per_row {
                    out.bits[dst + w] |= other.bits[src + w];
                }
            }
        }
        out
    }

    /// Returns the set of rows with at least one set entry (active senders).
    pub fn active_rows(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.row_popcount(i) > 0).collect()
    }

    /// Embeds this matrix into a larger `m × m` matrix, mapping local index
    /// `k` to global index `index_map[k]`.
    ///
    /// Used when a local barrier over a rank cluster is lifted into the
    /// full-system signal pattern (paper §VII-B).
    ///
    /// # Panics
    /// Panics if `index_map.len() != self.n`, if `m` is too small, or if the
    /// map contains duplicate targets.
    pub fn embed(&self, m: usize, index_map: &[usize]) -> Self {
        assert_eq!(index_map.len(), self.n, "index map length mismatch");
        let mut seen = vec![false; m];
        for &g in index_map {
            assert!(g < m, "mapped index {g} out of range {m}");
            assert!(!seen[g], "duplicate mapped index {g}");
            seen[g] = true;
        }
        let mut out = Self::zeros(m);
        for (i, j) in self.edges() {
            out.set(index_map[i], index_map[j], true);
        }
        out
    }

    /// Extracts the submatrix over `indices` (in the given order).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn submatrix(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len());
        for (li, &gi) in indices.iter().enumerate() {
            for (lj, &gj) in indices.iter().enumerate() {
                if self.get(gi, gj) {
                    out.set(li, lj, true);
                }
            }
        }
        out
    }
}

/// Iterator over the set bits of one row.
pub struct RowIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    n: usize,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.n {
                    return Some(idx);
                }
                // Bits beyond n should never be set, but guard anyway.
                continue;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix {}x{} [", self.n, self.n)?;
        for i in 0..self.n {
            write!(f, "  ")?;
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", if self.get(i, j) { '1' } else { '0' })?;
            }
            if i + 1 < self.n {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let m = BoolMatrix::zeros(5);
        assert!(m.is_zero());
        assert!(!m.is_all_true());
        assert_eq!(m.popcount(), 0);
    }

    #[test]
    fn identity_diagonal() {
        let m = BoolMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), i == j);
            }
        }
        assert_eq!(m.popcount(), 4);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BoolMatrix::zeros(70); // spans two words per row
        m.set(69, 69, true);
        m.set(69, 0, true);
        m.set(0, 64, true);
        assert!(m.get(69, 69));
        assert!(m.get(69, 0));
        assert!(m.get(0, 64));
        assert!(!m.get(0, 63));
        m.set(69, 69, false);
        assert!(!m.get(69, 69));
    }

    #[test]
    fn row_iter_crosses_word_boundary() {
        let mut m = BoolMatrix::zeros(130);
        for j in [0, 63, 64, 127, 128, 129] {
            m.set(1, j, true);
        }
        let cols: Vec<usize> = m.row_iter(1).collect();
        assert_eq!(cols, vec![0, 63, 64, 127, 128, 129]);
    }

    #[test]
    fn row_targets_into_matches_row_iter() {
        let mut m = BoolMatrix::zeros(130);
        for j in [0, 63, 64, 127, 128, 129] {
            m.set(1, j, true);
        }
        let mut buf = vec![99, 98]; // stale contents must be discarded
        m.row_targets_into(1, &mut buf);
        assert_eq!(buf, m.row_iter(1).collect::<Vec<_>>());
        m.row_targets_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn col_iter_matches_transpose_row() {
        let m = BoolMatrix::from_edges(6, &[(0, 3), (2, 3), (5, 3), (3, 1)]);
        let t = m.transpose();
        let via_col: Vec<usize> = m.col_iter(3).collect();
        let via_row: Vec<usize> = t.row_iter(3).collect();
        assert_eq!(via_col, via_row);
        assert_eq!(via_col, vec![0, 2, 5]);
    }

    #[test]
    fn transpose_involution() {
        let m = BoolMatrix::from_edges(9, &[(0, 1), (1, 2), (8, 0), (4, 4)]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn or_and_combinations() {
        let a = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let b = BoolMatrix::from_edges(3, &[(1, 2), (2, 0)]);
        let o = a.or(&b);
        assert!(o.get(0, 1) && o.get(1, 2) && o.get(2, 0));
        assert_eq!(o.popcount(), 3);
        let n = a.and(&b);
        assert!(n.get(1, 2));
        assert_eq!(n.popcount(), 1);
    }

    #[test]
    fn product_is_reachability_step() {
        // 0 -> 1 -> 2: knowledge at 0 after "0 knows itself" times S(0->1)
        let s = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let k = BoolMatrix::identity(3);
        let k1 = k.and_or_product(&s);
        // I·S = S
        assert_eq!(k1, s);
        // Two-step: (I+S)·S includes 0->2 through 1.
        let k_acc = k.or(&s);
        let k2 = k_acc.and_or_product(&s);
        assert!(k2.get(0, 2));
    }

    #[test]
    fn product_dimension_128_boundary() {
        // Exactly two words per row.
        let n = 128;
        let mut s = BoolMatrix::zeros(n);
        for i in 0..n - 1 {
            s.set(i, i + 1, true);
        }
        let p = s.and_or_product(&s);
        assert!(p.get(0, 2));
        assert!(!p.get(0, 1));
        assert!(p.get(125, 127));
    }

    #[test]
    fn linear_barrier_matrices_from_paper_fig2() {
        // Figure 2: S0 has ranks 1..3 signalling rank 0; S1 = S0^T.
        let s0 = BoolMatrix::from_rows(&[
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
        ]);
        let s1 = s0.transpose();
        for j in 1..4 {
            assert!(s1.get(0, j));
        }
        assert_eq!(s1.row_popcount(0), 3);
    }

    #[test]
    fn embed_maps_edges() {
        let local = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let global = local.embed(10, &[7, 2, 5]);
        assert!(global.get(7, 2));
        assert!(global.get(2, 5));
        assert_eq!(global.popcount(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate mapped index")]
    fn embed_rejects_duplicates() {
        let local = BoolMatrix::zeros(2);
        local.embed(5, &[1, 1]);
    }

    #[test]
    fn submatrix_inverse_of_embed() {
        let local = BoolMatrix::from_edges(4, &[(0, 3), (3, 1), (2, 2)]);
        let map = [9, 0, 4, 6];
        let global = local.embed(12, &map);
        assert_eq!(global.submatrix(&map), local);
    }

    #[test]
    fn active_rows_reports_senders() {
        let m = BoolMatrix::from_edges(5, &[(1, 0), (3, 0), (3, 2)]);
        assert_eq!(m.active_rows(), vec![1, 3]);
    }

    #[test]
    fn display_renders_grid() {
        let m = BoolMatrix::from_edges(2, &[(0, 1)]);
        assert_eq!(format!("{m}"), "0 1\n0 0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BoolMatrix::zeros(3).get(3, 0);
    }

    #[test]
    fn zero_dimension_matrix() {
        let m = BoolMatrix::zeros(0);
        assert!(m.is_zero());
        // An empty matrix vacuously satisfies "all true".
        assert!(m.is_all_true());
        assert_eq!(m.edges().count(), 0);
    }
}
