//! Dense matrix types used throughout the barrier-synthesis pipeline.
//!
//! The algorithmic model of Meyer & Elster (IPDPS 2011) encodes a barrier as
//! a sequence of boolean *incidence matrices* `S_0, S_1, …, S_k`, where row
//! `i` of `S_a` lists the ranks that process `i` signals in step `a`.
//! Verifying that such a sequence actually synchronizes all processes is a
//! fixed-point computation over boolean matrix products (the paper's Eq. 3),
//! and costing it couples the boolean structure to `f64` cost matrices.
//!
//! This crate provides the two matrix types those computations need:
//!
//! * [`BoolMatrix`] — a bitset-backed square boolean matrix with the
//!   and/or (boolean semiring) product, saturating addition, and transpose.
//! * [`DenseMatrix`] — a row-major generic dense matrix, used with `f64`
//!   entries for the topological cost matrices `O` and `L`.
//!
//! Matrices here are small (`P ≤ a few hundred` for realistic clusters), so
//! the implementations favour clarity and cache-friendly row-major layouts
//! over asymptotic tricks.

pub mod boolmat;
pub mod dense;
pub mod reach;

pub use boolmat::BoolMatrix;
pub use dense::DenseMatrix;
pub use reach::{knowledge_closure, knowledge_steps, ClosureWorkspace, KnowledgeTrace};
