//! Loopback integration tests of the tune service: bit-parity against
//! local tunes, coalesced-miss single-tune accounting, eviction under a
//! bytes budget, client-death robustness, and graceful drain.

use hbar_core::compose::tune_hybrid_costs;
use hbar_serve::cache::CacheConfig;
use hbar_serve::client::{TuneClient, TuneReply};
use hbar_serve::proto::{TuneRequest, FRAME_TUNE_REQ, REQ_WANT_CODE};
use hbar_serve::server::{ServeConfig, ServerHandle};
use hbar_serve::workload::synthetic_topologies;
use std::io::Write;
use std::net::TcpStream;

fn small_server(cache: CacheConfig, workers: usize) -> ServerHandle {
    ServerHandle::spawn("127.0.0.1:0", &ServeConfig { cache, workers }).expect("spawn server")
}

fn default_server() -> ServerHandle {
    small_server(CacheConfig::default(), 2)
}

/// The canonical local answer a served schedule must match bit for bit.
fn local_schedule_json(req: &TuneRequest) -> String {
    let members: Vec<usize> = (0..req.cost.p()).collect();
    let tuned = tune_hybrid_costs(&req.cost, &members, &req.tuner_config());
    serde_json::to_string(&tuned.schedule).expect("schedule serializes")
}

#[test]
fn served_schedules_are_bit_identical_to_local_tunes() {
    let server = default_server();
    let mut client = TuneClient::connect(server.addr()).expect("connect");
    for (k, cost) in synthetic_topologies(6, 21).into_iter().enumerate() {
        let mut req = TuneRequest::new(k as u64, cost);
        if k % 2 == 1 {
            req.flags |= REQ_WANT_CODE;
        }
        let expected = local_schedule_json(&req);
        // Twice per topology: the first answer is a fresh tune, the
        // second a cache hit — both must be the same bytes.
        let miss = client.request(&req).expect("tune");
        assert!(!miss.cache_hit);
        assert_eq!(miss.schedule_json, expected, "fresh tune parity, k={k}");
        assert_eq!(
            !miss.code_c.is_empty(),
            k % 2 == 1,
            "code only when requested"
        );
        let hit = client.request(&req).expect("tune again");
        assert!(hit.cache_hit, "second request must hit the cache");
        assert_eq!(hit.schedule_json, expected, "cached parity, k={k}");
        assert_eq!(
            hit.predicted_cost.to_bits(),
            miss.predicted_cost.to_bits(),
            "prediction must be bit-stable across hit and miss"
        );
    }
    client.drain().expect("drain");
    server.shutdown().expect("shutdown");
}

#[test]
fn concurrent_misses_on_one_key_tune_exactly_once() {
    let server = small_server(CacheConfig::default(), 3);
    let addr = server.addr();
    let cost = synthetic_topologies(1, 77).pop().expect("one topology");
    let expected = local_schedule_json(&TuneRequest::new(0, cost.clone()));
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let cost = cost.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = TuneClient::connect(addr).expect("connect");
                let resp = client.request(&TuneRequest::new(t, cost)).expect("tune");
                assert_eq!(resp.schedule_json, expected, "thread {t}");
                client.drain().expect("drain");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut client = TuneClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.tunes, 1,
        "8 concurrent requests for one key must coalesce into one tune: {stats:?}"
    );
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.hits + stats.misses, 8);
    assert_eq!(stats.errors, 0);
    server.shutdown().expect("shutdown");
}

#[test]
fn concurrent_mixed_workload_tunes_each_key_once_and_stays_deterministic() {
    let server = small_server(CacheConfig::default(), 4);
    let addr = server.addr();
    let topologies = synthetic_topologies(10, 5);
    let expected: Vec<String> = topologies
        .iter()
        .map(|c| local_schedule_json(&TuneRequest::new(0, c.clone())))
        .collect();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let topologies = topologies.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = TuneClient::connect(addr).expect("connect");
                // Every thread walks all keys from a different offset,
                // so hits, misses, and coalesced misses all interleave.
                for step in 0..topologies.len() * 2 {
                    let k = (t + step) % topologies.len();
                    let resp = client
                        .request(&TuneRequest::new(k as u64, topologies[k].clone()))
                        .expect("tune");
                    assert_eq!(resp.schedule_json, expected[k], "thread {t} key {k}");
                }
                client.drain().expect("drain");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut client = TuneClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.tunes,
        topologies.len() as u64,
        "each distinct key must tune exactly once: {stats:?}"
    );
    assert_eq!(stats.requests, 6 * 20);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.cache_entries, topologies.len() as u64);
    server.shutdown().expect("shutdown");
}

#[test]
fn bytes_budget_evicts_and_evicted_keys_retune_identically() {
    // A budget that holds only a few schedules: walking 8 topologies
    // twice must evict, and a re-request after eviction must re-tune to
    // the same bytes.
    let server = small_server(
        CacheConfig {
            shards: 1,
            capacity: 1024,
            bytes_budget: 3 * 4096,
        },
        2,
    );
    let topologies = synthetic_topologies(8, 13);
    let mut client = TuneClient::connect(server.addr()).expect("connect");
    let mut first_pass = Vec::new();
    for (k, cost) in topologies.iter().enumerate() {
        let resp = client
            .request(&TuneRequest::new(k as u64, cost.clone()))
            .expect("tune");
        first_pass.push(resp.schedule_json);
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.cache_evictions > 0,
        "the bytes budget must force evictions: {stats:?}"
    );
    assert!(stats.cache_bytes <= 3 * 4096 + 4096, "budget respected");
    for (k, cost) in topologies.iter().enumerate() {
        let resp = client
            .request(&TuneRequest::new(100 + k as u64, cost.clone()))
            .expect("re-tune");
        assert_eq!(
            resp.schedule_json, first_pass[k],
            "evicted key {k} must re-tune bit-identically"
        );
    }
    client.drain().expect("drain");
    server.shutdown().expect("shutdown");
}

#[test]
fn dying_clients_do_not_take_the_server_down() {
    let server = small_server(CacheConfig::default(), 2);
    let addr = server.addr();
    let cost = synthetic_topologies(1, 3).pop().expect("one topology");

    // Client 1: opens a frame header promising a payload, then dies.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&[FRAME_TUNE_REQ, 0xFF, 0xFF, 0x00, 0x00])
            .expect("partial header");
        // Dropped here mid-frame.
    }
    // Client 2: sends a full request and disconnects without reading
    // the answer (the pool's write will fail; the server must shrug).
    {
        let mut client = TuneClient::connect(addr).expect("connect");
        client
            .send(&TuneRequest::new(7, cost.clone()))
            .expect("send");
        // recv() never called; connection dropped with a tune in flight.
    }
    // Client 3: garbage tag.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&[0x7F, 0x00, 0x00, 0x00, 0x00])
            .expect("garbage tag");
    }

    // The server must still answer correctly afterwards.
    let mut client = TuneClient::connect(addr).expect("connect");
    let req = TuneRequest::new(8, cost);
    let resp = client.request(&req).expect("tune after client deaths");
    assert_eq!(resp.schedule_json, local_schedule_json(&req));
    client.drain().expect("drain");
    server.shutdown().expect("shutdown");
}

#[test]
fn malformed_requests_get_error_replies_not_disconnects() {
    let server = default_server();
    let mut client = TuneClient::connect(server.addr()).expect("connect");
    // A request whose advertised p disagrees with its payload length.
    let cost = synthetic_topologies(1, 1).pop().expect("one topology");
    let mut buf = Vec::new();
    TuneRequest::new(3, cost.clone()).encode_into(&mut buf);
    buf[8..12].copy_from_slice(&64u32.to_le_bytes());
    {
        use hbar_simnet::wire::write_frame;
        // Reach under the client to send the corrupt frame verbatim.
        let mut raw = TcpStream::connect(server.addr()).expect("connect raw");
        write_frame(&mut raw, FRAME_TUNE_REQ, &buf).expect("send corrupt");
        let (tag, payload) = hbar_simnet::wire::read_frame(&mut raw).expect("read err");
        assert_eq!(tag, hbar_serve::proto::FRAME_TUNE_ERR);
        let (id, reason) = hbar_serve::proto::decode_tune_error(&payload).expect("decode err");
        assert_eq!(id, 3, "the salvaged id must survive the malformed body");
        assert!(!reason.is_empty());
    }
    // The same connection-independent server still tunes fine.
    let req = TuneRequest::new(4, cost);
    match client
        .send(&req)
        .and_then(|()| client.recv())
        .expect("tune")
    {
        TuneReply::Ok(resp) => assert_eq!(resp.schedule_json, local_schedule_json(&req)),
        TuneReply::Err { reason, .. } => panic!("unexpected failure: {reason}"),
    }
    client.drain().expect("drain");
    server.shutdown().expect("shutdown");
}

#[test]
fn drain_waits_for_pipelined_work_then_acknowledges() {
    let server = small_server(CacheConfig::default(), 2);
    let topologies = synthetic_topologies(5, 99);
    let mut client = TuneClient::connect(server.addr()).expect("connect");
    // Pipeline five misses without reading a single answer…
    for (k, cost) in topologies.iter().enumerate() {
        client
            .send(&TuneRequest::new(k as u64, cost.clone()))
            .expect("send");
    }
    // …then read them all back; ids must cover the full set.
    let mut seen: Vec<u64> = (0..topologies.len())
        .map(|_| match client.recv().expect("recv") {
            TuneReply::Ok(resp) => resp.id,
            TuneReply::Err { id, reason } => panic!("request {id} failed: {reason}"),
        })
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..topologies.len() as u64).collect::<Vec<_>>());
    // Drain with nothing outstanding must ack immediately; the server
    // connection closes cleanly afterwards.
    client.drain().expect("drain ack");
    server.shutdown().expect("server exits")
}
