//! Barrier-tuning-as-a-service: the `hbar serve` daemon and its client.
//!
//! The ROADMAP's north star is serving tuned barrier schedules at
//! scale; this crate is the concrete daemon: a long-running TCP service
//! that accepts cost matrices (the `O`/`L` profiles of §VI) and returns
//! tuned hybrid schedules plus generated code, with a warm path built
//! to answer in tens of microseconds:
//!
//! * [`proto`] — the binary request/response frames, layered on
//!   `hbar_simnet::wire`'s length-prefixed stream, and the versioned
//!   [`CacheKey`] (cost fingerprint × tuner-knob fingerprint);
//! * [`cache`] — the sharded slab-LRU schedule cache (per-shard locks,
//!   entry + bytes budgets);
//! * [`server`] — accept loop, per-connection readers with
//!   flush-before-block batching, the in-flight coalescing map
//!   (concurrent misses on one key tune once), and the bounded worker
//!   pool with per-worker reusable `CostEvaluator`s;
//! * [`client`] — the pipelining [`TuneClient`] used by
//!   `hbar tune-client`, the tests, and the `serve-perf` harness;
//! * [`workload`] — seeded synthetic topologies and Zipf sampling for
//!   load generation.
//!
//! Determinism contract: the tuner is deterministic, so a served
//! schedule — cached, coalesced, or freshly tuned — is always
//! bit-identical to `tune_hybrid_costs` run locally on the same
//! matrices and knobs. The integration tests assert exactly that.

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod workload;

pub use cache::{CacheConfig, ShardedCache};
pub use client::{shutdown_server, TuneClient, TuneReply};
pub use proto::{CacheKey, ServeStats, TuneRequest, TuneResponse};
pub use server::{serve, ServeConfig, ServerHandle};
