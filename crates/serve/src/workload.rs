//! Synthetic serve workloads: distinct-but-plausible topologies and a
//! Zipf request distribution.
//!
//! The load generator and the perf harness need many *distinct* cost
//! matrices (distinct fingerprints → distinct cache keys) whose values
//! stay inside the regime the tuner was built for. Each topology here
//! is a ground-truth profile of a small machine with deterministic
//! multiplicative jitter — the jitter keeps fingerprints unique while
//! preserving the hierarchical cost structure the SSS clustering feeds
//! on. Everything is seeded: the same `(count, seed)` always produces
//! bit-identical matrices, so client and checker can regenerate the
//! workload independently.

use hbar_topo::cost::CostMatrices;
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;

/// SplitMix64: tiny, seedable, and good enough for workload jitter.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The machine shapes the synthetic fleet cycles through
/// (`P ∈ {8, 12, 16}` — small enough that a single tune is fast, varied
/// enough that schedules differ structurally).
const SHAPES: [(usize, usize, usize); 3] = [(1, 2, 4), (2, 2, 3), (2, 2, 4)];

/// Generates `count` distinct cost matrices, deterministically from
/// `seed`. Entry `k` is shape `SHAPES[k % 3]`'s ground-truth profile
/// with ±10% per-entry multiplicative jitter.
pub fn synthetic_topologies(count: usize, seed: u64) -> Vec<CostMatrices> {
    let bases: Vec<CostMatrices> = SHAPES
        .iter()
        .map(|&(nodes, sockets, cores)| {
            let machine = MachineSpec::new(nodes, sockets, cores);
            TopologyProfile::from_ground_truth(&machine, &RankMapping::Block).cost
        })
        .collect();
    let mut rng = SplitMix64(seed ^ 0x5e2e_7065_7270_7665);
    (0..count)
        .map(|k| {
            let mut cost = bases[k % bases.len()].clone();
            for m in [&mut cost.o, &mut cost.l] {
                let n = m.n();
                for i in 0..n {
                    for v in m.row_mut(i) {
                        *v *= 1.0 + 0.2 * (rng.next_f64() - 0.5);
                    }
                }
            }
            cost
        })
        .collect()
}

/// Zipf(s) sampler over `0..n` by inverse-CDF binary search on the
/// cumulative weights. Rank 0 is the most popular item.
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf over zero items");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        ZipfSampler { cum }
    }

    /// Draws one item index.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // partition_point: first index whose cumulative weight exceeds u.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::cost::cost_fingerprint;
    use std::collections::HashSet;

    #[test]
    fn topologies_are_distinct_and_deterministic() {
        let a = synthetic_topologies(64, 9);
        let b = synthetic_topologies(64, 9);
        let fps: HashSet<u64> = a.iter().map(cost_fingerprint).collect();
        assert_eq!(fps.len(), 64, "fingerprints must be unique");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(cost_fingerprint(x), cost_fingerprint(y));
        }
        let c = synthetic_topologies(4, 10);
        assert_ne!(cost_fingerprint(&a[0]), cost_fingerprint(&c[0]));
        // Shapes cycle 8, 12, 16.
        assert_eq!(a[0].p(), 8);
        assert_eq!(a[1].p(), 12);
        assert_eq!(a[2].p(), 16);
    }

    #[test]
    fn jittered_costs_stay_finite_and_nonnegative() {
        for cost in synthetic_topologies(12, 3) {
            for &v in cost.o.as_slice().iter().chain(cost.l.as_slice()) {
                assert!(v.is_finite() && v >= 0.0, "bad jittered entry {v}");
            }
        }
    }

    #[test]
    fn zipf_is_heavily_skewed_toward_low_ranks() {
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut rng = SplitMix64(7);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if zipf.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Zipf(1.0) over 1000 items puts ~69% of mass on the top 100.
        let frac = head as f64 / draws as f64;
        assert!((0.6..0.8).contains(&frac), "head mass {frac}");
    }

    #[test]
    fn zipf_never_indexes_out_of_range() {
        let zipf = ZipfSampler::new(3, 1.0);
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }
}
