//! The tune-service extension of the framed wire protocol.
//!
//! `hbar serve` speaks the same `[tag][len u32 LE][payload]` frame
//! stream as the profiling fleet (`hbar_simnet::wire`), with its own tag
//! range so a serve endpoint and a profile worker can never be confused
//! by a stray frame:
//!
//! * [`FRAME_TUNE_REQ`] — a compact binary [`TuneRequest`]: tuning knobs
//!   plus the raw `O`/`L` cost matrices. Binary because the matrices
//!   dominate the payload (`2·P²` doubles) and the hot path must not
//!   parse JSON.
//! * [`FRAME_TUNE_RESP`] — a [`TuneResponse`]: the tuned schedule as
//!   canonical compact JSON (the same bytes `hbar tune` writes, so
//!   bit-parity against a local tune is a string comparison) and,
//!   on request, the generated C source.
//! * [`FRAME_TUNE_ERR`] — request id plus a human-readable reason.
//! * [`FRAME_STATS_REQ`] / [`FRAME_STATS_RESP`] — JSON server counters
//!   ([`ServeStats`]); small, rare, debuggable with `nc`.
//! * `FRAME_DRAIN` / `FRAME_SHUTDOWN` are shared with the profiling
//!   protocol: drain finishes everything in flight on one connection,
//!   shutdown stops the whole daemon.
//!
//! Responses are keyed by the client-chosen request `id`, so a client
//! may pipeline arbitrarily many requests per connection; the server
//! answers cache hits in arrival order and misses in completion order.

use hbar_core::cost::cost_fingerprint;
use hbar_core::{TunerConfig, COST_FINGERPRINT_VERSION};
use hbar_matrix::DenseMatrix;
use hbar_topo::cost::CostMatrices;
use serde::{Deserialize, Serialize};
use std::io;

/// Frame tag: binary tune request.
pub const FRAME_TUNE_REQ: u8 = 0x10;
/// Frame tag: tune response (schedule JSON + optional generated code).
pub const FRAME_TUNE_RESP: u8 = 0x11;
/// Frame tag: tune failure (request id + reason).
pub const FRAME_TUNE_ERR: u8 = 0x12;
/// Frame tag: server-counter request (empty payload).
pub const FRAME_STATS_REQ: u8 = 0x13;
/// Frame tag: server counters as JSON.
pub const FRAME_STATS_RESP: u8 = 0x14;

/// Request flag: tune with the extended algorithm set
/// (`TunerConfig::extended`).
pub const REQ_EXTENDED: u8 = 1 << 0;
/// Request flag: score candidates with the exact (slower) cost model.
pub const REQ_SCORE_EXACT: u8 = 1 << 1;
/// Request flag: include generated C source in the response. Excluded
/// from the cache key — code is emitted at tune time and stored with the
/// schedule, so hit/miss behaviour cannot depend on it.
pub const REQ_WANT_CODE: u8 = 1 << 2;

/// Largest accepted rank count (matches the profiling sweep's envelope;
/// a 4096² request is already a 256 MB payload — the frame cap binds
/// first in practice).
pub const MAX_RANKS: usize = 4096;

/// Bytes of the fixed request header:
/// `id:u64 | p:u32 | sparseness:f64 | max_depth:u32 | flags:u8`.
pub const REQ_HEADER_LEN: usize = 25;

/// One tuning request: the knobs that shape the tuner plus the measured
/// cost matrices to tune against.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// SSS clustering sparseness (`TunerConfig::sparseness`).
    pub sparseness: f64,
    /// Cluster-tree depth cap (`TunerConfig::max_depth`).
    pub max_depth: u32,
    /// `REQ_*` bit set.
    pub flags: u8,
    /// The `O`/`L` matrices the schedule is tuned for.
    pub cost: CostMatrices,
}

impl TuneRequest {
    /// A request with the default tuner knobs for `cost`.
    pub fn new(id: u64, cost: CostMatrices) -> TuneRequest {
        let d = TunerConfig::default();
        TuneRequest {
            id,
            sparseness: d.sparseness,
            max_depth: d.max_depth as u32,
            flags: 0,
            cost,
        }
    }

    /// Encodes the request into `out` (cleared first): the fixed header
    /// followed by the raw `O` then `L` entries, row-major little-endian
    /// `f64` bits.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let p = self.cost.p();
        out.clear();
        out.reserve(REQ_HEADER_LEN + 2 * p * p * 8);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(p as u32).to_le_bytes());
        out.extend_from_slice(&self.sparseness.to_le_bytes());
        out.extend_from_slice(&self.max_depth.to_le_bytes());
        out.push(self.flags);
        for v in self.cost.o.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in self.cost.l.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes a request payload. Total: every malformed shape (short
    /// header, zero or oversized `p`, length mismatch, non-finite knobs
    /// or matrix entries) is an `InvalidData` error, never a panic.
    pub fn decode(payload: &[u8]) -> io::Result<TuneRequest> {
        let fail = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if payload.len() < REQ_HEADER_LEN {
            return Err(fail(format!(
                "tune request of {} bytes is shorter than the {REQ_HEADER_LEN}-byte header",
                payload.len()
            )));
        }
        let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let p = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        let sparseness = f64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"));
        let max_depth = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes"));
        let flags = payload[24];
        if p == 0 || p > MAX_RANKS {
            return Err(fail(format!("rank count {p} outside 1..={MAX_RANKS}")));
        }
        let expected = REQ_HEADER_LEN + 2 * p * p * 8;
        if payload.len() != expected {
            return Err(fail(format!(
                "tune request for p={p} must be {expected} bytes, got {}",
                payload.len()
            )));
        }
        if !sparseness.is_finite() || sparseness <= 0.0 {
            return Err(fail(format!("sparseness {sparseness} must be finite > 0")));
        }
        if max_depth == 0 {
            return Err(fail("max_depth must be at least 1".to_string()));
        }
        let read_matrix = |offset: usize| -> io::Result<DenseMatrix<f64>> {
            let mut data = Vec::with_capacity(p * p);
            for k in 0..p * p {
                let at = offset + 8 * k;
                let v = f64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
                if !v.is_finite() {
                    return Err(fail(format!("non-finite cost entry at flat index {k}")));
                }
                data.push(v);
            }
            Ok(DenseMatrix::from_vec(p, data))
        };
        let o = read_matrix(REQ_HEADER_LEN)?;
        let l = read_matrix(REQ_HEADER_LEN + p * p * 8)?;
        Ok(TuneRequest {
            id,
            sparseness,
            max_depth,
            flags,
            cost: CostMatrices { o, l },
        })
    }

    /// The sharded-cache key of this request: the versioned cost
    /// fingerprint plus a fingerprint of every knob that affects the
    /// tuned schedule. [`REQ_WANT_CODE`] is deliberately excluded —
    /// whether the client wants source does not change what is tuned.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey {
            cost_fp: cost_fingerprint(&self.cost),
            cfg_fp: self.cfg_fingerprint(),
        }
    }

    /// FNV-1a over the schedule-affecting knobs, seeded with
    /// [`COST_FINGERPRINT_VERSION`] so a fingerprint-scheme bump also
    /// invalidates configuration keys.
    fn cfg_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(&COST_FINGERPRINT_VERSION.to_le_bytes());
        mix(&self.sparseness.to_bits().to_le_bytes());
        mix(&self.max_depth.to_le_bytes());
        mix(&[self.flags & !REQ_WANT_CODE]);
        h
    }

    /// The [`TunerConfig`] this request asks for.
    pub fn tuner_config(&self) -> TunerConfig {
        let mut cfg = if self.flags & REQ_EXTENDED != 0 {
            TunerConfig::extended()
        } else {
            TunerConfig::default()
        };
        cfg.sparseness = self.sparseness;
        cfg.max_depth = self.max_depth as usize;
        cfg.score_exact = self.flags & REQ_SCORE_EXACT != 0;
        cfg
    }
}

/// The cache key of the schedule cache: cost fingerprint × tuner-knob
/// fingerprint. Two requests with equal keys receive bit-identical
/// schedules (the tuner is deterministic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`cost_fingerprint`] of the request matrices.
    pub cost_fp: u64,
    /// Fingerprint of the schedule-affecting tuner knobs.
    pub cfg_fp: u64,
}

impl CacheKey {
    /// One mixed word for shard selection (Fibonacci multiplicative
    /// hashing spreads the already-hashed key across shards evenly).
    pub fn shard_hash(&self) -> u64 {
        (self.cost_fp ^ self.cfg_fp.rotate_left(32)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// One tune answer. `schedule_json` is the canonical compact JSON of the
/// tuned [`BarrierSchedule`](hbar_core::BarrierSchedule); `code_c` is
/// empty unless the request set [`REQ_WANT_CODE`].
#[derive(Clone, Debug, PartialEq)]
pub struct TuneResponse {
    /// The request id this answers.
    pub id: u64,
    /// Whether the schedule came from the cache (true) or a fresh tune.
    pub cache_hit: bool,
    /// Predicted critical-path cost of the schedule (seconds).
    pub predicted_cost: f64,
    /// Canonical compact JSON of the tuned schedule.
    pub schedule_json: String,
    /// Generated C source, or empty when not requested.
    pub code_c: String,
}

impl TuneResponse {
    /// Encodes the response into `out` (cleared first):
    /// `id:u64 | hit:u8 | predicted:f64 | slen:u32 | schedule | clen:u32 | code`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(25 + self.schedule_json.len() + self.code_c.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(u8::from(self.cache_hit));
        out.extend_from_slice(&self.predicted_cost.to_le_bytes());
        out.extend_from_slice(&(self.schedule_json.len() as u32).to_le_bytes());
        out.extend_from_slice(self.schedule_json.as_bytes());
        out.extend_from_slice(&(self.code_c.len() as u32).to_le_bytes());
        out.extend_from_slice(self.code_c.as_bytes());
    }

    /// Decodes a response payload (total, like [`TuneRequest::decode`]).
    pub fn decode(payload: &[u8]) -> io::Result<TuneResponse> {
        let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if payload.len() < 21 {
            return Err(fail("tune response shorter than its fixed header"));
        }
        let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let cache_hit = payload[8] != 0;
        let predicted_cost = f64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        let slen = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes")) as usize;
        let code_at = 21 + slen;
        if payload.len() < code_at + 4 {
            return Err(fail("tune response truncated inside the schedule"));
        }
        let schedule_json = std::str::from_utf8(&payload[21..code_at])
            .map_err(|_| fail("schedule JSON is not UTF-8"))?
            .to_string();
        let clen =
            u32::from_le_bytes(payload[code_at..code_at + 4].try_into().expect("4 bytes")) as usize;
        if payload.len() != code_at + 4 + clen {
            return Err(fail("tune response length disagrees with its code field"));
        }
        let code_c = std::str::from_utf8(&payload[code_at + 4..])
            .map_err(|_| fail("generated code is not UTF-8"))?
            .to_string();
        Ok(TuneResponse {
            id,
            cache_hit,
            predicted_cost,
            schedule_json,
            code_c,
        })
    }
}

/// Encodes a [`FRAME_TUNE_ERR`] payload: `id:u64 | reason (UTF-8)`.
pub fn encode_tune_error(id: u64, reason: &str, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(reason.as_bytes());
}

/// Decodes a [`FRAME_TUNE_ERR`] payload into `(id, reason)`.
pub fn decode_tune_error(payload: &[u8]) -> io::Result<(u64, String)> {
    if payload.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "tune error shorter than its id",
        ));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let reason = String::from_utf8_lossy(&payload[8..]).into_owned();
    Ok((id, reason))
}

/// Server counters, returned by [`FRAME_STATS_REQ`] as JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Tune requests received (well-formed or not).
    pub requests: u64,
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that missed the cache.
    pub misses: u64,
    /// Misses that joined an already-running tune instead of starting
    /// their own (subset of `misses`).
    pub coalesced: u64,
    /// Tunes actually executed by the worker pool. The coalescing
    /// invariant: `tunes` ≤ distinct keys requested, always.
    pub tunes: u64,
    /// Requests answered with [`FRAME_TUNE_ERR`].
    pub errors: u64,
    /// Entries currently cached, summed over shards.
    pub cache_entries: u64,
    /// Approximate bytes currently cached, summed over shards.
    pub cache_bytes: u64,
    /// Entries evicted since startup, summed over shards.
    pub cache_evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn sample_cost(p: usize) -> CostMatrices {
        let machine = MachineSpec::new(1, 2, 4);
        TopologyProfile::from_ground_truth_for(&machine, &RankMapping::Block, p).cost
    }

    #[test]
    fn request_roundtrip_preserves_bits() {
        let req = TuneRequest {
            id: 0xDEAD_BEEF_CAFE,
            sparseness: 1.25,
            max_depth: 6,
            flags: REQ_EXTENDED | REQ_WANT_CODE,
            cost: sample_cost(8),
        };
        let mut buf = Vec::new();
        req.encode_into(&mut buf);
        let back = TuneRequest::decode(&buf).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.flags, req.flags);
        assert_eq!(back.max_depth, req.max_depth);
        assert_eq!(back.sparseness.to_bits(), req.sparseness.to_bits());
        for (a, b) in back
            .cost
            .o
            .as_slice()
            .iter()
            .zip(req.cost.o.as_slice())
            .chain(back.cost.l.as_slice().iter().zip(req.cost.l.as_slice()))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.cache_key(), req.cache_key());
    }

    #[test]
    fn decode_rejects_malformed_requests() {
        let req = TuneRequest::new(1, sample_cost(4));
        let mut buf = Vec::new();
        req.encode_into(&mut buf);
        assert!(TuneRequest::decode(&buf[..REQ_HEADER_LEN - 1]).is_err());
        assert!(TuneRequest::decode(&buf[..buf.len() - 1]).is_err());
        let mut zero_p = buf.clone();
        zero_p[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(TuneRequest::decode(&zero_p).is_err());
        let mut nan_entry = buf.clone();
        nan_entry[REQ_HEADER_LEN..REQ_HEADER_LEN + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(TuneRequest::decode(&nan_entry).is_err());
        let mut bad_sparseness = buf;
        bad_sparseness[12..20].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(TuneRequest::decode(&bad_sparseness).is_err());
    }

    #[test]
    fn cache_key_ignores_want_code_but_not_tuning_flags() {
        let base = TuneRequest::new(7, sample_cost(4));
        let mut want_code = base.clone();
        want_code.flags |= REQ_WANT_CODE;
        assert_eq!(base.cache_key(), want_code.cache_key());
        let mut extended = base.clone();
        extended.flags |= REQ_EXTENDED;
        assert_ne!(base.cache_key(), extended.cache_key());
        let mut deeper = base.clone();
        deeper.max_depth += 1;
        assert_ne!(base.cache_key(), deeper.cache_key());
        let mut sparser = base.clone();
        sparser.sparseness *= 2.0;
        assert_ne!(base.cache_key(), sparser.cache_key());
    }

    #[test]
    fn response_and_error_roundtrip() {
        let resp = TuneResponse {
            id: 42,
            cache_hit: true,
            predicted_cost: 3.25e-6,
            schedule_json: "{\"n\":4,\"stages\":[]}".to_string(),
            code_c: "/* generated */\n".to_string(),
        };
        let mut buf = Vec::new();
        resp.encode_into(&mut buf);
        let back = TuneResponse::decode(&buf).unwrap();
        assert_eq!(back.predicted_cost.to_bits(), resp.predicted_cost.to_bits());
        assert_eq!(back, resp);
        assert!(TuneResponse::decode(&buf[..20]).is_err());
        assert!(TuneResponse::decode(&buf[..buf.len() - 1]).is_err());

        let mut err_buf = Vec::new();
        encode_tune_error(9, "no such tune", &mut err_buf);
        assert_eq!(
            decode_tune_error(&err_buf).unwrap(),
            (9, "no such tune".to_string())
        );
        assert!(decode_tune_error(&err_buf[..7]).is_err());
    }
}
