//! The `hbar serve` daemon: accept loop, per-connection readers, the
//! in-flight coalescing map, and the bounded tuner pool.
//!
//! ## Hot path (cache hit)
//!
//! reader thread → decode request → sharded-cache `get` → encode
//! response into the connection's buffered writer. No tuner, no pool
//! hand-off, no flush until the reader is about to block (so a client
//! pipelining a window of requests gets the whole window's answers in
//! one syscall burst).
//!
//! ## Miss path
//!
//! The reader re-checks the cache *under the in-flight lock* (closing
//! the window where a tune completed between the first probe and the
//! lock), then either joins an existing flight (coalesced: the tune
//! runs once no matter how many connections ask) or registers a new
//! flight and enqueues a job for the pool. Pool workers own a reusable
//! [`CostEvaluator`] each, so scratch arenas and derived-topology
//! caches amortize across requests; results are published to the cache
//! *before* the flight is removed, which makes the
//! `tunes == distinct keys` invariant hold under any interleaving:
//! a reader that misses the cache and then finds no flight can only
//! mean the artifact is already cached (its peek happens under the same
//! lock that removal happens under).
//!
//! Worker responses are flushed immediately — the owning reader may be
//! blocked in `read` and unable to flush on the waiters' behalf.

use crate::cache::{CacheConfig, ShardedCache};
use crate::proto::{
    encode_tune_error, CacheKey, ServeStats, TuneRequest, FRAME_STATS_REQ, FRAME_STATS_RESP,
    FRAME_TUNE_ERR, FRAME_TUNE_REQ, FRAME_TUNE_RESP, REQ_WANT_CODE,
};
use hbar_core::codegen::{c_source, compile_schedule};
use hbar_core::compose::tune_hybrid_costs_with;
use hbar_core::cost::CostEvaluator;
use hbar_core::{BarrierSchedule, CostParams};
use hbar_simnet::wire::{read_frame_into, write_frame_buffered, FRAME_DRAIN, FRAME_SHUTDOWN};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Name codegen uses for served barrier functions.
const SERVED_BARRIER_NAME: &str = "served_barrier";

/// Daemon shape: cache geometry and pool size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Schedule-cache geometry.
    pub cache: CacheConfig,
    /// Tuner pool threads (≥ 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache: CacheConfig::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .clamp(2, 8),
        }
    }
}

/// A cached tune result: everything needed to answer any request with
/// the same cache key, including clients that want generated code. The
/// tuned schedule itself is retained (compiled CSR cache and all) so
/// repeat structural queries never re-parse the JSON.
struct TunedArtifact {
    predicted_cost: f64,
    schedule: BarrierSchedule,
    schedule_json: String,
    code_c: String,
}

impl TunedArtifact {
    /// Resident bytes, charged against the cache budget. This must
    /// follow every heap allocation the artifact keeps alive — the
    /// schedule's stage bitsets and compiled CSR vectors dwarf the
    /// strings at large P, and a budget that only counted
    /// `schedule_json.len() + code_c.len()` would admit far more
    /// resident memory than configured.
    fn weight(&self) -> usize {
        self.schedule.heap_bytes()
            + self.schedule_json.capacity()
            + self.code_c.capacity()
            + std::mem::size_of::<TunedArtifact>()
            + 64
    }
}

/// One registered response obligation of an in-flight tune.
struct Waiter {
    conn: Arc<Conn>,
    id: u64,
    want_code: bool,
}

/// One queued cache-miss tune.
struct TuneJob {
    key: CacheKey,
    req: TuneRequest,
}

/// Per-connection shared state: the buffered writer (shared between the
/// reader thread and pool workers) and the count of pool answers still
/// owed to this connection (drain waits on it).
struct Conn {
    writer: Mutex<ConnWriter>,
    pending: Mutex<usize>,
    pending_cv: Condvar,
}

struct ConnWriter {
    w: BufWriter<TcpStream>,
    scratch: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            writer: Mutex::new(ConnWriter {
                w: BufWriter::new(stream),
                scratch: Vec::new(),
            }),
            pending: Mutex::new(0),
            pending_cv: Condvar::new(),
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("writer lock").w.flush()
    }

    /// Encodes and writes one artifact response. Pool workers flush
    /// (`flush: true`); the reader defers flushing until it is about to
    /// block, batching a pipelined window into few syscalls.
    fn respond_artifact(
        &self,
        id: u64,
        cache_hit: bool,
        artifact: &TunedArtifact,
        want_code: bool,
        flush: bool,
    ) -> io::Result<()> {
        let mut wr = self.writer.lock().expect("writer lock");
        let ConnWriter { w, scratch } = &mut *wr;
        let code: &str = if want_code { &artifact.code_c } else { "" };
        scratch.clear();
        scratch.reserve(25 + artifact.schedule_json.len() + code.len());
        scratch.extend_from_slice(&id.to_le_bytes());
        scratch.push(u8::from(cache_hit));
        scratch.extend_from_slice(&artifact.predicted_cost.to_le_bytes());
        scratch.extend_from_slice(&(artifact.schedule_json.len() as u32).to_le_bytes());
        scratch.extend_from_slice(artifact.schedule_json.as_bytes());
        scratch.extend_from_slice(&(code.len() as u32).to_le_bytes());
        scratch.extend_from_slice(code.as_bytes());
        write_frame_buffered(w, FRAME_TUNE_RESP, scratch)?;
        if flush {
            w.flush()?;
        }
        Ok(())
    }

    fn respond_error(&self, id: u64, reason: &str, flush: bool) -> io::Result<()> {
        let mut wr = self.writer.lock().expect("writer lock");
        let ConnWriter { w, scratch } = &mut *wr;
        encode_tune_error(id, reason, scratch);
        write_frame_buffered(w, FRAME_TUNE_ERR, scratch)?;
        if flush {
            w.flush()?;
        }
        Ok(())
    }

    fn inc_pending(&self) {
        *self.pending.lock().expect("pending lock") += 1;
    }

    fn dec_pending(&self) {
        let mut p = self.pending.lock().expect("pending lock");
        *p -= 1;
        if *p == 0 {
            self.pending_cv.notify_all();
        }
    }

    /// Blocks until every pool answer owed to this connection has been
    /// written (bounded, so a wedged pool cannot hold a drain hostage
    /// forever).
    fn wait_pending_zero(&self) {
        let deadline = Duration::from_secs(60);
        let mut p = self.pending.lock().expect("pending lock");
        while *p > 0 {
            let (guard, timeout) = self
                .pending_cv
                .wait_timeout(p, deadline)
                .expect("pending lock");
            p = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }
}

/// Process-wide server state shared by the accept loop, readers, and
/// the pool.
struct Shared {
    cache: ShardedCache<Arc<TunedArtifact>>,
    inflight: Mutex<HashMap<CacheKey, Vec<Waiter>>>,
    queue: Mutex<VecDeque<TuneJob>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    addr: SocketAddr,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    tunes: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let c = self.cache.counters();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            tunes: self.tunes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_entries: c.entries,
            cache_bytes: c.bytes,
            cache_evictions: c.evictions,
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs the daemon on `listener` until a `FRAME_SHUTDOWN` arrives.
/// Blocks the calling thread; the CLI entry point. In-process users
/// (tests, benches) use [`ServerHandle::spawn`].
pub fn serve(listener: &TcpListener, cfg: &ServeConfig) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: ShardedCache::new(&cfg.cache),
        inflight: Mutex::new(HashMap::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        stop: AtomicBool::new(false),
        addr,
        requests: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
        tunes: AtomicU64::new(0),
        errors: AtomicU64::new(0),
    });
    let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            // A vanished client is routine, not a server failure.
            let _ = handle_connection(&shared, stream);
        });
    }
    shared.queue_cv.notify_all();
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// An in-process server on an ephemeral (or given) port, for tests and
/// harnesses.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// Binds `listen` (use `127.0.0.1:0` for an ephemeral port) and
    /// serves on a background thread.
    pub fn spawn(listen: &str, cfg: &ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let cfg = cfg.clone();
        let join = std::thread::spawn(move || serve(&listener, &cfg));
        Ok(ServerHandle { addr, join })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends `FRAME_SHUTDOWN` and joins the server thread.
    pub fn shutdown(self) -> io::Result<()> {
        crate::client::shutdown_server(self.addr)?;
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// One pool worker: pops jobs, tunes with a reusable evaluator,
/// publishes to the cache, answers every coalesced waiter.
fn worker_loop(shared: &Shared) {
    let mut eval = CostEvaluator::new(CostParams::default());
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue lock");
            }
        };
        let members: Vec<usize> = (0..job.req.cost.p()).collect();
        let cfg = job.req.tuner_config();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let tuned = tune_hybrid_costs_with(&job.req.cost, &members, &cfg, &mut eval);
            let programs = compile_schedule(&tuned.schedule)
                .unwrap_or_else(|e| panic!("tuned schedule does not compile: {e}"));
            let code_c = c_source(SERVED_BARRIER_NAME, &programs)
                .unwrap_or_else(|e| panic!("tuned schedule does not emit C: {e}"));
            let schedule_json =
                serde_json::to_string(&tuned.schedule).expect("schedule serializes");
            TunedArtifact {
                predicted_cost: tuned.predicted_cost,
                schedule: tuned.schedule,
                schedule_json,
                code_c,
            }
        }));
        match outcome {
            Ok(artifact) => {
                let artifact = Arc::new(artifact);
                let weight = artifact.weight();
                // Publish before removing the flight: a reader that
                // finds no flight under the in-flight lock is then
                // guaranteed to find the cache entry.
                shared.cache.insert(job.key, Arc::clone(&artifact), weight);
                Shared::bump(&shared.tunes);
                let waiters = shared
                    .inflight
                    .lock()
                    .expect("inflight lock")
                    .remove(&job.key)
                    .unwrap_or_default();
                for w in waiters {
                    let _ = w
                        .conn
                        .respond_artifact(w.id, false, &artifact, w.want_code, true);
                    w.conn.dec_pending();
                }
            }
            Err(panic) => {
                // The evaluator's scratch state is suspect after a
                // panic mid-tune; rebuild it.
                eval = CostEvaluator::new(CostParams::default());
                let reason = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("tuner panicked");
                let waiters = shared
                    .inflight
                    .lock()
                    .expect("inflight lock")
                    .remove(&job.key)
                    .unwrap_or_default();
                for w in waiters {
                    Shared::bump(&shared.errors);
                    let _ = w.conn.respond_error(w.id, reason, true);
                    w.conn.dec_pending();
                }
            }
        }
    }
}

/// One connection's reader loop.
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone()?;
    let conn = Arc::new(Conn::new(stream));
    let mut reader = BufReader::new(read_half);
    let mut payload = Vec::new();
    loop {
        // Flush-before-block: everything buffered for this client goes
        // out before the reader parks itself waiting for more requests.
        if reader.buffer().is_empty() {
            conn.flush()?;
        }
        let tag = read_frame_into(&mut reader, &mut payload)?;
        match tag {
            FRAME_TUNE_REQ => handle_tune_request(shared, &conn, &payload)?,
            FRAME_STATS_REQ => {
                let json = serde_json::to_string(&shared.stats()).expect("stats serialize");
                let mut wr = conn.writer.lock().expect("writer lock");
                write_frame_buffered(&mut wr.w, FRAME_STATS_RESP, json.as_bytes())?;
            }
            FRAME_DRAIN => {
                conn.wait_pending_zero();
                let mut wr = conn.writer.lock().expect("writer lock");
                write_frame_buffered(&mut wr.w, FRAME_DRAIN, &[])?;
                wr.w.flush()?;
                return Ok(());
            }
            FRAME_SHUTDOWN => {
                shared.stop.store(true, Ordering::SeqCst);
                shared.queue_cv.notify_all();
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(shared.addr);
                conn.flush()?;
                return Ok(());
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected frame tag {other:#x}"),
                ));
            }
        }
    }
}

/// Decides hit / coalesce / enqueue for one tune request.
fn handle_tune_request(shared: &Shared, conn: &Arc<Conn>, payload: &[u8]) -> io::Result<()> {
    Shared::bump(&shared.requests);
    let req = match TuneRequest::decode(payload) {
        Ok(req) => req,
        Err(e) => {
            Shared::bump(&shared.errors);
            // Salvage the id when at least the first field arrived, so
            // a pipelining client can still correlate the failure.
            let id = payload
                .get(0..8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .unwrap_or(0);
            return conn.respond_error(id, &e.to_string(), false);
        }
    };
    let key = req.cache_key();
    let want_code = req.flags & REQ_WANT_CODE != 0;
    if let Some(artifact) = shared.cache.get(&key) {
        Shared::bump(&shared.hits);
        return conn.respond_artifact(req.id, true, &artifact, want_code, false);
    }
    let mut inflight = shared.inflight.lock().expect("inflight lock");
    // Double-check under the lock: the tune may have completed (and
    // published) between the probe above and acquiring the lock.
    if let Some(artifact) = shared.cache.peek(&key) {
        drop(inflight);
        Shared::bump(&shared.hits);
        return conn.respond_artifact(req.id, true, &artifact, want_code, false);
    }
    Shared::bump(&shared.misses);
    conn.inc_pending();
    let waiter = Waiter {
        conn: Arc::clone(conn),
        id: req.id,
        want_code,
    };
    use std::collections::hash_map::Entry;
    let enqueue = match inflight.entry(key) {
        Entry::Occupied(mut e) => {
            e.get_mut().push(waiter);
            Shared::bump(&shared.coalesced);
            false
        }
        Entry::Vacant(e) => {
            e.insert(vec![waiter]);
            true
        }
    };
    drop(inflight);
    if enqueue {
        shared
            .queue
            .lock()
            .expect("queue lock")
            .push_back(TuneJob { key, req });
        shared.queue_cv.notify_one();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_core::Stage;
    use hbar_matrix::BoolMatrix;

    #[test]
    fn artifact_weight_charges_schedule_heap_not_just_strings() {
        // A P = 512 flat stage holds 512 rows × 8 words × 8 B = 32 KiB
        // of bitset, while the strings here total 2 bytes. The cache
        // budget must see the bitset, or a budget of N bytes would admit
        // hundreds of times N resident.
        let n = 512;
        let mut m = BoolMatrix::zeros(n);
        for i in 1..n {
            m.set(i, 0, true);
        }
        let mut schedule = BarrierSchedule::new(n);
        schedule.push(Stage::arrival(m));
        let _ = schedule.compiled();
        let artifact = TunedArtifact {
            predicted_cost: 1.0,
            schedule,
            schedule_json: String::from("{}"),
            code_c: String::new(),
        };
        assert!(
            artifact.weight() >= 512 * 8 * 8,
            "schedule heap uncharged: weight {}",
            artifact.weight()
        );
        assert_eq!(
            artifact.weight(),
            artifact.schedule.heap_bytes()
                + artifact.schedule_json.capacity()
                + artifact.code_c.capacity()
                + std::mem::size_of::<TunedArtifact>()
                + 64
        );
    }
}
