//! The sharded schedule cache behind `hbar serve`'s warm path.
//!
//! `N` independent shards, each its own mutex around a slab-backed
//! intrusive LRU list: a lookup takes one shard lock, one `HashMap`
//! probe, and two pointer swaps to refresh recency — no allocation, no
//! global lock, so concurrent hits on different shards never contend.
//! Shard choice is Fibonacci multiplicative hashing over the (already
//! uniform) cache key, see [`CacheKey::shard_hash`].
//!
//! Every shard enforces two budgets: an entry capacity and an
//! approximate bytes budget (the caller passes each value's weight at
//! insert). Eviction pops the least-recently-used entry until both
//! budgets hold again, always keeping at least the entry being inserted.

use crate::proto::CacheKey;
use std::collections::HashMap;
use std::sync::Mutex;

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// Cache shape: shard count and the *total* budgets, split evenly
/// across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of independent shards (≥ 1; more shards, less lock
    /// contention, coarser budget split).
    pub shards: usize,
    /// Total entry capacity across all shards.
    pub capacity: usize,
    /// Total approximate bytes budget across all shards.
    pub bytes_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: 4096,
            bytes_budget: 256 << 20,
        }
    }
}

/// Aggregated counters over all shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident bytes (sum of inserted weights).
    pub bytes: u64,
    /// Entries evicted since construction.
    pub evictions: u64,
}

struct Slot<V> {
    key: CacheKey,
    value: V,
    weight: usize,
    prev: usize,
    next: usize,
}

struct Shard<V> {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (eviction victim).
    tail: usize,
    bytes: usize,
    capacity: usize,
    bytes_budget: usize,
    evictions: u64,
}

impl<V: Clone> Shard<V> {
    fn new(capacity: usize, bytes_budget: usize) -> Shard<V> {
        Shard {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
            bytes_budget,
            evictions: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(self.slots[idx].value.clone())
    }

    fn peek(&self, key: &CacheKey) -> Option<V> {
        self.map.get(key).map(|&idx| self.slots[idx].value.clone())
    }

    fn evict_tail(&mut self) {
        let victim = self.tail;
        if victim == NIL {
            return;
        }
        self.unlink(victim);
        self.bytes -= self.slots[victim].weight;
        self.map.remove(&self.slots[victim].key);
        self.free.push(victim);
        self.evictions += 1;
    }

    fn insert(&mut self, key: CacheKey, value: V, weight: usize) {
        if let Some(&idx) = self.map.get(&key) {
            // Same key tuned twice (benign race between coalesced
            // flights): refresh value and accounting.
            self.bytes = self.bytes - self.slots[idx].weight + weight;
            self.slots[idx].value = value;
            self.slots[idx].weight = weight;
            self.touch(idx);
        } else {
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slots[i] = Slot {
                        key,
                        value,
                        weight,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    self.slots.push(Slot {
                        key,
                        value,
                        weight,
                        prev: NIL,
                        next: NIL,
                    });
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.bytes += weight;
            self.push_front(idx);
        }
        // Both budgets must hold, but the entry just inserted survives
        // even when it alone exceeds the bytes budget (otherwise a
        // single oversized schedule would thrash forever).
        while self.map.len() > 1
            && (self.map.len() > self.capacity || self.bytes > self.bytes_budget)
        {
            self.evict_tail();
        }
    }
}

/// The sharded LRU cache. `V` is cloned out on hit — callers store
/// `Arc`s so a hit is a refcount bump.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
}

impl<V: Clone> ShardedCache<V> {
    /// Builds the cache, splitting the budgets evenly (rounding up, so
    /// the configured totals are never undershot).
    pub fn new(cfg: &CacheConfig) -> ShardedCache<V> {
        let n = cfg.shards.max(1);
        let per_cap = cfg.capacity.div_ceil(n).max(1);
        let per_bytes = cfg.bytes_budget.div_ceil(n).max(1);
        ShardedCache {
            shards: (0..n)
                .map(|_| Mutex::new(Shard::new(per_cap, per_bytes)))
                .collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        let h = key.shard_hash();
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.shard(key).lock().expect("shard lock").get(key)
    }

    /// Looks `key` up without touching recency — the double-check under
    /// the in-flight lock uses this so probing cannot perturb LRU order.
    pub fn peek(&self, key: &CacheKey) -> Option<V> {
        self.shard(key).lock().expect("shard lock").peek(key)
    }

    /// Inserts (or refreshes) `key`, charging `weight` approximate
    /// bytes, then evicts LRU entries until the shard's budgets hold.
    pub fn insert(&self, key: CacheKey, value: V, weight: usize) {
        self.shard(&key)
            .lock()
            .expect("shard lock")
            .insert(key, value, weight);
    }

    /// Aggregated counters (takes every shard lock in turn).
    pub fn counters(&self) -> CacheCounters {
        let mut c = CacheCounters::default();
        for shard in &self.shards {
            let s = shard.lock().expect("shard lock");
            c.entries += s.map.len() as u64;
            c.bytes += s.bytes as u64;
            c.evictions += s.evictions;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> CacheKey {
        CacheKey {
            cost_fp: k,
            cfg_fp: !k,
        }
    }

    fn single_shard(capacity: usize, bytes: usize) -> ShardedCache<u64> {
        ShardedCache::new(&CacheConfig {
            shards: 1,
            capacity,
            bytes_budget: bytes,
        })
    }

    #[test]
    fn lru_evicts_cold_entries_under_entry_cap() {
        let cache = single_shard(3, usize::MAX);
        for k in 0..3 {
            cache.insert(key(k), k, 1);
        }
        // Touch 0 so 1 is now the LRU victim.
        assert_eq!(cache.get(&key(0)), Some(0));
        cache.insert(key(3), 3, 1);
        assert_eq!(cache.get(&key(1)), None, "LRU entry must be evicted");
        for k in [0, 2, 3] {
            assert_eq!(cache.get(&key(k)), Some(k));
        }
        let c = cache.counters();
        assert_eq!((c.entries, c.evictions), (3, 1));
    }

    #[test]
    fn bytes_budget_evicts_by_weight_not_count() {
        let cache = single_shard(usize::MAX, 100);
        cache.insert(key(0), 0, 40);
        cache.insert(key(1), 1, 40);
        // 40 + 40 + 40 > 100: inserting 2 must push out the LRU (0).
        cache.insert(key(2), 2, 40);
        assert_eq!(cache.get(&key(0)), None);
        assert_eq!(cache.counters().bytes, 80);
        // An entry heavier than the whole budget still gets cached
        // (alone), instead of thrashing.
        cache.insert(key(3), 3, 500);
        assert_eq!(cache.get(&key(3)), Some(3));
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn reinsert_refreshes_value_weight_and_recency() {
        let cache = single_shard(2, usize::MAX);
        cache.insert(key(0), 0, 10);
        cache.insert(key(1), 1, 10);
        cache.insert(key(0), 100, 25);
        assert_eq!(cache.get(&key(0)), Some(100));
        assert_eq!(cache.counters().bytes, 35);
        // 0 was refreshed, so 1 is the victim now.
        cache.insert(key(2), 2, 10);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(0)), Some(100));
    }

    #[test]
    fn peek_does_not_perturb_recency() {
        let cache = single_shard(2, usize::MAX);
        cache.insert(key(0), 0, 1);
        cache.insert(key(1), 1, 1);
        assert_eq!(cache.peek(&key(0)), Some(0));
        // 0 is still LRU despite the peek.
        cache.insert(key(2), 2, 1);
        assert_eq!(cache.get(&key(0)), None);
        assert_eq!(cache.get(&key(1)), Some(1));
    }

    #[test]
    fn shards_split_budgets_and_sum_counters() {
        let cache: ShardedCache<u64> = ShardedCache::new(&CacheConfig {
            shards: 8,
            capacity: 64,
            bytes_budget: 8000,
        });
        for k in 0..64 {
            cache.insert(key(k), k, 100);
        }
        let c = cache.counters();
        assert!(c.entries > 0 && c.entries <= 64);
        assert_eq!(c.bytes, c.entries * 100);
    }
}
