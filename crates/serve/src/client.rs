//! Client side of the tune service: a pipelining connection handle.
//!
//! [`TuneClient`] separates `send` from `recv` so a caller can keep a
//! window of requests in flight (the load generator and the perf
//! harness both do); `request` is the one-shot synchronous convenience.
//! All sends are buffered — nothing reaches the socket until the next
//! `recv`/`drain`/`stats` flushes, so a burst of pipelined requests
//! costs a handful of syscalls, not one per frame.

use crate::proto::{
    decode_tune_error, ServeStats, TuneRequest, TuneResponse, FRAME_STATS_REQ, FRAME_STATS_RESP,
    FRAME_TUNE_ERR, FRAME_TUNE_REQ, FRAME_TUNE_RESP,
};
use hbar_simnet::wire::{
    read_frame_into, write_frame, write_frame_buffered, FRAME_DRAIN, FRAME_SHUTDOWN,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One answer off the wire: success or a server-reported failure.
#[derive(Clone, Debug, PartialEq)]
pub enum TuneReply {
    /// A tuned schedule.
    Ok(TuneResponse),
    /// The server could not answer this request.
    Err {
        /// The request id the failure refers to.
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
}

/// A pipelining client connection to `hbar serve`.
pub struct TuneClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
    payload: Vec<u8>,
}

impl TuneClient {
    /// Connects to a serve endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TuneClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone()?;
        Ok(TuneClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            scratch: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// Queues one request (buffered; flushed by the next receive).
    pub fn send(&mut self, req: &TuneRequest) -> io::Result<()> {
        req.encode_into(&mut self.scratch);
        write_frame_buffered(&mut self.writer, FRAME_TUNE_REQ, &self.scratch)
    }

    /// Receives the next tune answer, flushing queued requests first.
    pub fn recv(&mut self) -> io::Result<TuneReply> {
        self.writer.flush()?;
        let tag = read_frame_into(&mut self.reader, &mut self.payload)?;
        match tag {
            FRAME_TUNE_RESP => Ok(TuneReply::Ok(TuneResponse::decode(&self.payload)?)),
            FRAME_TUNE_ERR => {
                let (id, reason) = decode_tune_error(&self.payload)?;
                Ok(TuneReply::Err { id, reason })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a tune answer, got frame tag {other:#x}"),
            )),
        }
    }

    /// Synchronous round trip; a server-side failure becomes an error.
    pub fn request(&mut self, req: &TuneRequest) -> io::Result<TuneResponse> {
        self.send(req)?;
        match self.recv()? {
            TuneReply::Ok(resp) => Ok(resp),
            TuneReply::Err { id, reason } => Err(io::Error::other(format!(
                "server failed request {id}: {reason}"
            ))),
        }
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> io::Result<ServeStats> {
        write_frame_buffered(&mut self.writer, FRAME_STATS_REQ, &[])?;
        self.writer.flush()?;
        let tag = read_frame_into(&mut self.reader, &mut self.payload)?;
        if tag != FRAME_STATS_RESP {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats, got frame tag {tag:#x}"),
            ));
        }
        let text = std::str::from_utf8(&self.payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stats are not UTF-8"))?;
        serde_json::from_str(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("stats decode: {e}")))
    }

    /// Graceful end-of-session: asks the server to finish everything in
    /// flight on this connection and waits for its acknowledgement.
    pub fn drain(mut self) -> io::Result<()> {
        write_frame_buffered(&mut self.writer, FRAME_DRAIN, &[])?;
        self.writer.flush()?;
        let tag = read_frame_into(&mut self.reader, &mut self.payload)?;
        if tag == FRAME_DRAIN {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a drain ack, got frame tag {tag:#x}"),
            ))
        }
    }
}

/// Stops a serve daemon (whole process, all connections).
pub fn shutdown_server(addr: impl ToSocketAddrs) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, FRAME_SHUTDOWN, &[])
}
