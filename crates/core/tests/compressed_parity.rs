//! Dense ↔ class-compressed bit-parity.
//!
//! The compressed model's contract is that exact mode is a pure storage
//! change: every value read back is bit-identical to the dense matrix it
//! was built from, and therefore everything computed *from* those values
//! — the versioned cost fingerprint, `CostEvaluator` predictions, and
//! entire greedy tunes — is bit-identical too. These tests drive that
//! contract through the real pipeline at the sizes the issue pins
//! (P = 8/64/256) and property-test it over randomized class-structured
//! matrices.

use hbar_core::algorithms::Algorithm;
use hbar_core::compose::{tune_hybrid_costs, tune_hybrid_costs_with, TunerConfig};
use hbar_core::cost::{cost_fingerprint, CostEvaluator, CostParams};
use hbar_matrix::DenseMatrix;
use hbar_topo::cost::{CostMatrices, CostProvider};
use hbar_topo::machine::MachineSpec;
use hbar_topo::mapping::RankMapping;
use hbar_topo::profile::TopologyProfile;
use hbar_topo::CompressedCostModel;
use proptest::prelude::*;

/// A ground-truth profile of the paper's cluster-A machine *shape*
/// (dual quad-core nodes) grown to exactly `p` ranks.
fn dense_profile(p: usize) -> CostMatrices {
    let machine = MachineSpec::new(p.div_ceil(8).max(1), 2, 4);
    TopologyProfile::from_ground_truth_for(&machine, &RankMapping::RoundRobin, p).cost
}

fn assert_costs_bit_equal(a: &CostMatrices, b: &CostMatrices) {
    assert_eq!(a.p(), b.p());
    for (x, y) in a.o.as_slice().iter().zip(b.o.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "O entries differ");
    }
    for (x, y) in a.l.as_slice().iter().zip(b.l.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "L entries differ");
    }
}

/// Full-pipeline parity at one size: fingerprint, evaluator scoring over
/// a library schedule, and a complete tune (schedule, choices, predicted
/// cost) must agree bit-for-bit between the two backings.
fn assert_full_parity(p: usize) {
    let dense = dense_profile(p);
    let model = CompressedCostModel::from_dense(&dense).expect("ground truth compresses");

    // Storage round-trip and fingerprint.
    assert_costs_bit_equal(&model.to_dense(), &dense);
    assert_eq!(model.fingerprint(), cost_fingerprint(&dense), "p = {p}");

    // CostEvaluator scoring of a fixed library schedule.
    let members: Vec<usize> = (0..p).collect();
    let schedule = Algorithm::Dissemination.full_schedule(p, &members);
    let mut eval = CostEvaluator::new(CostParams::default());
    eval.rebind(&dense);
    let want = eval.predict(&schedule, &dense, None);
    eval.rebind(&model);
    let got = eval.predict(&schedule, &model, None);
    assert_eq!(want.barrier_cost.to_bits(), got.barrier_cost.to_bits());
    assert_eq!(want.rank_exit.len(), got.rank_exit.len());
    for (a, b) in want.rank_exit.iter().zip(&got.rank_exit) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // A rebind across backings with an equal fingerprint must keep the
    // evaluator's memo warm (that is the point of a shared fingerprint).
    let cfg = TunerConfig::default();
    let mut eval = CostEvaluator::new(cfg.cost_params);
    let from_dense = tune_hybrid_costs_with(&dense, &members, &cfg, &mut eval);
    let warm_scores = eval.cached_scores();
    assert!(warm_scores > 0, "tune must memoize scores");
    let from_model = tune_hybrid_costs_with(&model, &members, &cfg, &mut eval);
    assert_eq!(
        eval.cached_scores(),
        warm_scores,
        "compressed rebind invalidated the memo despite equal fingerprints"
    );

    // Full-tune parity.
    assert_eq!(
        from_dense.schedule.stages(),
        from_model.schedule.stages(),
        "p = {p}: tuned schedules diverge across backings"
    );
    assert_eq!(
        from_dense.predicted_cost.to_bits(),
        from_model.predicted_cost.to_bits()
    );
    assert_eq!(from_dense.choices.len(), from_model.choices.len());
    for (a, b) in from_dense.choices.iter().zip(&from_model.choices) {
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }

    // Cold tunes (fresh evaluators) agree with the warm ones.
    let cold = tune_hybrid_costs(&model, &members, &cfg);
    assert_eq!(cold.schedule.stages(), from_dense.schedule.stages());
    assert_eq!(
        cold.predicted_cost.to_bits(),
        from_dense.predicted_cost.to_bits()
    );
}

#[test]
fn full_parity_at_p8() {
    assert_full_parity(8);
}

#[test]
fn full_parity_at_p64() {
    assert_full_parity(64);
}

#[test]
fn full_parity_at_p256() {
    assert_full_parity(256);
}

/// Random class-structured matrices: `k` distinct off-diagonal `(O, L)`
/// behaviours stamped over the grid by index arithmetic, plus a distinct
/// diagonal. This is the structure real machines have and the compressed
/// model exists for.
fn classed_costs(p: usize, k: usize, seed: u64) -> CostMatrices {
    // SplitMix64 so the property is deterministic per seed.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let values: Vec<(f64, f64)> = (0..k)
        .map(|_| {
            let o = 1e-6 * (1.0 + (next() % 1000) as f64 / 100.0);
            let l = 1e-7 * (1.0 + (next() % 1000) as f64 / 100.0);
            (o, l)
        })
        .collect();
    let class_of: Vec<usize> = (0..p * p).map(|_| (next() as usize) % k).collect();
    // Symmetrize the class assignment so the metric shares the grid.
    let mut o = DenseMatrix::new(p);
    let mut l = DenseMatrix::new(p);
    for i in 0..p {
        o[(i, i)] = 1e-7;
        for j in (i + 1)..p {
            let (vo, vl) = values[class_of[i * p + j]];
            o[(i, j)] = vo;
            o[(j, i)] = vo;
            l[(i, j)] = vl;
            l[(j, i)] = vl;
        }
    }
    CostMatrices { o, l }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact-mode parity holds for arbitrary class-structured models,
    /// not just ground-truth machine shapes: storage round-trip,
    /// fingerprint, evaluator prediction, and a full tune.
    #[test]
    fn compressed_pipeline_is_bit_identical_to_dense(
        p in 2usize..24,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let dense = classed_costs(p, k, seed);
        let model = CompressedCostModel::from_dense(&dense).expect("classed model compresses");
        prop_assert!(model.classes() <= 2 * k + 1);

        assert_costs_bit_equal(&model.to_dense(), &dense);
        prop_assert_eq!(model.fingerprint(), cost_fingerprint(&dense));

        let members: Vec<usize> = (0..p).collect();
        let schedule = Algorithm::Tree.full_schedule(p, &members);
        let mut eval = CostEvaluator::new(CostParams::default());
        eval.rebind(&dense);
        let want = eval.barrier_cost(&schedule, &dense, None);
        eval.rebind(&model);
        let got = eval.barrier_cost(&schedule, &model, None);
        prop_assert_eq!(want.to_bits(), got.to_bits());

        let cfg = TunerConfig::default();
        let a = tune_hybrid_costs(&dense, &members, &cfg);
        let b = tune_hybrid_costs(&model, &members, &cfg);
        prop_assert_eq!(a.schedule.stages(), b.schedule.stages());
        prop_assert_eq!(a.predicted_cost.to_bits(), b.predicted_cost.to_bits());
    }
}
