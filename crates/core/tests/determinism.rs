//! Parallel/sequential bit-parity of the tuning pipeline.
//!
//! The rayon-parallel paths (root-sibling composition in the greedy
//! tuner, first-stage waves in the exhaustive search) promise output
//! bit-identical to a forced single-thread run. These tests hold them to
//! it across seeded random hierarchical profiles: identical schedules,
//! identical choice lists, and bit-identical (`to_bits`) predictions.

use hbar_core::compose::{search_optimal_barrier, tune_hybrid_costs, SearchConfig, TunerConfig};
use hbar_matrix::DenseMatrix;
use hbar_topo::cost::CostMatrices;
use proptest::prelude::*;

/// A synthetic hierarchical machine: `nodes × per_node` ranks, cheap
/// intra-node links, expensive inter-node links, and per-pair jitter so
/// no two profiles are alike. Values stay positive and symmetric enough
/// for the SSS metric.
fn hierarchical_costs(nodes: usize, per_node: usize, jitter: &[f64]) -> CostMatrices {
    let p = nodes * per_node;
    let jit = |i: usize, j: usize| jitter[(i * p + j) % jitter.len()];
    let o = DenseMatrix::from_fn(p, |i, j| {
        if i == j {
            0.4e-6
        } else if i / per_node == j / per_node {
            1.0e-6 * (1.0 + jit(i, j))
        } else {
            3.0e-6 * (1.0 + jit(i, j))
        }
    });
    let l = DenseMatrix::from_fn(p, |i, j| {
        if i == j {
            0.0
        } else if i / per_node == j / per_node {
            0.5e-6 * (1.0 + jit(j, i))
        } else {
            50.0e-6 * (1.0 + jit(j, i))
        }
    });
    CostMatrices { o, l }
}

/// Asserts the full tuner output matches bit-for-bit across modes.
fn assert_tuner_parity(cost: &CostMatrices, base: &TunerConfig) {
    let members: Vec<usize> = (0..cost.p()).collect();
    let par = TunerConfig {
        parallel: true,
        ..base.clone()
    };
    let seq = TunerConfig {
        parallel: false,
        ..base.clone()
    };
    let a = tune_hybrid_costs(cost, &members, &par);
    let b = tune_hybrid_costs(cost, &members, &seq);
    assert_eq!(a.schedule, b.schedule, "schedules diverged");
    assert_eq!(a.choices.len(), b.choices.len(), "choice counts diverged");
    for (ca, cb) in a.choices.iter().zip(&b.choices) {
        assert_eq!(ca.participants, cb.participants);
        assert_eq!(ca.depth, cb.depth);
        assert_eq!(ca.algorithm, cb.algorithm);
        assert_eq!(ca.score.to_bits(), cb.score.to_bits(), "scores diverged");
    }
    assert_eq!(
        a.predicted_cost.to_bits(),
        b.predicted_cost.to_bits(),
        "predictions diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Greedy tuner: parallel == sequential on random small hierarchies,
    /// under both the paper scoring rule and the exact-scoring extension.
    #[test]
    fn tuner_parity_on_random_hierarchies(
        nodes in 2usize..7,
        per_node in 2usize..7,
        jitter in prop::collection::vec(0.0f64..0.5, 16),
        score_exact in any::<bool>(),
    ) {
        let cost = hierarchical_costs(nodes, per_node, &jitter);
        let cfg = TunerConfig { score_exact, ..TunerConfig::default() };
        assert_tuner_parity(&cost, &cfg);
    }

    /// Exhaustive search: parallel == sequential on random profiles —
    /// same winning schedule, bit-identical cost, same expansion count
    /// and completeness flag. Kept to 4 ranks and modest budgets: the
    /// parity argument is structural, the random jitter only has to vary
    /// which branch wins and where truncation lands.
    #[test]
    fn search_parity_on_random_profiles(
        jitter in prop::collection::vec(0.0f64..0.5, 16),
        tight_budget in any::<bool>(),
    ) {
        let cost = hierarchical_costs(2, 2, &jitter);
        let par = SearchConfig {
            max_expansions: if tight_budget { 200 } else { 5_000 },
            max_stages: 4,
            parallel: true,
            ..SearchConfig::default()
        };
        let seq = SearchConfig {
            parallel: false,
            ..par
        };
        let a = search_optimal_barrier(&cost, &par, None);
        let b = search_optimal_barrier(&cost, &seq, None);
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        prop_assert_eq!(a.expansions, b.expansions);
        prop_assert_eq!(a.complete, b.complete);
    }
}

/// Above the fork threshold the parallel tuner really does run the root
/// siblings on worker threads — parity there is the load-bearing case
/// (the proptest sizes stay below the threshold and share one code
/// path).
#[test]
fn tuner_parity_when_fork_engages() {
    for (nodes, per_node, seed) in [(36usize, 8usize, 3u64), (48, 6, 17)] {
        // Cheap deterministic jitter stream (splitmix-style).
        let mut state = seed;
        let jitter: Vec<f64> = (0..32)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (u32::MAX as f64) * 0.5
            })
            .collect();
        let cost = hierarchical_costs(nodes, per_node, &jitter);
        assert!(cost.p() >= 256, "case must cross the fork threshold");
        assert_tuner_parity(&cost, &TunerConfig::default());
    }
}
