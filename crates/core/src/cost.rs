//! Layered critical-path cost prediction (§VI of the paper).
//!
//! "Predictions were collected by carrying out the sequence of matrix
//! multiplications indicated by Equation 3, weighting the incidence
//! matrices by the cost implied by Equations 1, 2, to obtain matrices of
//! per-rank cost estimates at each step. … the predicted value is
//! extracted from traversing the dependency graph from all arrivals
//! through all departures, and reporting critical path cost."
//!
//! Our concrete recurrence (one interpretation consistent with the quoted
//! description; documented here because the paper leaves the details to
//! its implementation):
//!
//! * `ready_r(0)` is rank `r`'s arrival time at the barrier (0 unless
//!   skews are injected).
//! * In stage `s`, a sender `i` with ordered target list `J` completes its
//!   sends at `ready_i(s) + t(i, J)` with `t` from Eq. 1 (arrival stages)
//!   or Eq. 2 (departure stages); the `k`-th target's signal lands at
//!   `ready_i(s)` plus the cumulative cost of the first `k` messages.
//! * A receiver handles inbound signals serially, paying `L_{src,r}` per
//!   message after its arrival (synchronized sends make the receiver an
//!   active party to each signal; this is what lets the model reproduce
//!   the master-rank bottleneck of the linear barrier). Disable with
//!   [`CostParams::receiver_processing`] to see the pure-Eq.-1 model.
//! * `ready_r(s+1)` is the max of `ready_r(s)`, `r`'s send completion and
//!   `r`'s receive completion; the barrier cost is the largest final
//!   `ready` value.

use crate::schedule::BarrierSchedule;
use hbar_topo::cost::CostMatrices;

/// Options for the prediction model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Model serial receive handling at `L_{src,dst}` per inbound message.
    pub receiver_processing: bool,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            receiver_processing: true,
        }
    }
}

/// Full result of a prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Time at which each rank exits the final stage (seconds, relative to
    /// a common time origin).
    pub rank_exit: Vec<f64>,
    /// Critical-path cost: the latest exit minus the earliest entry.
    pub barrier_cost: f64,
    /// Per-stage completion time of the slowest rank, cumulative.
    pub stage_frontier: Vec<f64>,
}

/// Predicts the execution cost of `schedule` against measured costs.
///
/// `skews` optionally gives per-rank arrival times (seconds); `None`
/// means simultaneous arrival at time 0.
///
/// # Panics
/// Panics if the schedule and cost matrices disagree on rank count, or if
/// `skews` has the wrong length.
pub fn predict_barrier_cost(
    schedule: &BarrierSchedule,
    cost: &CostMatrices,
    params: &CostParams,
    skews: Option<&[f64]>,
) -> Prediction {
    let n = schedule.n();
    assert_eq!(cost.p(), n, "cost matrices cover {} ranks, schedule has {n}", cost.p());
    let mut ready: Vec<f64> = match skews {
        Some(s) => {
            assert_eq!(s.len(), n, "skew vector length mismatch");
            s.to_vec()
        }
        None => vec![0.0; n],
    };
    let origin = ready.iter().copied().fold(f64::INFINITY, f64::min).min(0.0);
    let mut stage_frontier = Vec::with_capacity(schedule.len());

    for stage in schedule.stages() {
        let mut send_done = ready.clone();
        // (arrival_time, src) per receiver.
        let mut inbound: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
        for i in 0..n {
            let targets: Vec<usize> = stage.matrix.row_iter(i).collect();
            if targets.is_empty() {
                continue;
            }
            send_done[i] = ready[i] + cost.send_set_cost(i, &targets, stage.mode);
            for (k, &j) in targets.iter().enumerate() {
                let at = ready[i] + cost.arrival_offset(i, &targets, k, stage.mode);
                inbound[j].push((at, i));
            }
        }
        let mut next = send_done;
        for (j, mut msgs) in inbound.into_iter().enumerate() {
            if msgs.is_empty() {
                continue;
            }
            msgs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let mut t = f64::NEG_INFINITY;
            for (at, src) in msgs {
                t = if params.receiver_processing {
                    t.max(at) + cost.l[(src, j)]
                } else {
                    t.max(at)
                };
            }
            next[j] = next[j].max(t);
        }
        // A rank never regresses in time.
        for r in 0..n {
            next[r] = next[r].max(ready[r]);
        }
        ready = next;
        stage_frontier.push(
            ready.iter().copied().fold(f64::NEG_INFINITY, f64::max) - origin,
        );
    }

    let latest = ready.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Prediction {
        barrier_cost: latest - origin,
        rank_exit: ready,
        stage_frontier,
    }
}

/// Cost of only the given arrival-phase matrices (used by the greedy
/// composer, which compares "the cost of each algorithm's arrival phases"
/// per cluster, §VII-B).
pub fn predict_arrival_cost(
    n: usize,
    arrival: &[hbar_matrix::BoolMatrix],
    cost: &CostMatrices,
    params: &CostParams,
) -> f64 {
    let mut sched = BarrierSchedule::new(n);
    for m in arrival {
        sched.push(crate::schedule::Stage::arrival(m.clone()));
    }
    predict_barrier_cost(&sched, cost, params, None).barrier_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::schedule::Stage;
    use hbar_matrix::{BoolMatrix, DenseMatrix};
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    /// Uniform costs: O = 10 off-diagonal, O_ii = 1, L = 2.
    fn uniform(n: usize) -> CostMatrices {
        CostMatrices {
            o: DenseMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { 10.0 }),
            l: DenseMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 2.0 }),
        }
    }

    #[test]
    fn single_signal_costs_o_plus_l_plus_processing() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        let p = predict_barrier_cost(&sched, &c, &CostParams::default(), None);
        // Sender: max O + L = 12; receiver processes at +L = 14.
        assert_eq!(p.barrier_cost, 14.0);
        assert_eq!(p.rank_exit[1], 12.0);
        assert_eq!(p.rank_exit[0], 14.0);
    }

    #[test]
    fn receiver_processing_can_be_disabled() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        let params = CostParams { receiver_processing: false };
        let p = predict_barrier_cost(&sched, &c, &params, None);
        assert_eq!(p.barrier_cost, 12.0);
    }

    #[test]
    fn departure_mode_uses_oii() {
        let c = uniform(3);
        let mut sched = BarrierSchedule::new(3);
        sched.push(Stage::departure(BoolMatrix::from_edges(3, &[(0, 1), (0, 2)])));
        let params = CostParams { receiver_processing: false };
        let p = predict_barrier_cost(&sched, &c, &params, None);
        // Eq. 2: O_00 + L + L = 1 + 4 = 5 at the last receiver.
        assert_eq!(p.barrier_cost, 5.0);
    }

    #[test]
    fn master_bottleneck_grows_linearly() {
        // The linear barrier's arrival stage: the master's serial receive
        // handling makes cost grow with P (the paper's measured behaviour).
        let params = CostParams::default();
        let cost_at = |p: usize| {
            let c = uniform(p);
            let members: Vec<usize> = (0..p).collect();
            let sched = Algorithm::Linear.full_schedule(p, &members);
            predict_barrier_cost(&sched, &c, &params, None).barrier_cost
        };
        let c8 = cost_at(8);
        let c16 = cost_at(16);
        let c32 = cost_at(32);
        // Near-linear growth: doubling P roughly doubles the increment.
        let d1 = c16 - c8;
        let d2 = c32 - c16;
        assert!(d2 > 1.5 * d1, "expected superlinear deltas, got {d1} then {d2}");
    }

    #[test]
    fn tree_beats_linear_at_scale_on_uniform_costs() {
        let params = CostParams::default();
        let p = 64;
        let c = uniform(p);
        let members: Vec<usize> = (0..p).collect();
        let lin = predict_barrier_cost(&Algorithm::Linear.full_schedule(p, &members), &c, &params, None);
        let tree = predict_barrier_cost(&Algorithm::Tree.full_schedule(p, &members), &c, &params, None);
        assert!(tree.barrier_cost < lin.barrier_cost);
    }

    #[test]
    fn skews_shift_the_critical_path() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        // Rank 1 arrives 100s late: everything shifts behind it.
        let p = predict_barrier_cost(&sched, &c, &CostParams::default(), Some(&[0.0, 100.0]));
        assert_eq!(p.barrier_cost, 114.0);
        // Rank 0 arriving late doesn't delay rank 1's send, but delays
        // nothing else either (rank 0 only receives).
        let p2 = predict_barrier_cost(&sched, &c, &CostParams::default(), Some(&[5.0, 0.0]));
        assert_eq!(p2.rank_exit[1], 12.0);
        assert_eq!(p2.barrier_cost, 14.0);
    }

    #[test]
    fn stage_frontier_is_monotone() {
        let p = 16;
        let c = uniform(p);
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Dissemination.full_schedule(p, &members);
        let pred = predict_barrier_cost(&sched, &c, &CostParams::default(), None);
        for w in pred.stage_frontier.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(pred.stage_frontier.len(), sched.len());
        assert_eq!(*pred.stage_frontier.last().unwrap(), pred.barrier_cost);
    }

    #[test]
    fn hierarchical_profile_separates_algorithms() {
        // On a 2-node machine, the tree barrier (which localizes early
        // stages under block mapping) must beat the linear barrier, and
        // predictions must be in the paper's order of magnitude.
        let machine = MachineSpec::dual_quad_cluster(4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let p = prof.p;
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        let lin = predict_barrier_cost(&Algorithm::Linear.full_schedule(p, &members), &prof.cost, &params, None);
        let tree = predict_barrier_cost(&Algorithm::Tree.full_schedule(p, &members), &prof.cost, &params, None);
        let diss = predict_barrier_cost(&Algorithm::Dissemination.full_schedule(p, &members), &prof.cost, &params, None);
        assert!(tree.barrier_cost < lin.barrier_cost, "tree {} < linear {}", tree.barrier_cost, lin.barrier_cost);
        assert!(diss.barrier_cost < lin.barrier_cost);
        for v in [lin.barrier_cost, tree.barrier_cost, diss.barrier_cost] {
            assert!((1e-5..5e-3).contains(&v), "barrier cost {v} outside plausible range");
        }
    }

    #[test]
    fn arrival_cost_helper_matches_manual_schedule() {
        let pcount = 8;
        let machine = MachineSpec::new(2, 1, 4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let members: Vec<usize> = (0..pcount).collect();
        let arrival = Algorithm::Tree.arrival_embedded(pcount, &members);
        let params = CostParams::default();
        let via_helper = predict_arrival_cost(pcount, &arrival, &prof.cost, &params);
        let mut sched = BarrierSchedule::new(pcount);
        for m in &arrival {
            sched.push(Stage::arrival(m.clone()));
        }
        let direct = predict_barrier_cost(&sched, &prof.cost, &params, None).barrier_cost;
        assert_eq!(via_helper, direct);
    }

    #[test]
    #[should_panic(expected = "cost matrices cover")]
    fn size_mismatch_panics() {
        let c = uniform(3);
        let sched = BarrierSchedule::new(4);
        predict_barrier_cost(&sched, &c, &CostParams::default(), None);
    }
}
