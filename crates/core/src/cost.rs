//! Layered critical-path cost prediction (§VI of the paper).
//!
//! "Predictions were collected by carrying out the sequence of matrix
//! multiplications indicated by Equation 3, weighting the incidence
//! matrices by the cost implied by Equations 1, 2, to obtain matrices of
//! per-rank cost estimates at each step. … the predicted value is
//! extracted from traversing the dependency graph from all arrivals
//! through all departures, and reporting critical path cost."
//!
//! Our concrete recurrence (one interpretation consistent with the quoted
//! description; documented here because the paper leaves the details to
//! its implementation):
//!
//! * `ready_r(0)` is rank `r`'s arrival time at the barrier (0 unless
//!   skews are injected).
//! * In stage `s`, a sender `i` with ordered target list `J` completes its
//!   sends at `ready_i(s) + t(i, J)` with `t` from Eq. 1 (arrival stages)
//!   or Eq. 2 (departure stages); the `k`-th target's signal lands at
//!   `ready_i(s)` plus the cumulative cost of the first `k` messages.
//! * A receiver handles inbound signals serially, paying `L_{src,r}` per
//!   message after its arrival (synchronized sends make the receiver an
//!   active party to each signal; this is what lets the model reproduce
//!   the master-rank bottleneck of the linear barrier). Disable with
//!   [`CostParams::receiver_processing`] to see the pure-Eq.-1 model.
//! * `ready_r(s+1)` is the max of `ready_r(s)`, `r`'s send completion and
//!   `r`'s receive completion; the barrier cost is the largest final
//!   `ready` value.

use crate::algorithms::Algorithm;
use crate::clustering::{build_cluster_tree, ClusterNode};
use crate::schedule::BarrierSchedule;
use hbar_matrix::ClosureWorkspace;
use hbar_topo::cost::{CostMatrices, CostProvider, SendMode};
use hbar_topo::metric::DistanceMetric;
use std::collections::HashMap;

// The fingerprint moved to `hbar-topo::cost` so the compressed model can
// stream it without depending on this crate; re-exported here because
// `hbar serve` and external cache keys were documented against this path.
pub use hbar_topo::cost::{cost_fingerprint, COST_FINGERPRINT_VERSION};

/// Options for the prediction model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Model serial receive handling at `L_{src,dst}` per inbound message.
    pub receiver_processing: bool,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            receiver_processing: true,
        }
    }
}

/// Full result of a prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Time at which each rank exits the final stage (seconds, relative to
    /// a common time origin).
    pub rank_exit: Vec<f64>,
    /// Critical-path cost: the latest exit minus the earliest entry.
    pub barrier_cost: f64,
    /// Per-stage completion time of the slowest rank, cumulative.
    pub stage_frontier: Vec<f64>,
}

/// Predicts the execution cost of `schedule` against measured costs.
///
/// `skews` optionally gives per-rank arrival times (seconds); `None`
/// means simultaneous arrival at time 0.
///
/// # Panics
/// Panics if the schedule and cost matrices disagree on rank count, or if
/// `skews` has the wrong length.
pub fn predict_barrier_cost(
    schedule: &BarrierSchedule,
    cost: &CostMatrices,
    params: &CostParams,
    skews: Option<&[f64]>,
) -> Prediction {
    let n = schedule.n();
    assert_eq!(
        cost.p(),
        n,
        "cost matrices cover {} ranks, schedule has {n}",
        cost.p()
    );
    let mut ready: Vec<f64> = match skews {
        Some(s) => {
            assert_eq!(s.len(), n, "skew vector length mismatch");
            s.to_vec()
        }
        None => vec![0.0; n],
    };
    let origin = ready.iter().copied().fold(f64::INFINITY, f64::min).min(0.0);
    let mut stage_frontier = Vec::with_capacity(schedule.len());

    for stage in schedule.stages() {
        let mut send_done = ready.clone();
        // (arrival_time, src) per receiver.
        let mut inbound: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
        for i in 0..n {
            let targets: Vec<usize> = stage.matrix.row_iter(i).collect();
            if targets.is_empty() {
                continue;
            }
            send_done[i] = ready[i] + cost.send_set_cost(i, &targets, stage.mode);
            for (k, &j) in targets.iter().enumerate() {
                let at = ready[i] + cost.arrival_offset(i, &targets, k, stage.mode);
                inbound[j].push((at, i));
            }
        }
        let mut next = send_done;
        for (j, mut msgs) in inbound.into_iter().enumerate() {
            if msgs.is_empty() {
                continue;
            }
            msgs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let mut t = f64::NEG_INFINITY;
            for (at, src) in msgs {
                t = if params.receiver_processing {
                    t.max(at) + cost.l[(src, j)]
                } else {
                    t.max(at)
                };
            }
            next[j] = next[j].max(t);
        }
        // A rank never regresses in time.
        for r in 0..n {
            next[r] = next[r].max(ready[r]);
        }
        ready = next;
        stage_frontier.push(ready.iter().copied().fold(f64::NEG_INFINITY, f64::max) - origin);
    }

    let latest = ready.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Prediction {
        barrier_cost: latest - origin,
        rank_exit: ready,
        stage_frontier,
    }
}

/// Cost of only the given arrival-phase matrices (used by the greedy
/// composer, which compares "the cost of each algorithm's arrival phases"
/// per cluster, §VII-B).
pub fn predict_arrival_cost(
    n: usize,
    arrival: &[hbar_matrix::BoolMatrix],
    cost: &CostMatrices,
    params: &CostParams,
) -> f64 {
    let mut sched = BarrierSchedule::new(n);
    for m in arrival {
        sched.push(crate::schedule::Stage::arrival(m.clone()));
    }
    predict_barrier_cost(&sched, cost, params, None).barrier_cost
}

/// FNV-1a hash of a member set (order-sensitive; the composer always
/// passes members in ascending rank order, so equal sets hash equally).
pub fn member_set_hash(members: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h ^= members.len() as u64;
    h = h.wrapping_mul(0x0100_0000_01b3);
    for &m in members {
        h ^= m as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Key of one memoized per-cluster algorithm score: the member set
/// (hashed — see [`member_set_hash`]), the candidate algorithm, and the
/// two scoring-rule switches that change the number. Valid only for the
/// cost matrices the owning [`CostEvaluator`] is bound to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScoreKey {
    pub members_hash: u64,
    pub members_len: usize,
    pub algorithm: Algorithm,
    pub is_root: bool,
    pub exact: bool,
}

/// Reusable prediction engine: the same recurrence as
/// [`predict_barrier_cost`], bit-for-bit, but with all per-call scratch
/// (ready/next vectors, the per-receiver inbound arena and its
/// counting-sort staging) owned by the evaluator, so repeated
/// predictions over the same rank count perform zero heap allocation.
///
/// It additionally memoizes per-cluster algorithm scores for the greedy
/// composer ([`Self::cached_score`]/[`Self::store_score`]); the cache is
/// keyed by [`ScoreKey`] and guarded by a fingerprint of the bound cost
/// matrices — [`Self::rebind`] clears it whenever the matrices change.
///
/// Numeric contract: every floating-point operation is performed with
/// the same values in the same association order as the reference free
/// function, so `barrier_cost`/`predict` are exactly equal (not merely
/// close) to `predict_barrier_cost`. Receiver inbound messages are
/// staged per receiver in ascending sender order and sorted by
/// `(arrival, sender)` with an unstable sort; since each sender signals
/// a receiver at most once per stage this reproduces the reference's
/// stable sort by arrival time alone.
#[derive(Clone, Debug)]
pub struct CostEvaluator {
    params: CostParams,
    // Scratch, sized to the rank count on first use.
    ready: Vec<f64>,
    next: Vec<f64>,
    counts: Vec<usize>,
    starts: Vec<usize>,
    cursor: Vec<usize>,
    entries: Vec<(f64, usize)>,
    // Memoized greedy scores, valid for `bound_fingerprint`.
    memo: HashMap<ScoreKey, f64>,
    bound_fingerprint: Option<u64>,
    // Memoized derived topology (metric + cluster trees), same validity.
    derived: Option<DerivedTopology>,
    // Knowledge-closure scratch for allocation-free verification.
    closure: ClosureWorkspace,
}

/// Structures the tuner derives deterministically from the bound cost
/// matrices, cached across tunes while [`CostEvaluator::rebind`] keeps
/// seeing the same fingerprint. The adaptive re-tuning loop re-tunes on
/// a fixed cadence but its measured costs usually haven't drifted; at
/// P ≥ 1024 the O(P²) metric symmetrization and the cluster tree are the
/// bulk of such a no-change tune.
#[derive(Clone, Debug)]
struct DerivedTopology {
    metric: DistanceMetric,
    trees: HashMap<TreeKey, ClusterNode>,
}

/// Key of one cached cluster tree: the member set (hashed as in
/// [`member_set_hash`]) plus the clustering knobs that shape the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TreeKey {
    members_hash: u64,
    members_len: usize,
    sparseness_bits: u64,
    max_depth: usize,
}

impl CostEvaluator {
    /// A fresh evaluator; scratch grows on first prediction.
    pub fn new(params: CostParams) -> Self {
        CostEvaluator {
            params,
            ready: Vec::new(),
            next: Vec::new(),
            counts: Vec::new(),
            starts: Vec::new(),
            cursor: Vec::new(),
            entries: Vec::new(),
            memo: HashMap::new(),
            bound_fingerprint: None,
            derived: None,
            closure: ClosureWorkspace::new(),
        }
    }

    /// Verifies `schedule` synchronizes all ranks (Eq. 3) against the
    /// evaluator's closure scratch: allocation-free after warm-up, with
    /// early exit on row saturation.
    pub fn is_barrier(&mut self, schedule: &BarrierSchedule) -> bool {
        crate::verify::is_barrier_with(schedule, &mut self.closure)
    }

    /// Subset-synchronization check against the evaluator's closure
    /// scratch (see [`crate::verify::synchronizes_subset`]).
    pub fn synchronizes_subset(&mut self, schedule: &BarrierSchedule, members: &[usize]) -> bool {
        crate::verify::synchronizes_subset_with(schedule, members, &mut self.closure)
    }

    /// The model options this evaluator applies.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Binds the score memo to `cost`: a no-op when the model is
    /// unchanged (so successive tunes on the same profile share hits),
    /// a cache clear when it differs. Backing-agnostic: a compressed
    /// model with the same dense image keeps the memo warm.
    pub fn rebind<C: CostProvider + ?Sized>(&mut self, cost: &C) {
        let fp = cost.fingerprint();
        if self.bound_fingerprint != Some(fp) {
            self.memo.clear();
            self.derived = None;
            self.bound_fingerprint = Some(fp);
        }
    }

    /// The SSS cluster tree for `members` under the bound cost matrices,
    /// served from the evaluator's derived-topology cache when the same
    /// clustering was already built since the last fingerprint change.
    /// Both the metric and the tree are deterministic functions of
    /// `(cost, members, sparseness, max_depth)`, so a hit returns the
    /// identical tree a fresh build would.
    ///
    /// As with [`Self::cached_score`], callers must have
    /// [`Self::rebind`]-ed to `cost` first.
    pub fn cluster_tree<C: CostProvider + ?Sized>(
        &mut self,
        cost: &C,
        members: &[usize],
        sparseness: f64,
        max_depth: usize,
    ) -> ClusterNode {
        let derived = self.derived.get_or_insert_with(|| DerivedTopology {
            metric: cost.distance_metric(),
            trees: HashMap::new(),
        });
        let key = TreeKey {
            members_hash: member_set_hash(members),
            members_len: members.len(),
            sparseness_bits: sparseness.to_bits(),
            max_depth,
        };
        derived
            .trees
            .entry(key)
            .or_insert_with(|| build_cluster_tree(&derived.metric, members, sparseness, max_depth))
            .clone()
    }

    /// Number of memoized scores (for tests/telemetry).
    pub fn cached_scores(&self) -> usize {
        self.memo.len()
    }

    /// Looks up a memoized score. Callers must have [`Self::rebind`]-ed
    /// to the cost matrices the key was scored under.
    pub fn cached_score(&self, key: &ScoreKey) -> Option<f64> {
        self.memo.get(key).copied()
    }

    /// Records a score for later [`Self::cached_score`] hits.
    pub fn store_score(&mut self, key: ScoreKey, score: f64) {
        self.memo.insert(key, score);
    }

    /// Critical-path cost only — the fully allocation-free entry point.
    pub fn barrier_cost<C: CostProvider + ?Sized>(
        &mut self,
        schedule: &BarrierSchedule,
        cost: &C,
        skews: Option<&[f64]>,
    ) -> f64 {
        let origin = self.advance(schedule, cost, skews, None);
        self.ready.iter().copied().fold(f64::NEG_INFINITY, f64::max) - origin
    }

    /// Full prediction; only the returned vectors are allocated.
    pub fn predict<C: CostProvider + ?Sized>(
        &mut self,
        schedule: &BarrierSchedule,
        cost: &C,
        skews: Option<&[f64]>,
    ) -> Prediction {
        let mut stage_frontier = Vec::with_capacity(schedule.len());
        let origin = self.advance(schedule, cost, skews, Some(&mut stage_frontier));
        let latest = self.ready.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Prediction {
            rank_exit: self.ready.clone(),
            barrier_cost: latest - origin,
            stage_frontier,
        }
    }

    /// Runs the stage recurrence, leaving final per-rank exit times in
    /// `self.ready`, and returns the time origin. Generic over the cost
    /// backing: with dense matrices every `*_at` inlines to the index
    /// load the pre-provider code performed; with the compressed model
    /// it is a `u16` class load plus a table load.
    fn advance<C: CostProvider + ?Sized>(
        &mut self,
        schedule: &BarrierSchedule,
        cost: &C,
        skews: Option<&[f64]>,
        mut frontier: Option<&mut Vec<f64>>,
    ) -> f64 {
        let n = schedule.n();
        assert_eq!(
            cost.p(),
            n,
            "cost matrices cover {} ranks, schedule has {n}",
            cost.p()
        );
        self.ready.clear();
        match skews {
            Some(s) => {
                assert_eq!(s.len(), n, "skew vector length mismatch");
                self.ready.extend_from_slice(s);
            }
            None => self.ready.resize(n, 0.0),
        }
        let origin = self
            .ready
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(0.0);

        for stage in schedule.compiled() {
            // next starts as "no progress", i.e. a copy of ready.
            self.next.clear();
            self.next.extend_from_slice(&self.ready);
            // Counting-sort staging: bucket inbound signals by receiver,
            // preserving ascending sender order within each bucket.
            self.counts.clear();
            self.counts.resize(n, 0);
            for (_, targets) in stage.sends() {
                for &j in targets {
                    self.counts[j] += 1;
                }
            }
            self.starts.clear();
            let mut acc = 0usize;
            for &c in &self.counts {
                self.starts.push(acc);
                acc += c;
            }
            self.cursor.clear();
            self.cursor.extend_from_slice(&self.starts);
            self.entries.clear();
            self.entries.resize(acc, (0.0, 0));

            for (i, targets) in stage.sends() {
                let base = self.ready[i];
                let oii = cost.o_at(i, i);
                // Running prefix latency / startup max reproduce the
                // reference's per-target `arrival_offset` exactly: both
                // accumulate left to right over the same target order.
                let mut lat = 0.0f64;
                let mut run_max = f64::NEG_INFINITY;
                for &j in targets {
                    debug_assert_ne!(j, i, "rank {i} cannot signal itself");
                    lat += cost.l_at(i, j);
                    run_max = run_max.max(cost.o_at(i, j));
                    let startup = match stage.mode {
                        SendMode::General => run_max,
                        SendMode::ReceiversAwaiting => oii,
                    };
                    let slot = self.cursor[j];
                    self.entries[slot] = (base + (startup + lat), i);
                    self.cursor[j] = slot + 1;
                }
                let startup = match stage.mode {
                    SendMode::General => run_max,
                    SendMode::ReceiversAwaiting => oii,
                };
                self.next[i] = base + (startup + lat);
            }

            for j in 0..n {
                let cnt = self.counts[j];
                if cnt == 0 {
                    continue;
                }
                let seg = &mut self.entries[self.starts[j]..self.starts[j] + cnt];
                // Senders are unique per (receiver, stage), so ordering by
                // (arrival, sender) equals the reference's stable sort by
                // arrival over ascending-sender insertion order.
                seg.sort_unstable_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite times")
                        .then_with(|| a.1.cmp(&b.1))
                });
                let mut t = f64::NEG_INFINITY;
                for &(at, src) in seg.iter() {
                    t = if self.params.receiver_processing {
                        t.max(at) + cost.l_at(src, j)
                    } else {
                        t.max(at)
                    };
                }
                self.next[j] = self.next[j].max(t);
            }
            for r in 0..n {
                self.next[r] = self.next[r].max(self.ready[r]);
            }
            std::mem::swap(&mut self.ready, &mut self.next);
            if let Some(fr) = frontier.as_deref_mut() {
                fr.push(self.ready.iter().copied().fold(f64::NEG_INFINITY, f64::max) - origin);
            }
        }
        origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::schedule::Stage;
    use hbar_matrix::{BoolMatrix, DenseMatrix};
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    /// Uniform costs: O = 10 off-diagonal, O_ii = 1, L = 2.
    fn uniform(n: usize) -> CostMatrices {
        CostMatrices {
            o: DenseMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { 10.0 }),
            l: DenseMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 2.0 }),
        }
    }

    #[test]
    fn single_signal_costs_o_plus_l_plus_processing() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        let p = predict_barrier_cost(&sched, &c, &CostParams::default(), None);
        // Sender: max O + L = 12; receiver processes at +L = 14.
        assert_eq!(p.barrier_cost, 14.0);
        assert_eq!(p.rank_exit[1], 12.0);
        assert_eq!(p.rank_exit[0], 14.0);
    }

    #[test]
    fn receiver_processing_can_be_disabled() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        let params = CostParams {
            receiver_processing: false,
        };
        let p = predict_barrier_cost(&sched, &c, &params, None);
        assert_eq!(p.barrier_cost, 12.0);
    }

    #[test]
    fn departure_mode_uses_oii() {
        let c = uniform(3);
        let mut sched = BarrierSchedule::new(3);
        sched.push(Stage::departure(BoolMatrix::from_edges(
            3,
            &[(0, 1), (0, 2)],
        )));
        let params = CostParams {
            receiver_processing: false,
        };
        let p = predict_barrier_cost(&sched, &c, &params, None);
        // Eq. 2: O_00 + L + L = 1 + 4 = 5 at the last receiver.
        assert_eq!(p.barrier_cost, 5.0);
    }

    #[test]
    fn master_bottleneck_grows_linearly() {
        // The linear barrier's arrival stage: the master's serial receive
        // handling makes cost grow with P (the paper's measured behaviour).
        let params = CostParams::default();
        let cost_at = |p: usize| {
            let c = uniform(p);
            let members: Vec<usize> = (0..p).collect();
            let sched = Algorithm::Linear.full_schedule(p, &members);
            predict_barrier_cost(&sched, &c, &params, None).barrier_cost
        };
        let c8 = cost_at(8);
        let c16 = cost_at(16);
        let c32 = cost_at(32);
        // Near-linear growth: doubling P roughly doubles the increment.
        let d1 = c16 - c8;
        let d2 = c32 - c16;
        assert!(
            d2 > 1.5 * d1,
            "expected superlinear deltas, got {d1} then {d2}"
        );
    }

    #[test]
    fn tree_beats_linear_at_scale_on_uniform_costs() {
        let params = CostParams::default();
        let p = 64;
        let c = uniform(p);
        let members: Vec<usize> = (0..p).collect();
        let lin = predict_barrier_cost(
            &Algorithm::Linear.full_schedule(p, &members),
            &c,
            &params,
            None,
        );
        let tree = predict_barrier_cost(
            &Algorithm::Tree.full_schedule(p, &members),
            &c,
            &params,
            None,
        );
        assert!(tree.barrier_cost < lin.barrier_cost);
    }

    #[test]
    fn skews_shift_the_critical_path() {
        let c = uniform(2);
        let mut sched = BarrierSchedule::new(2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(2, &[(1, 0)])));
        // Rank 1 arrives 100s late: everything shifts behind it.
        let p = predict_barrier_cost(&sched, &c, &CostParams::default(), Some(&[0.0, 100.0]));
        assert_eq!(p.barrier_cost, 114.0);
        // Rank 0 arriving late doesn't delay rank 1's send, but delays
        // nothing else either (rank 0 only receives).
        let p2 = predict_barrier_cost(&sched, &c, &CostParams::default(), Some(&[5.0, 0.0]));
        assert_eq!(p2.rank_exit[1], 12.0);
        assert_eq!(p2.barrier_cost, 14.0);
    }

    #[test]
    fn stage_frontier_is_monotone() {
        let p = 16;
        let c = uniform(p);
        let members: Vec<usize> = (0..p).collect();
        let sched = Algorithm::Dissemination.full_schedule(p, &members);
        let pred = predict_barrier_cost(&sched, &c, &CostParams::default(), None);
        for w in pred.stage_frontier.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(pred.stage_frontier.len(), sched.len());
        assert_eq!(*pred.stage_frontier.last().unwrap(), pred.barrier_cost);
    }

    #[test]
    fn hierarchical_profile_separates_algorithms() {
        // On a 2-node machine, the tree barrier (which localizes early
        // stages under block mapping) must beat the linear barrier, and
        // predictions must be in the paper's order of magnitude.
        let machine = MachineSpec::dual_quad_cluster(4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let p = prof.p;
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        let lin = predict_barrier_cost(
            &Algorithm::Linear.full_schedule(p, &members),
            &prof.cost,
            &params,
            None,
        );
        let tree = predict_barrier_cost(
            &Algorithm::Tree.full_schedule(p, &members),
            &prof.cost,
            &params,
            None,
        );
        let diss = predict_barrier_cost(
            &Algorithm::Dissemination.full_schedule(p, &members),
            &prof.cost,
            &params,
            None,
        );
        assert!(
            tree.barrier_cost < lin.barrier_cost,
            "tree {} < linear {}",
            tree.barrier_cost,
            lin.barrier_cost
        );
        assert!(diss.barrier_cost < lin.barrier_cost);
        for v in [lin.barrier_cost, tree.barrier_cost, diss.barrier_cost] {
            assert!(
                (1e-5..5e-3).contains(&v),
                "barrier cost {v} outside plausible range"
            );
        }
    }

    #[test]
    fn arrival_cost_helper_matches_manual_schedule() {
        let pcount = 8;
        let machine = MachineSpec::new(2, 1, 4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let members: Vec<usize> = (0..pcount).collect();
        let arrival = Algorithm::Tree.arrival_embedded(pcount, &members);
        let params = CostParams::default();
        let via_helper = predict_arrival_cost(pcount, &arrival, &prof.cost, &params);
        let mut sched = BarrierSchedule::new(pcount);
        for m in &arrival {
            sched.push(Stage::arrival(m.clone()));
        }
        let direct = predict_barrier_cost(&sched, &prof.cost, &params, None).barrier_cost;
        assert_eq!(via_helper, direct);
    }

    #[test]
    fn evaluator_is_bit_identical_to_reference() {
        // Every field of the prediction must match exactly (==, not
        // approximately) across algorithms, modes, profiles and skews.
        let machine = MachineSpec::dual_quad_cluster(4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let p = prof.p;
        let members: Vec<usize> = (0..p).collect();
        let skews: Vec<f64> = (0..p).map(|r| (r % 5) as f64 * 1e-6).collect();
        for params in [
            CostParams::default(),
            CostParams {
                receiver_processing: false,
            },
        ] {
            let mut eval = CostEvaluator::new(params);
            for alg in [Algorithm::Linear, Algorithm::Tree, Algorithm::Dissemination] {
                let sched = alg.full_schedule(p, &members);
                for skew in [None, Some(skews.as_slice())] {
                    let reference = predict_barrier_cost(&sched, &prof.cost, &params, skew);
                    let fast = eval.predict(&sched, &prof.cost, skew);
                    assert_eq!(fast, reference, "{alg:?} params {params:?}");
                    assert_eq!(
                        eval.barrier_cost(&sched, &prof.cost, skew),
                        reference.barrier_cost
                    );
                }
            }
        }
    }

    #[test]
    fn evaluator_handles_tie_arrivals_like_reference() {
        // Uniform costs produce many identical arrival times; the
        // (arrival, sender) sort must replicate the stable reference.
        let p = 16;
        let c = uniform(p);
        let members: Vec<usize> = (0..p).collect();
        let params = CostParams::default();
        let mut eval = CostEvaluator::new(params);
        for alg in [Algorithm::Linear, Algorithm::Tree, Algorithm::Dissemination] {
            let sched = alg.full_schedule(p, &members);
            let reference = predict_barrier_cost(&sched, &c, &params, None);
            assert_eq!(eval.predict(&sched, &c, None), reference);
        }
    }

    #[test]
    fn evaluator_scratch_survives_rank_count_changes() {
        let params = CostParams::default();
        let mut eval = CostEvaluator::new(params);
        for p in [8, 32, 4, 16] {
            let c = uniform(p);
            let members: Vec<usize> = (0..p).collect();
            let sched = Algorithm::Dissemination.full_schedule(p, &members);
            let reference = predict_barrier_cost(&sched, &c, &params, None);
            assert_eq!(eval.barrier_cost(&sched, &c, None), reference.barrier_cost);
        }
    }

    #[test]
    fn score_memo_survives_rebind_to_same_cost_only() {
        let c = uniform(8);
        let mut eval = CostEvaluator::new(CostParams::default());
        eval.rebind(&c);
        let key = ScoreKey {
            members_hash: member_set_hash(&[0, 1, 2]),
            members_len: 3,
            algorithm: Algorithm::Tree,
            is_root: false,
            exact: true,
        };
        assert_eq!(eval.cached_score(&key), None);
        eval.store_score(key, 42.0);
        assert_eq!(eval.cached_score(&key), Some(42.0));
        // Same matrices: the memo persists.
        eval.rebind(&c.clone());
        assert_eq!(eval.cached_score(&key), Some(42.0));
        // Different matrices: the memo is invalidated.
        let mut other = c.clone();
        other.o[(0, 1)] += 1.0;
        eval.rebind(&other);
        assert_eq!(eval.cached_score(&key), None);
        assert_eq!(eval.cached_scores(), 0);
    }

    #[test]
    fn cluster_tree_cache_matches_fresh_build_and_invalidates() {
        let machine = MachineSpec::dual_quad_cluster(3);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let members: Vec<usize> = (0..prof.p).collect();
        let metric = DistanceMetric::from_costs(&prof.cost);
        let fresh = build_cluster_tree(&metric, &members, 0.35, 8);
        let mut eval = CostEvaluator::new(CostParams::default());
        eval.rebind(&prof.cost);
        let first = eval.cluster_tree(&prof.cost, &members, 0.35, 8);
        let hit = eval.cluster_tree(&prof.cost, &members, 0.35, 8);
        assert_eq!(first, fresh);
        assert_eq!(hit, fresh);
        // Different knobs key separately.
        let shallow = eval.cluster_tree(&prof.cost, &members, 0.35, 1);
        assert!(shallow.cluster_count() <= fresh.cluster_count());
        // A rebind to different costs drops the cache; the rebuilt tree
        // reflects the new matrices rather than any stale entry.
        let mut other = prof.cost.clone();
        for j in 1..other.p() {
            other.o[(0, j)] *= 3.0;
            other.o[(j, 0)] *= 3.0;
        }
        eval.rebind(&other);
        let other_metric = DistanceMetric::from_costs(&other);
        let other_fresh = build_cluster_tree(&other_metric, &members, 0.35, 8);
        assert_eq!(eval.cluster_tree(&other, &members, 0.35, 8), other_fresh);
    }

    /// Pinned golden fingerprints. These literals are the published
    /// values of [`COST_FINGERPRINT_VERSION`] 1: a persistent cache
    /// keyed on the fingerprint is poisoned by any silent change to the
    /// hash, so a change that trips this test MUST come with a version
    /// bump (and new goldens), never with a quiet literal update.
    #[test]
    fn cost_fingerprint_is_pinned() {
        assert_eq!(COST_FINGERPRINT_VERSION, 1);
        let golden: [(CostMatrices, u64); 3] = [
            (uniform(2), 0x077d_be7e_0a64_5a4d),
            (uniform(8), 0xf418_07da_a556_813f),
            (
                {
                    let machine = MachineSpec::dual_quad_cluster(2);
                    TopologyProfile::from_ground_truth(&machine, &RankMapping::Block).cost
                },
                0x254e_5871_b4fd_2b87,
            ),
        ];
        for (i, (cost, expected)) in golden.iter().enumerate() {
            assert_eq!(
                cost_fingerprint(cost),
                *expected,
                "golden fingerprint {i} changed: bump COST_FINGERPRINT_VERSION and re-pin"
            );
        }
    }

    #[test]
    fn cost_fingerprint_separates_single_bit_flips() {
        let base = uniform(4);
        let fp = cost_fingerprint(&base);
        let mut o_flip = base.clone();
        o_flip.o[(1, 2)] = f64::from_bits(o_flip.o[(1, 2)].to_bits() ^ 1);
        assert_ne!(cost_fingerprint(&o_flip), fp);
        let mut l_flip = base.clone();
        l_flip.l[(3, 0)] = f64::from_bits(l_flip.l[(3, 0)].to_bits() ^ 1);
        assert_ne!(cost_fingerprint(&l_flip), fp);
        // Negative zero is a different bit pattern from positive zero.
        let mut z = base;
        z.l[(0, 1)] = -0.0;
        assert_ne!(
            cost_fingerprint(&z),
            fp,
            "-0.0 must hash differently from 0.0"
        );
    }

    #[test]
    fn member_set_hash_separates_sets() {
        assert_ne!(member_set_hash(&[0, 1]), member_set_hash(&[0, 2]));
        assert_ne!(member_set_hash(&[0, 1]), member_set_hash(&[0, 1, 2]));
        assert_eq!(member_set_hash(&[3, 7]), member_set_hash(&[3, 7]));
    }

    #[test]
    #[should_panic(expected = "cost matrices cover")]
    fn evaluator_size_mismatch_panics() {
        let c = uniform(3);
        let sched = BarrierSchedule::new(4);
        CostEvaluator::new(CostParams::default()).barrier_cost(&sched, &c, None);
    }

    #[test]
    #[should_panic(expected = "cost matrices cover")]
    fn size_mismatch_panics() {
        let c = uniform(3);
        let sched = BarrierSchedule::new(4);
        predict_barrier_cost(&sched, &c, &CostParams::default(), None);
    }
}
