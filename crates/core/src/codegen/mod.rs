//! Compilation of barrier schedules into executable artifacts.
//!
//! §VII-C of the paper: "we measure the performance of the optimized
//! barrier algorithms after the use of a code generator, which takes a
//! matrix sequence as input, and emits a specific barrier implemented by a
//! hard-coded sequence of synchronous point-to-point sends", with no-op
//! transmission steps eliminated.
//!
//! Our equivalent of the emitted-and-compiled C object file is the
//! [`RankProgram`]: a flattened per-rank list of steps, each holding the
//! exact receive and send partners, with stages the rank does not
//! participate in removed. Both execution backends (the discrete-event
//! simulator and the real-thread executor) run `RankProgram`s directly.
//! For fidelity with the paper's tooling, [`c_source`] and [`rust_source`]
//! also emit human-readable source text of the same hard-coded barrier.

mod c_src;
mod program;
mod rust_src;

pub use c_src::c_source;
pub use program::{compile_schedule, CodegenError, RankProgram, RankStep};
pub use rust_src::rust_source;
