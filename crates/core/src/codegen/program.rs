//! Flattened per-rank barrier programs.

use crate::schedule::BarrierSchedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a schedule (or an emitter request) cannot be compiled.
///
/// [`BarrierSchedule::push`] upholds these invariants for schedules built
/// through the API, but schedules can also arrive from deserialized JSON
/// (`hbar tune --out` / `hbar codegen --schedule`), which bypasses the
/// constructor checks — codegen re-validates instead of trusting blindly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodegenError {
    /// A stage matrix has a different dimension than the schedule.
    StageDimension {
        stage: usize,
        expected: usize,
        got: usize,
    },
    /// A rank signals itself in some stage.
    SelfSignal { stage: usize, rank: usize },
    /// The requested function name is not a valid C/Rust identifier.
    InvalidName { name: String },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::StageDimension {
                stage,
                expected,
                got,
            } => write!(
                f,
                "stage {stage} is {got}x{got} but the schedule covers {expected} ranks"
            ),
            CodegenError::SelfSignal { stage, rank } => {
                write!(f, "rank {rank} signals itself in stage {stage}")
            }
            CodegenError::InvalidName { name } => {
                write!(f, "`{name}` is not a valid C/Rust identifier")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Validates that `name` can be used as a function identifier in both
/// emitted languages.
pub(super) fn validate_name(name: &str) -> Result<(), CodegenError> {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(CodegenError::InvalidName {
            name: name.to_string(),
        })
    }
}

/// One step of a rank's program: post all receives, issue all synchronous
/// sends, then wait for everything to complete before the next step.
///
/// Receives are posted before sends (as the paper's general simulator
/// does with its nonblocking request arrays), so no execution backend
/// needs an unexpected-message queue deeper than one stage.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankStep {
    /// Ranks to receive one signal from, in ascending order.
    pub recvs: Vec<usize>,
    /// Ranks to send one signal to, in ascending order.
    pub sends: Vec<usize>,
}

impl RankStep {
    /// True if the step involves no communication.
    pub fn is_empty(&self) -> bool {
        self.recvs.is_empty() && self.sends.is_empty()
    }
}

/// The compiled barrier program of one rank.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankProgram {
    /// The rank this program belongs to.
    pub rank: usize,
    /// Steps in execution order (no-op steps already eliminated).
    pub steps: Vec<RankStep>,
}

impl RankProgram {
    /// Total number of signals this rank sends.
    pub fn send_count(&self) -> usize {
        self.steps.iter().map(|s| s.sends.len()).sum()
    }

    /// Total number of signals this rank receives.
    pub fn recv_count(&self) -> usize {
        self.steps.iter().map(|s| s.recvs.len()).sum()
    }
}

/// Compiles a schedule into one program per rank.
///
/// Per-rank no-op elimination: a rank's program contains only the stages
/// in which it sends or receives, preserving their relative order. This
/// is safe because message matching between a fixed `(src, dst)` pair is
/// FIFO in every backend, and a rank's step boundaries only synchronize
/// its *own* requests — exactly the specialization the paper's generator
/// performs ("the generated test programs specialize the logic of the
/// general model, eliminate no-op transmission steps, etc.").
///
/// # Errors
/// Rejects schedules that violate the stage invariants (dimension
/// mismatch, self-signals) — possible when a schedule was deserialized
/// rather than built through [`BarrierSchedule::push`].
pub fn compile_schedule(schedule: &BarrierSchedule) -> Result<Vec<RankProgram>, CodegenError> {
    let n = schedule.n();
    let mut programs: Vec<RankProgram> = (0..n)
        .map(|rank| RankProgram {
            rank,
            steps: Vec::new(),
        })
        .collect();
    for (stage_idx, stage) in schedule.stages().iter().enumerate() {
        if stage.matrix.n() != n {
            return Err(CodegenError::StageDimension {
                stage: stage_idx,
                expected: n,
                got: stage.matrix.n(),
            });
        }
        if let Some(rank) = stage.matrix.first_self_loop() {
            return Err(CodegenError::SelfSignal {
                stage: stage_idx,
                rank,
            });
        }
        // Gather per-rank sends and receives for this stage.
        let mut steps: Vec<RankStep> = vec![RankStep::default(); n];
        for (i, j) in stage.matrix.edges() {
            steps[i].sends.push(j);
            steps[j].recvs.push(i);
        }
        for (rank, step) in steps.into_iter().enumerate() {
            if !step.is_empty() {
                programs[rank].steps.push(step);
            }
        }
    }
    Ok(programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::schedule::Stage;
    use hbar_matrix::BoolMatrix;

    #[test]
    fn linear_barrier_programs() {
        let members: Vec<usize> = (0..4).collect();
        let sched = Algorithm::Linear.full_schedule(4, &members);
        let progs = compile_schedule(&sched).unwrap();
        // Master: step 0 receives from 1..3, step 1 sends to 1..3.
        assert_eq!(progs[0].steps.len(), 2);
        assert_eq!(progs[0].steps[0].recvs, vec![1, 2, 3]);
        assert!(progs[0].steps[0].sends.is_empty());
        assert_eq!(progs[0].steps[1].sends, vec![1, 2, 3]);
        // Others: one send step, one receive step.
        for prog in &progs[1..4] {
            assert_eq!(prog.steps.len(), 2);
            assert_eq!(prog.steps[0].sends, vec![0]);
            assert_eq!(prog.steps[1].recvs, vec![0]);
        }
    }

    #[test]
    fn noop_stages_are_skipped_per_rank() {
        // Rank 3 is idle in stage 0, active in stage 1.
        let mut sched = BarrierSchedule::new(4);
        sched.push(Stage::arrival(BoolMatrix::from_edges(4, &[(1, 0)])));
        sched.push(Stage::arrival(BoolMatrix::from_edges(4, &[(3, 0)])));
        let progs = compile_schedule(&sched).unwrap();
        assert_eq!(progs[3].steps.len(), 1, "idle stage removed");
        assert_eq!(progs[3].steps[0].sends, vec![0]);
        assert_eq!(progs[0].steps.len(), 2, "active in both");
        assert!(progs[2].steps.is_empty(), "fully idle rank has no steps");
    }

    #[test]
    fn send_recv_counts_balance() {
        let members: Vec<usize> = (0..22).collect();
        for alg in [Algorithm::Tree, Algorithm::Dissemination, Algorithm::Linear] {
            let sched = alg.full_schedule(22, &members);
            let progs = compile_schedule(&sched).unwrap();
            let sends: usize = progs.iter().map(RankProgram::send_count).sum();
            let recvs: usize = progs.iter().map(RankProgram::recv_count).sum();
            assert_eq!(sends, recvs, "{alg}");
            assert_eq!(sends, sched.total_signals(), "{alg}");
        }
    }

    #[test]
    fn partner_lists_are_sorted() {
        let members: Vec<usize> = (0..16).collect();
        let sched = Algorithm::Dissemination.full_schedule(16, &members);
        for prog in compile_schedule(&sched).unwrap() {
            for step in &prog.steps {
                assert!(step.sends.windows(2).all(|w| w[0] < w[1]));
                assert!(step.recvs.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
