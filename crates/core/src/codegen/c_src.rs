//! C (MPI) source emission for a compiled barrier.
//!
//! This mirrors the artifact the paper's generator produced: a C function
//! that hard-codes the discovered signal pattern as `MPI_Irecv` /
//! `MPI_Issend` request batches with one `MPI_Waitall` per step, switched
//! on the calling rank.

use super::program::{validate_name, CodegenError, RankProgram};
use std::fmt::Write;

/// Emits a self-contained C function `name` implementing the compiled
/// barrier over `MPI_COMM_WORLD` signal semantics (zero-byte synchronous
/// sends, matching the paper's measurement programs).
///
/// # Errors
/// Fails if `name` is not a valid identifier.
pub fn c_source(name: &str, programs: &[RankProgram]) -> Result<String, CodegenError> {
    validate_name(name)?;
    let max_requests = programs
        .iter()
        .flat_map(|p| p.steps.iter())
        .map(|s| s.sends.len() + s.recvs.len())
        .max()
        .unwrap_or(0)
        .max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated barrier: hard-coded signal pattern for {} ranks. */",
        programs.len()
    );
    let _ = writeln!(out, "#include <mpi.h>");
    let _ = writeln!(out);
    let _ = writeln!(out, "void {name}(MPI_Comm comm)");
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "    int rank;");
    let _ = writeln!(out, "    MPI_Request req[{max_requests}];");
    let _ = writeln!(out, "    MPI_Comm_rank(comm, &rank);");
    let _ = writeln!(out, "    switch (rank) {{");
    for prog in programs {
        if prog.steps.is_empty() {
            continue;
        }
        let _ = writeln!(out, "    case {}:", prog.rank);
        for (si, step) in prog.steps.iter().enumerate() {
            let _ = writeln!(out, "        /* step {si} */");
            let mut r = 0usize;
            for &src in &step.recvs {
                let _ = writeln!(
                    out,
                    "        MPI_Irecv(0, 0, MPI_BYTE, {src}, 0, comm, &req[{r}]);"
                );
                r += 1;
            }
            for &dst in &step.sends {
                let _ = writeln!(
                    out,
                    "        MPI_Issend(0, 0, MPI_BYTE, {dst}, 0, comm, &req[{r}]);"
                );
                r += 1;
            }
            let _ = writeln!(out, "        MPI_Waitall({r}, req, MPI_STATUSES_IGNORE);");
        }
        let _ = writeln!(out, "        break;");
    }
    let _ = writeln!(out, "    default:");
    let _ = writeln!(out, "        break;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::codegen::compile_schedule;

    fn linear4() -> Vec<RankProgram> {
        let members: Vec<usize> = (0..4).collect();
        compile_schedule(&Algorithm::Linear.full_schedule(4, &members)).unwrap()
    }

    #[test]
    fn emits_switch_per_rank() {
        let src = c_source("hybrid_barrier", &linear4()).unwrap();
        assert!(src.contains("void hybrid_barrier(MPI_Comm comm)"));
        for r in 0..4 {
            assert!(src.contains(&format!("case {r}:")), "{src}");
        }
    }

    #[test]
    fn master_receives_then_sends() {
        let src = c_source("b", &linear4()).unwrap();
        let case0 = src
            .split("case 0:")
            .nth(1)
            .unwrap()
            .split("break;")
            .next()
            .unwrap();
        let recv_pos = case0.find("MPI_Irecv").unwrap();
        let send_pos = case0.find("MPI_Issend").unwrap();
        assert!(recv_pos < send_pos, "receives posted before sends");
        assert_eq!(case0.matches("MPI_Irecv").count(), 3);
        assert_eq!(case0.matches("MPI_Issend").count(), 3);
        assert_eq!(case0.matches("MPI_Waitall").count(), 2);
    }

    #[test]
    fn request_array_sized_to_widest_step() {
        let src = c_source("b", &linear4()).unwrap();
        // Master posts 3 requests in one step: array of 3.
        assert!(src.contains("MPI_Request req[3];"), "{src}");
    }

    #[test]
    fn empty_program_emits_default_only() {
        let progs = vec![RankProgram {
            rank: 0,
            steps: vec![],
        }];
        let src = c_source("noop", &progs).unwrap();
        assert!(!src.contains("case 0:"));
        assert!(src.contains("default:"));
        assert!(src.contains("MPI_Request req[1];"));
    }

    #[test]
    fn uses_synchronous_sends_only() {
        let members: Vec<usize> = (0..8).collect();
        let progs = compile_schedule(&Algorithm::Dissemination.full_schedule(8, &members)).unwrap();
        let src = c_source("d8", &progs).unwrap();
        assert!(src.contains("MPI_Issend"));
        assert!(
            !src.contains("MPI_Isend("),
            "only synchronous sends are emitted"
        );
    }

    #[test]
    fn bad_function_names_are_rejected() {
        assert_eq!(
            c_source("int main(void)", &[]),
            Err(CodegenError::InvalidName {
                name: "int main(void)".into()
            })
        );
    }
}
