//! Rust source emission for a compiled barrier.
//!
//! Emits a `match`-per-rank function against a minimal `Signal` trait, so
//! generated barriers can be dropped into any transport that offers
//! synchronous point-to-point signals (the trait mirrors what
//! `hbar-threadrun` implements natively).

use super::program::{validate_name, CodegenError, RankProgram};
use std::fmt::Write;

/// Emits a Rust function `name` implementing the compiled barrier.
///
/// The generated code expects a transport with
/// `fn issend(&self, dst: usize)`, `fn irecv(&self, src: usize)` and
/// `fn wait_all(&self)` — nonblocking posts plus a completion barrier,
/// matching the paper's execution model.
///
/// # Errors
/// Fails if `name` is not a valid identifier.
pub fn rust_source(name: &str, programs: &[RankProgram]) -> Result<String, CodegenError> {
    validate_name(name)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/// Generated barrier: hard-coded signal pattern for {} ranks.",
        programs.len()
    );
    let _ = writeln!(out, "pub fn {name}<T: Transport>(rank: usize, t: &T) {{");
    let _ = writeln!(out, "    match rank {{");
    for prog in programs {
        if prog.steps.is_empty() {
            continue;
        }
        let _ = writeln!(out, "        {} => {{", prog.rank);
        for step in &prog.steps {
            for &src in &step.recvs {
                let _ = writeln!(out, "            t.irecv({src});");
            }
            for &dst in &step.sends {
                let _ = writeln!(out, "            t.issend({dst});");
            }
            let _ = writeln!(out, "            t.wait_all();");
        }
        let _ = writeln!(out, "        }}");
    }
    let _ = writeln!(out, "        _ => {{}}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::codegen::compile_schedule;

    #[test]
    fn emits_match_arms() {
        let members: Vec<usize> = (0..4).collect();
        let progs = compile_schedule(&Algorithm::Tree.full_schedule(4, &members)).unwrap();
        let src = rust_source("tree4", &progs).unwrap();
        assert!(src.contains("pub fn tree4<T: Transport>(rank: usize, t: &T)"));
        assert!(src.contains("0 => {"));
        assert!(src.contains("t.issend(0);"));
        assert!(src.contains("t.wait_all();"));
        assert!(src.contains("_ => {}"));
    }

    #[test]
    fn wait_all_count_equals_total_steps() {
        let members: Vec<usize> = (0..9).collect();
        let progs = compile_schedule(&Algorithm::Dissemination.full_schedule(9, &members)).unwrap();
        let src = rust_source("d9", &progs).unwrap();
        let total_steps: usize = progs.iter().map(|p| p.steps.len()).sum();
        assert_eq!(src.matches("t.wait_all();").count(), total_steps);
    }

    #[test]
    fn generated_code_balance() {
        let members: Vec<usize> = (0..6).collect();
        let progs = compile_schedule(&Algorithm::Linear.full_schedule(6, &members)).unwrap();
        let src = rust_source("l6", &progs).unwrap();
        assert_eq!(
            src.matches("t.issend(").count(),
            src.matches("t.irecv(").count()
        );
    }

    #[test]
    fn bad_function_names_are_rejected() {
        for name in ["", "9lives", "has space", "uni-code", "semi;colon"] {
            assert_eq!(
                rust_source(name, &[]),
                Err(CodegenError::InvalidName { name: name.into() }),
                "{name:?}"
            );
        }
        assert!(rust_source("_ok_2", &[]).is_ok());
    }
}
