//! Rust source emission for a compiled barrier.
//!
//! Emits a `match`-per-rank function against a minimal `Signal` trait, so
//! generated barriers can be dropped into any transport that offers
//! synchronous point-to-point signals (the trait mirrors what
//! `hbar-threadrun` implements natively).

use super::program::RankProgram;
use std::fmt::Write;

/// Emits a Rust function `name` implementing the compiled barrier.
///
/// The generated code expects a transport with
/// `fn issend(&self, dst: usize)`, `fn irecv(&self, src: usize)` and
/// `fn wait_all(&self)` — nonblocking posts plus a completion barrier,
/// matching the paper's execution model.
pub fn rust_source(name: &str, programs: &[RankProgram]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/// Generated barrier: hard-coded signal pattern for {} ranks.",
        programs.len()
    );
    let _ = writeln!(out, "pub fn {name}<T: Transport>(rank: usize, t: &T) {{");
    let _ = writeln!(out, "    match rank {{");
    for prog in programs {
        if prog.steps.is_empty() {
            continue;
        }
        let _ = writeln!(out, "        {} => {{", prog.rank);
        for step in &prog.steps {
            for &src in &step.recvs {
                let _ = writeln!(out, "            t.irecv({src});");
            }
            for &dst in &step.sends {
                let _ = writeln!(out, "            t.issend({dst});");
            }
            let _ = writeln!(out, "            t.wait_all();");
        }
        let _ = writeln!(out, "        }}");
    }
    let _ = writeln!(out, "        _ => {{}}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::codegen::compile_schedule;

    #[test]
    fn emits_match_arms() {
        let members: Vec<usize> = (0..4).collect();
        let progs = compile_schedule(&Algorithm::Tree.full_schedule(4, &members));
        let src = rust_source("tree4", &progs);
        assert!(src.contains("pub fn tree4<T: Transport>(rank: usize, t: &T)"));
        assert!(src.contains("0 => {"));
        assert!(src.contains("t.issend(0);"));
        assert!(src.contains("t.wait_all();"));
        assert!(src.contains("_ => {}"));
    }

    #[test]
    fn wait_all_count_equals_total_steps() {
        let members: Vec<usize> = (0..9).collect();
        let progs = compile_schedule(&Algorithm::Dissemination.full_schedule(9, &members));
        let src = rust_source("d9", &progs);
        let total_steps: usize = progs.iter().map(|p| p.steps.len()).sum();
        assert_eq!(src.matches("t.wait_all();").count(), total_steps);
    }

    #[test]
    fn generated_code_balance() {
        let members: Vec<usize> = (0..6).collect();
        let progs = compile_schedule(&Algorithm::Linear.full_schedule(6, &members));
        let src = rust_source("l6", &progs);
        assert_eq!(
            src.matches("t.issend(").count(),
            src.matches("t.irecv(").count()
        );
    }
}
