//! Run-time adaptation: deciding when re-tuning pays off.
//!
//! §VIII of the paper sketches this as future work: "With a topological
//! model ready, the generation and evaluation of adapted patterns
//! requires on the order of 0.1 seconds, making it feasible to
//! periodically re-evaluate the efficiency of synchronization through
//! changing conditions. … This would only make it worthwhile to adapt
//! the algorithm when the overhead could be amortized over a sufficient
//! number of subsequent synchronizations. Developing an efficient scheme
//! to estimate the profitability of dynamically altering methods makes
//! an interesting topic for further study."
//!
//! [`AdaptiveBarrier`] implements that scheme:
//!
//! 1. it owns a currently deployed tuned schedule and a moving window of
//!    observed barrier durations;
//! 2. a sustained gap between observation and prediction flags the
//!    profile as stale ([`AdaptiveBarrier::is_degraded`]);
//! 3. given refreshed cost matrices (from incremental instrumentation or
//!    re-profiling), [`AdaptiveBarrier::evaluate_retune`] tunes a
//!    candidate, prices the switch (re-tuning compute plus schedule
//!    distribution), and recommends switching only when the projected
//!    per-invocation saving amortizes over the expected remaining
//!    invocations.

use crate::compose::{tune_hybrid_costs_with, TunedBarrier, TunerConfig};
use crate::cost::CostEvaluator;
use crate::schedule::BarrierSchedule;
use hbar_topo::cost::CostMatrices;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Knobs of the adaptation policy.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Number of recent observations kept for the degradation test.
    pub window: usize,
    /// Observed/predicted ratio above which the deployed schedule is
    /// considered degraded (e.g. 1.5 = 50 % slower than the model says).
    pub degradation_threshold: f64,
    /// One-off cost of switching schedules (seconds): re-tuning compute
    /// plus communicating the new pattern to all ranks. The paper puts
    /// the tuning part at ~0.1 s.
    pub retune_overhead: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 32,
            degradation_threshold: 1.5,
            retune_overhead: 0.1,
        }
    }
}

/// Outcome of a re-tuning evaluation.
#[derive(Clone, Debug)]
pub struct RetuneDecision {
    /// Estimated current per-invocation cost (mean of the window, or the
    /// deployed prediction when no observations exist).
    pub current_cost: f64,
    /// Predicted per-invocation cost of the freshly tuned candidate.
    pub candidate_cost: f64,
    /// `(current − candidate) × expected_invocations − retune_overhead`.
    pub projected_net_saving: f64,
    /// Whether switching is recommended.
    pub retune: bool,
}

/// A deployed tuned barrier plus the adaptation state machine.
pub struct AdaptiveBarrier {
    current: TunedBarrier,
    members: Vec<usize>,
    tuner: TunerConfig,
    policy: AdaptiveConfig,
    observations: VecDeque<f64>,
    /// Reused across every tune and re-pricing: keeps the scratch arenas
    /// and the per-cluster score memo warm, so periodic re-evaluation
    /// (the paper's ~0.1 s budget) does not re-allocate or re-score
    /// clusters whose cost matrices have not changed. `RefCell` because
    /// [`Self::evaluate_retune`] is logically read-only.
    evaluator: RefCell<CostEvaluator>,
    /// Count of schedule switches performed (for tests/telemetry).
    pub retune_count: usize,
}

impl AdaptiveBarrier {
    /// Tunes the initial schedule from `cost` for `members`.
    pub fn new(
        cost: &CostMatrices,
        members: &[usize],
        tuner: TunerConfig,
        policy: AdaptiveConfig,
    ) -> Self {
        assert!(policy.window > 0, "observation window must be non-empty");
        let mut evaluator = CostEvaluator::new(tuner.cost_params);
        let current = tune_hybrid_costs_with(cost, members, &tuner, &mut evaluator);
        AdaptiveBarrier {
            current,
            members: members.to_vec(),
            tuner,
            policy,
            observations: VecDeque::new(),
            evaluator: RefCell::new(evaluator),
            retune_count: 0,
        }
    }

    /// The currently deployed schedule.
    pub fn schedule(&self) -> &BarrierSchedule {
        &self.current.schedule
    }

    /// The currently deployed tuning result.
    pub fn current(&self) -> &TunedBarrier {
        &self.current
    }

    /// Records one observed barrier duration (seconds).
    pub fn observe(&mut self, duration: f64) {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid duration {duration}"
        );
        if self.observations.len() == self.policy.window {
            self.observations.pop_front();
        }
        self.observations.push_back(duration);
    }

    /// Mean of the observation window, if any observations exist.
    pub fn mean_observed(&self) -> Option<f64> {
        if self.observations.is_empty() {
            None
        } else {
            Some(self.observations.iter().sum::<f64>() / self.observations.len() as f64)
        }
    }

    /// True when the window is full and its mean exceeds the deployed
    /// prediction by the degradation threshold — the cheap trigger for
    /// re-profiling and [`Self::evaluate_retune`].
    pub fn is_degraded(&self) -> bool {
        self.observations.len() == self.policy.window
            && self.current.predicted_cost > 0.0
            && self.mean_observed().expect("window full") / self.current.predicted_cost
                > self.policy.degradation_threshold
    }

    /// Prices a switch to a schedule tuned from `updated` cost matrices,
    /// amortized over `expected_invocations` future barrier calls.
    /// Does not switch; see [`Self::retune_if_profitable`].
    pub fn evaluate_retune(
        &self,
        updated: &CostMatrices,
        expected_invocations: f64,
    ) -> RetuneDecision {
        self.tune_candidate(updated, expected_invocations).0
    }

    /// Tunes a candidate on the shared evaluator and prices the switch.
    fn tune_candidate(
        &self,
        updated: &CostMatrices,
        expected_invocations: f64,
    ) -> (RetuneDecision, TunedBarrier) {
        let mut eval = self.evaluator.borrow_mut();
        let candidate = tune_hybrid_costs_with(updated, &self.members, &self.tuner, &mut eval);
        // The current schedule's cost under *present* conditions: prefer
        // live observations; fall back to re-pricing it on the updated
        // matrices.
        let current_cost = self
            .mean_observed()
            .unwrap_or_else(|| eval.barrier_cost(&self.current.schedule, updated, None));
        let per_call = current_cost - candidate.predicted_cost;
        let projected = per_call * expected_invocations.max(0.0) - self.policy.retune_overhead;
        let decision = RetuneDecision {
            current_cost,
            candidate_cost: candidate.predicted_cost,
            projected_net_saving: projected,
            retune: projected > 0.0,
        };
        (decision, candidate)
    }

    /// Evaluates and, if profitable, deploys the candidate (clearing the
    /// observation window). Returns the decision taken. The candidate
    /// tuned during evaluation is deployed directly — conditions are not
    /// re-tuned a second time.
    pub fn retune_if_profitable(
        &mut self,
        updated: &CostMatrices,
        expected_invocations: f64,
    ) -> RetuneDecision {
        let (decision, candidate) = self.tune_candidate(updated, expected_invocations);
        if decision.retune {
            self.current = candidate;
            self.observations.clear();
            self.retune_count += 1;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn base_costs() -> (CostMatrices, Vec<usize>) {
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let members: Vec<usize> = (0..prof.p).collect();
        (prof.cost, members)
    }

    /// Scale all inter-rank costs by `f` (congestion from background load).
    fn congested(cost: &CostMatrices, f: f64) -> CostMatrices {
        let mut c = cost.clone();
        for i in 0..c.p() {
            for j in 0..c.p() {
                if i != j {
                    c.o[(i, j)] *= f;
                    c.l[(i, j)] *= f;
                }
            }
        }
        c
    }

    #[test]
    fn initial_schedule_is_valid() {
        let (cost, members) = base_costs();
        let ab = AdaptiveBarrier::new(
            &cost,
            &members,
            TunerConfig::default(),
            AdaptiveConfig::default(),
        );
        assert!(crate::verify::is_barrier(ab.schedule()));
        assert_eq!(ab.retune_count, 0);
    }

    #[test]
    fn degradation_requires_full_window_and_high_ratio() {
        let (cost, members) = base_costs();
        let policy = AdaptiveConfig {
            window: 4,
            degradation_threshold: 1.5,
            ..AdaptiveConfig::default()
        };
        let mut ab = AdaptiveBarrier::new(&cost, &members, TunerConfig::default(), policy);
        let pred = ab.current().predicted_cost;
        // Partial window: no verdict even with terrible numbers.
        ab.observe(pred * 10.0);
        assert!(!ab.is_degraded());
        for _ in 0..3 {
            ab.observe(pred * 10.0);
        }
        assert!(ab.is_degraded());
        // Healthy observations clear the flag as they displace the bad ones.
        for _ in 0..4 {
            ab.observe(pred);
        }
        assert!(!ab.is_degraded());
    }

    #[test]
    fn retune_only_when_amortizable() {
        let (cost, members) = base_costs();
        let policy = AdaptiveConfig {
            window: 4,
            degradation_threshold: 1.2,
            retune_overhead: 0.1,
        };
        let mut ab = AdaptiveBarrier::new(&cost, &members, TunerConfig::default(), policy);
        // Conditions change: everything 3x slower, and the deployed
        // schedule observed at 4x its prediction (it suffers extra
        // congestion a re-tuned pattern would avoid).
        let updated = congested(&cost, 3.0);
        let observed = ab.current().predicted_cost * 12.0;
        for _ in 0..4 {
            ab.observe(observed);
        }
        assert!(ab.is_degraded());
        // A handful of remaining invocations cannot amortize 0.1 s.
        let few = ab.evaluate_retune(&updated, 10.0);
        assert!(!few.retune, "{few:?}");
        // Millions of invocations can.
        let many = ab.retune_if_profitable(&updated, 1e6);
        assert!(many.retune, "{many:?}");
        assert_eq!(ab.retune_count, 1);
        assert!(ab.mean_observed().is_none(), "window cleared after switch");
        assert!(crate::verify::is_barrier(ab.schedule()));
    }

    #[test]
    fn no_observations_falls_back_to_reprediction() {
        let (cost, members) = base_costs();
        let ab = AdaptiveBarrier::new(
            &cost,
            &members,
            TunerConfig::default(),
            AdaptiveConfig::default(),
        );
        // Same conditions: the candidate equals the deployed schedule, so
        // saving is ~zero and the overhead makes re-tuning unprofitable.
        let d = ab.evaluate_retune(&cost, 1e9);
        assert!(!d.retune, "{d:?}");
        assert!((d.current_cost - d.candidate_cost).abs() <= d.current_cost * 0.05);
    }

    #[test]
    fn decision_scales_with_expected_invocations() {
        let (cost, members) = base_costs();
        let mut ab = AdaptiveBarrier::new(
            &cost,
            &members,
            TunerConfig::default(),
            AdaptiveConfig {
                window: 2,
                ..AdaptiveConfig::default()
            },
        );
        ab.observe(ab.current().predicted_cost * 50.0);
        ab.observe(ab.current().predicted_cost * 50.0);
        let low = ab.evaluate_retune(&cost, 1.0);
        let high = ab.evaluate_retune(&cost, 1e7);
        assert!(low.projected_net_saving < high.projected_net_saving);
    }
}
