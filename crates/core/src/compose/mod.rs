//! Greedy hierarchical barrier composition (§VII-B of the paper).
//!
//! "The overall approach is to traverse the tree of clusters and evaluate
//! all three algorithms on the cluster level, greedily selecting the one
//! with the lowest predicted cost of its arrival phases. The next step is
//! to traverse the tree bottom-up, combining the local barriers on the
//! same level into an overall structure for complete arrival, before
//! inferring the departure phases by a reversed sequence of transpose
//! matrices."
//!
//! Two details from the paper are reproduced exactly:
//!
//! * **Early merging** — concurrent local barriers of differing stage
//!   counts are embedded into one stage sequence aligned at their first
//!   stage ("merging shorter sequences with longer ones as early as
//!   possible").
//! * **Root dissemination rule** — candidate costs are arrival cost × 2
//!   (approximating the departure), *except* dissemination at the root,
//!   which is × 1 and exempt from the departure transposition, because its
//!   arrival phases leave every top-level representative fully informed.

mod exhaustive;
mod greedy;

pub use exhaustive::{search_optimal_barrier, SearchConfig, SearchResult};
pub use greedy::{
    tune_hybrid, tune_hybrid_costs, tune_hybrid_costs_with, tune_hybrid_for, LevelChoice,
    TunedBarrier, TunerConfig,
};
