//! The greedy tuner implementation.

use crate::algorithms::Algorithm;
use crate::clustering::{ClusterNode, SSS_DEFAULT_SPARSENESS};
use crate::cost::{member_set_hash, CostEvaluator, CostParams, ScoreKey};
use crate::schedule::BarrierSchedule;
use hbar_matrix::BoolMatrix;
use hbar_topo::cost::{CostMatrices, CostProvider};
use hbar_topo::profile::TopologyProfile;
use rayon::prelude::*;

/// Configuration of the adaptive tuner.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// SSS sparseness as a fraction of the clustered set's diameter
    /// (paper: 0.35).
    pub sparseness: f64,
    /// Candidate component algorithms (paper: linear, dissemination, tree).
    pub candidates: Vec<Algorithm>,
    /// Cost-model options used for candidate selection and the final
    /// prediction.
    pub cost_params: CostParams,
    /// Maximum cluster-tree depth.
    pub max_depth: usize,
    /// Disable the "as early as possible" merge: align concurrent local
    /// barriers at their *last* stage instead. Only used by the ablation
    /// benchmarks; the paper's construction merges early.
    pub merge_late: bool,
    /// Score candidates by the predicted cost of their full local
    /// schedule (arrival + actual transposed departure) instead of the
    /// paper's "arrival × 2" approximation. The ablation study shows the
    /// ×2 rule can misrank closely scored candidates (its Eq. 1 arrival
    /// cost overestimates the cheaper Eq. 2 departure); this is one of
    /// the paper's future-work generalizations.
    pub score_exact: bool,
    /// Plan the root's child clusters on worker threads (only kicks in
    /// past an internal cluster-size threshold and when a thread pool
    /// with more than one worker exists, where the scoring work
    /// amortizes thread startup). The parallel reduction preserves child
    /// index order and candidate order, so the tuned schedule, choices
    /// and prediction are bit-identical to a sequential run (see
    /// `tests/determinism.rs`).
    pub parallel: bool,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            sparseness: SSS_DEFAULT_SPARSENESS,
            candidates: Algorithm::PAPER_SET.to_vec(),
            cost_params: CostParams::default(),
            max_depth: 8,
            merge_late: false,
            score_exact: false,
            parallel: true,
        }
    }
}

impl TunerConfig {
    /// A configuration with the extended algorithm set (future-work
    /// generalization).
    pub fn extended() -> Self {
        TunerConfig {
            candidates: Algorithm::extended_set(),
            ..Self::default()
        }
    }

    /// Force a single component algorithm at every level (ablation).
    pub fn forced(algorithm: Algorithm) -> Self {
        TunerConfig {
            candidates: vec![algorithm],
            ..Self::default()
        }
    }
}

/// The algorithm chosen for one cluster of the tree.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelChoice {
    /// The ranks participating at this level: the cluster's own members
    /// for a leaf, or the representatives of its children.
    pub participants: Vec<usize>,
    /// Depth in the cluster tree (0 = root).
    pub depth: usize,
    /// The greedily selected algorithm.
    pub algorithm: Algorithm,
    /// The score it was selected on: arrival-phase critical path × 2
    /// (× 1 for dissemination/butterfly at the root).
    pub score: f64,
}

/// Result of tuning: the composed hybrid schedule plus its provenance.
#[derive(Clone, Debug)]
pub struct TunedBarrier {
    /// The complete, verified hybrid barrier schedule.
    pub schedule: BarrierSchedule,
    /// The cluster tree the composition followed.
    pub tree: ClusterNode,
    /// Per-cluster algorithm selections, parents before children.
    pub choices: Vec<LevelChoice>,
    /// Predicted critical-path cost of the full schedule (seconds).
    pub predicted_cost: f64,
}

impl TunedBarrier {
    /// The algorithm chosen at the root level (top of the hierarchy).
    pub fn root_algorithm(&self) -> Option<Algorithm> {
        self.choices
            .iter()
            .find(|c| c.depth == 0)
            .map(|c| c.algorithm)
    }
}

/// Tunes a hybrid barrier for all ranks of a profile.
pub fn tune_hybrid(profile: &TopologyProfile, cfg: &TunerConfig) -> TunedBarrier {
    let members: Vec<usize> = (0..profile.p).collect();
    tune_hybrid_for(profile, &members, cfg)
}

/// Tunes a hybrid barrier for a subset of a profile's ranks.
pub fn tune_hybrid_for(
    profile: &TopologyProfile,
    members: &[usize],
    cfg: &TunerConfig,
) -> TunedBarrier {
    tune_hybrid_costs(&profile.cost, members, cfg)
}

/// Tunes a hybrid barrier directly from a cost model, with no machine
/// metadata required. This is the entry point for platforms beyond the
/// hierarchical clusters the paper evaluates (its §VIII generalization):
/// any cost model whose symmetrization is a metric drives the SSS
/// clustering and the greedy composition identically. Generic over the
/// [`CostProvider`] backing — dense [`CostMatrices`] and the
/// class-compressed model tune bit-identically when their entries are
/// bit-equal.
///
/// # Panics
/// Panics if `members` is empty, if no candidate algorithm is applicable
/// to some cluster size, or if composition produces an invalid barrier
/// (which would be a bug — the construction is verified with Eq. 3).
pub fn tune_hybrid_costs<C: CostProvider + ?Sized>(
    cost: &C,
    members: &[usize],
    cfg: &TunerConfig,
) -> TunedBarrier {
    let mut eval = CostEvaluator::new(cfg.cost_params);
    tune_hybrid_costs_with(cost, members, cfg, &mut eval)
}

/// [`tune_hybrid_costs`] with a caller-owned [`CostEvaluator`], so
/// repeated tunes (e.g. the adaptive re-tuning loop) reuse its scratch
/// buffers and — when the cost matrices are unchanged — its memoized
/// per-cluster scores. The evaluator's [`CostParams`] must match
/// `cfg.cost_params`; the memo would otherwise mix models.
///
/// # Panics
/// As [`tune_hybrid_costs`], plus if the evaluator's params differ from
/// the configuration's.
pub fn tune_hybrid_costs_with<C: CostProvider + ?Sized>(
    cost: &C,
    members: &[usize],
    cfg: &TunerConfig,
    eval: &mut CostEvaluator,
) -> TunedBarrier {
    assert!(!members.is_empty(), "cannot tune a barrier for zero ranks");
    assert!(
        !cfg.candidates.is_empty(),
        "need at least one candidate algorithm"
    );
    assert_eq!(
        *eval.params(),
        cfg.cost_params,
        "evaluator and tuner disagree on cost-model params"
    );
    eval.rebind(cost);
    let tree = eval.cluster_tree(cost, members, cfg.sparseness, cfg.max_depth);
    let n = cost.p();
    let plan = plan_node(&tree, 0, cost, cfg, eval);
    let root_level = plan.choice.map(|(algorithm, _)| RootLevel {
        algorithm,
        stage_count: plan.local_stages.len(),
    });
    let mut arrival = BarrierSchedule::new(n);
    emit(&plan, &mut arrival, 0, cfg.merge_late);
    let mut choices = Vec::new();
    collect_choices(plan, 0, &mut choices);

    let skip = match &root_level {
        Some(level) if !level.algorithm.needs_departure() => level.stage_count,
        _ => 0,
    };
    let departure = arrival.departure_reversed(skip);
    let mut schedule = arrival;
    schedule.append_owned(departure);
    schedule.strip_noop_stages();

    debug_assert!(
        eval.synchronizes_subset(&schedule, members),
        "composed schedule fails verification:\n{schedule}"
    );

    let predicted_cost = eval.barrier_cost(&schedule, cost, None);
    TunedBarrier {
        schedule,
        tree,
        choices,
        predicted_cost,
    }
}

/// What the root level of the recursion contributed.
struct RootLevel {
    algorithm: Algorithm,
    stage_count: usize,
}

/// Minimum cluster size before root-sibling planning forks to worker
/// threads. Below this the whole tune runs in well under a millisecond
/// and thread startup costs more than it saves.
const PARALLEL_MEMBER_THRESHOLD: usize = 256;

/// One planned cluster level: the algorithm is selected and its local
/// stage matrices generated, but nothing is embedded into the global
/// rank space yet. Splitting planning from emission keeps the entire
/// selection pass in cluster-local index spaces; full-width `n × n`
/// matrices exist only in the single shared schedule that [`emit`]
/// writes, never per node. (The previous composer built an embedded
/// schedule per tree node and OR-merged children upward — at P = 1024
/// that allocated and scanned hundreds of 128 KiB stage matrices.)
struct PlanNode {
    /// Level participants (leaf members or child representatives), in
    /// the tree's discovery order; empty for singleton levels, which
    /// contribute no stages.
    participants: Vec<usize>,
    /// The greedy selection and its score; `None` for singleton levels.
    choice: Option<(Algorithm, f64)>,
    /// The selection's arrival stages over local ranks `0..m`.
    local_stages: Vec<BoolMatrix>,
    /// Child plans, in cluster order.
    children: Vec<PlanNode>,
    /// Arrival stages this subtree spans: the deepest child span plus
    /// this level's own stages.
    len: usize,
}

/// Recursively selects algorithms for `node`'s subtree.
fn plan_node<C: CostProvider + ?Sized>(
    node: &ClusterNode,
    depth: usize,
    cost: &C,
    cfg: &TunerConfig,
    eval: &mut CostEvaluator,
) -> PlanNode {
    let children: Vec<PlanNode> = if node.is_leaf() {
        Vec::new()
    } else {
        // Forking only pays when worker threads exist and the subtree
        // carries enough scoring work to amortize thread startup; the
        // outputs are bit-identical either way (scores are pure
        // functions of (cost, members, algorithm), so private memos
        // change nothing and results return in child index order), so
        // the cutoff is purely a latency heuristic.
        let fork = cfg.parallel
            && depth == 0
            && node.children.len() > 1
            && node.members.len() >= PARALLEL_MEMBER_THRESHOLD
            && rayon::current_num_threads() > 1;
        if fork {
            node.children
                .par_iter()
                .map(|c| {
                    let mut child_eval = CostEvaluator::new(cfg.cost_params);
                    plan_node(c, depth + 1, cost, cfg, &mut child_eval)
                })
                .collect()
        } else {
            node.children
                .iter()
                .map(|c| plan_node(c, depth + 1, cost, cfg, eval))
                .collect()
        }
    };
    let participants: Vec<usize> = if node.is_leaf() {
        node.members.clone()
    } else {
        node.children
            .iter()
            .map(ClusterNode::representative)
            .collect()
    };
    let child_span = children.iter().map(|c| c.len).max().unwrap_or(0);
    if participants.len() < 2 {
        // A singleton level contributes no signals.
        return PlanNode {
            participants: Vec::new(),
            choice: None,
            local_stages: Vec::new(),
            children,
            len: child_span,
        };
    }
    let (algorithm, score) = select_algorithm(&participants, depth == 0, cost, cfg, eval);
    let local_stages = algorithm.arrival_local(participants.len());
    let len = child_span + local_stages.len();
    PlanNode {
        participants,
        choice: Some((algorithm, score)),
        local_stages,
        children,
        len,
    }
}

/// Writes a plan's arrival stages into `sched` starting at `offset`:
/// children merge concurrently — aligned at their first stage, or at
/// their last for the merge-late ablation — and the node's own level
/// follows the deepest child (§VII-B's "merge shorter sequences with
/// longer ones as early as possible").
fn emit(plan: &PlanNode, sched: &mut BarrierSchedule, offset: usize, merge_late: bool) {
    let child_span = plan.children.iter().map(|c| c.len).max().unwrap_or(0);
    for c in &plan.children {
        let off = if merge_late {
            offset + (child_span - c.len)
        } else {
            offset
        };
        emit(c, sched, off, merge_late);
    }
    for (k, local) in plan.local_stages.iter().enumerate() {
        sched.or_embed_arrival(offset + child_span + k, local, &plan.participants);
    }
}

/// Flattens the plan into the per-level choice list, children before
/// their parent — the traversal order the composer has always reported.
fn collect_choices(plan: PlanNode, depth: usize, out: &mut Vec<LevelChoice>) {
    for c in plan.children {
        collect_choices(c, depth + 1, out);
    }
    if let Some((algorithm, score)) = plan.choice {
        out.push(LevelChoice {
            participants: plan.participants,
            depth,
            algorithm,
            score,
        });
    }
}

/// Greedy candidate selection for one cluster level: lowest arrival-phase
/// critical path, doubled to approximate the departure except for fully
/// synchronizing algorithms at the root.
fn select_algorithm<C: CostProvider + ?Sized>(
    participants: &[usize],
    is_root: bool,
    cost: &C,
    cfg: &TunerConfig,
    eval: &mut CostEvaluator,
) -> (Algorithm, f64) {
    let members_hash = member_set_hash(participants);
    // Extracted lazily on the first memo miss, shared by all candidates.
    let subspace_ok = is_ascending(participants);
    let mut local: Option<CostMatrices> = None;
    let mut best: Option<(Algorithm, f64)> = None;
    for &alg in &cfg.candidates {
        if !alg.applicable(participants.len()) {
            continue;
        }
        let key = ScoreKey {
            members_hash,
            members_len: participants.len(),
            algorithm: alg,
            is_root,
            exact: cfg.score_exact,
        };
        let score = match eval.cached_score(&key) {
            Some(hit) => hit,
            None => {
                if subspace_ok && local.is_none() {
                    local = Some(local_costs(cost, participants));
                }
                let fresh =
                    score_candidate(alg, participants, is_root, cost, local.as_ref(), cfg, eval);
                eval.store_score(key, fresh);
                fresh
            }
        };
        if best.is_none_or(|(_, b)| score < b) {
            best = Some((alg, score));
        }
    }
    best.unwrap_or_else(|| {
        panic!(
            "no applicable candidate for a cluster of {} participants",
            participants.len()
        )
    })
}

/// True when `ranks` is strictly ascending — the order the composer
/// always produces (clusters keep the input scan order, and the tuner's
/// public entry points receive ascending member lists).
fn is_ascending(ranks: &[usize]) -> bool {
    ranks.windows(2).all(|w| w[0] < w[1])
}

/// The participants' pairwise costs re-indexed into the local `0..m`
/// space that `Algorithm::arrival_local` generates over. Delegates to
/// the provider (same `from_fn` fill order as the pre-provider code, so
/// dense extraction is bit-identical).
fn local_costs<C: CostProvider + ?Sized>(cost: &C, participants: &[usize]) -> CostMatrices {
    cost.local_costs(participants)
}

/// Prices one candidate algorithm for one cluster level.
///
/// When `local` is given (the [`local_costs`] submatrix, available
/// whenever the participants are in ascending rank order), the candidate
/// is predicted in the participants-only subspace: an `m`-rank schedule
/// against the `m × m` cost slice. Ranks outside the cluster neither
/// send nor receive in a candidate's stages — their `ready` stays at the
/// zero time origin, which positive signal costs can never undercut —
/// so they only pad the embedded prediction's max/fold with zeros.
/// Ascending participants make local index order coincide with global
/// rank order, hence every sum, max and tie-break runs over the same
/// values in the same sequence and the local score is *bit-identical*
/// to the embedded one. It is also what makes tuning at P ≥ 1024
/// tractable: scoring drops from O(levels · candidates · n²) to
/// O(levels · candidates · m²) with m = cluster size.
fn score_candidate<C: CostProvider + ?Sized>(
    alg: Algorithm,
    participants: &[usize],
    is_root: bool,
    cost: &C,
    local: Option<&CostMatrices>,
    cfg: &TunerConfig,
    eval: &mut CostEvaluator,
) -> f64 {
    // The two arms price against differently typed backings (the dense
    // submatrix vs whatever `cost` is), so the shared scoring logic is
    // the generic helper below rather than one tuple match.
    match local {
        Some(sub) => {
            let w = participants.len();
            score_schedule(alg, w, alg.arrival_local(w), is_root, sub, cfg, eval)
        }
        None => {
            let w = cost.p();
            let arrival = alg.arrival_embedded(w, participants);
            score_schedule(alg, w, arrival, is_root, cost, cfg, eval)
        }
    }
}

/// Prices one candidate's arrival stages against one cost backing.
fn score_schedule<C: CostProvider + ?Sized>(
    alg: Algorithm,
    w: usize,
    arrival: Vec<BoolMatrix>,
    is_root: bool,
    cmat: &C,
    cfg: &TunerConfig,
    eval: &mut CostEvaluator,
) -> f64 {
    if cfg.score_exact {
        // Extension: predict the full local schedule, with the real
        // Eq. 2 departure (omitted entirely for fully synchronizing
        // algorithms at the root).
        let mut sched = BarrierSchedule::from_arrival_matrices(w, arrival);
        // Non-root levels always pay the transposed departure in the
        // composed hierarchy — even dissemination (paper §VII-B).
        let skip_departure = is_root && !alg.needs_departure();
        if !skip_departure {
            let dep = sched.departure_reversed(0);
            sched.append(&dep);
        }
        eval.barrier_cost(&sched, cmat, None)
    } else {
        // The paper's rule: arrival critical path × 2, except ×1 for
        // dissemination-class algorithms at the root.
        let sched = BarrierSchedule::from_arrival_matrices(w, arrival);
        let base = eval.barrier_cost(&sched, cmat, None);
        let multiplier = if is_root && !alg.needs_departure() {
            1.0
        } else {
            2.0
        };
        base * multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::predict_barrier_cost;
    use crate::verify;
    use hbar_matrix::DenseMatrix;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;

    fn profile(machine: &MachineSpec, mapping: &RankMapping, p: usize) -> TopologyProfile {
        TopologyProfile::from_ground_truth_for(machine, mapping, p)
    }

    #[test]
    fn tuned_barrier_verifies_on_cluster_a_sizes() {
        for p in [2usize, 5, 8, 9, 16, 22, 32, 40, 64] {
            let nodes = p.div_ceil(8).max(1);
            let machine = MachineSpec::dual_quad_cluster(nodes.min(8));
            let prof = profile(&machine, &RankMapping::RoundRobin, p);
            let tuned = tune_hybrid(&prof, &TunerConfig::default());
            assert!(verify::is_barrier(&tuned.schedule), "p={p}");
        }
    }

    #[test]
    fn root_prefers_dissemination_on_uniform_top_links() {
        // "The generated hybrid algorithms favor applying the dissemination
        // barrier to top-level uniform collections of high-latency links."
        let machine = MachineSpec::dual_quad_cluster(8);
        let prof = profile(&machine, &RankMapping::RoundRobin, 64);
        let tuned = tune_hybrid(&prof, &TunerConfig::default());
        assert_eq!(tuned.root_algorithm(), Some(Algorithm::Dissemination));
    }

    #[test]
    fn hybrid_beats_topology_neutral_tree() {
        let machine = MachineSpec::dual_quad_cluster(8);
        let prof = profile(&machine, &RankMapping::RoundRobin, 64);
        let cfg = TunerConfig::default();
        let tuned = tune_hybrid(&prof, &cfg);
        let members: Vec<usize> = (0..64).collect();
        let neutral = Algorithm::Tree.full_schedule(64, &members);
        let neutral_cost =
            predict_barrier_cost(&neutral, &prof.cost, &cfg.cost_params, None).barrier_cost;
        assert!(
            tuned.predicted_cost < neutral_cost,
            "hybrid {} !< neutral tree {}",
            tuned.predicted_cost,
            neutral_cost
        );
    }

    #[test]
    fn single_rank_tunes_to_empty_schedule() {
        let machine = MachineSpec::new(1, 1, 2);
        let prof = profile(&machine, &RankMapping::Block, 2);
        let tuned = tune_hybrid_for(&prof, &[1], &TunerConfig::default());
        assert_eq!(tuned.schedule.total_signals(), 0);
        assert_eq!(tuned.predicted_cost, 0.0);
        assert!(tuned.choices.is_empty());
    }

    #[test]
    fn two_ranks_single_exchange() {
        let machine = MachineSpec::new(1, 1, 2);
        let prof = profile(&machine, &RankMapping::Block, 2);
        let tuned = tune_hybrid(&prof, &TunerConfig::default());
        assert!(verify::is_barrier(&tuned.schedule));
        // Dissemination over 2 ranks: one stage, two signals — the minimum.
        assert_eq!(tuned.root_algorithm(), Some(Algorithm::Dissemination));
        assert_eq!(tuned.schedule.total_signals(), 2);
    }

    #[test]
    fn choices_cover_every_multi_member_cluster() {
        let machine = MachineSpec::dual_quad_cluster(3);
        let prof = profile(&machine, &RankMapping::RoundRobin, 22);
        let tuned = tune_hybrid(&prof, &TunerConfig::default());
        // Root choice present.
        assert!(tuned.choices.iter().any(|c| c.depth == 0));
        // All scores positive and participants at least pairs.
        for c in &tuned.choices {
            assert!(c.score > 0.0);
            assert!(c.participants.len() >= 2);
        }
    }

    #[test]
    fn forced_single_algorithm_configuration() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = profile(&machine, &RankMapping::RoundRobin, 16);
        let tuned = tune_hybrid(&prof, &TunerConfig::forced(Algorithm::Tree));
        assert!(verify::is_barrier(&tuned.schedule));
        assert!(tuned.choices.iter().all(|c| c.algorithm == Algorithm::Tree));
    }

    #[test]
    fn extended_candidates_never_worse_per_level_score() {
        // Clustering does not depend on the candidate set, so both runs
        // choose over identical participant sets per level — and a
        // minimum over a superset of candidates cannot exceed the
        // minimum over the subset. (The *full-schedule* prediction is
        // not monotone: the greedy score is the paper's arrival-×2
        // approximation, not the composed cost.)
        let machine = MachineSpec::dual_hex_cluster(5);
        let prof = profile(&machine, &RankMapping::RoundRobin, 60);
        let base = tune_hybrid(&prof, &TunerConfig::default());
        let ext = tune_hybrid(&prof, &TunerConfig::extended());
        assert!(verify::is_barrier(&ext.schedule));
        assert_eq!(base.choices.len(), ext.choices.len());
        for (b, e) in base.choices.iter().zip(&ext.choices) {
            assert_eq!(b.participants, e.participants);
            assert!(
                e.score <= b.score * 1.0001,
                "level {:?}: extended score {} > paper score {}",
                b.participants,
                e.score,
                b.score
            );
        }
    }

    #[test]
    fn merge_late_ablation_still_valid_but_not_better() {
        let machine = MachineSpec::dual_quad_cluster(3);
        let prof = profile(&machine, &RankMapping::RoundRobin, 22);
        let early = tune_hybrid(&prof, &TunerConfig::default());
        let late = tune_hybrid(
            &prof,
            &TunerConfig {
                merge_late: true,
                ..TunerConfig::default()
            },
        );
        assert!(verify::is_barrier(&late.schedule));
        assert!(early.predicted_cost <= late.predicted_cost * 1.0001);
    }

    #[test]
    fn tunes_from_raw_costs_on_non_hierarchical_topology() {
        // A ring of 12 ranks: cost grows with ring distance — no cluster
        // hierarchy at all. `tune_hybrid_costs` needs no machine
        // metadata and must still emit a valid, predicted barrier.
        let p = 12;
        let ring_dist = |i: usize, j: usize| {
            let d = i.abs_diff(j);
            d.min(p - d) as f64
        };
        let cost = CostMatrices {
            o: DenseMatrix::from_fn(p, |i, j| {
                if i == j {
                    1e-7
                } else {
                    1e-6 * (1.0 + ring_dist(i, j))
                }
            }),
            l: DenseMatrix::from_fn(p, |i, j| {
                if i == j {
                    0.0
                } else {
                    1e-7 * (1.0 + ring_dist(i, j))
                }
            }),
        };
        let members: Vec<usize> = (0..p).collect();
        let tuned = tune_hybrid_costs(&cost, &members, &TunerConfig::default());
        assert!(verify::is_barrier(&tuned.schedule));
        assert!(tuned.predicted_cost > 0.0);
        // The ring's smooth distance gradient clusters into contiguous
        // arcs (or not at all); either way every choice is scored.
        for c in &tuned.choices {
            assert!(c.score > 0.0);
        }
    }

    #[test]
    fn asymmetric_links_are_supported() {
        // The paper assumes O_ij = O_ji only to simplify benchmarking and
        // notes "extending the cost matrices to cover asymmetric links is
        // trivial". The tuner symmetrizes distances for SSS clustering
        // but costs candidates with the true asymmetric values.
        let machine = MachineSpec::dual_quad_cluster(2);
        let mut prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        // Make sends *from* even ranks 2x slower (e.g. asymmetric NIC).
        for i in (0..prof.p).step_by(2) {
            for j in 0..prof.p {
                if i != j {
                    prof.cost.o[(i, j)] *= 2.0;
                    prof.cost.l[(i, j)] *= 2.0;
                }
            }
        }
        assert!(!prof.cost.o.is_symmetric());
        let tuned = tune_hybrid(&prof, &TunerConfig::default());
        assert!(verify::is_barrier(&tuned.schedule));
        // The prediction must actually use the asymmetric values: making
        // odd-rank sends slower instead changes the predicted cost.
        let mut flipped = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        for i in (1..flipped.p).step_by(2) {
            for j in 0..flipped.p {
                if i != j {
                    flipped.cost.o[(i, j)] *= 2.0;
                    flipped.cost.l[(i, j)] *= 2.0;
                }
            }
        }
        let tuned_flipped = tune_hybrid(&flipped, &TunerConfig::default());
        let a = predict_barrier_cost(&tuned.schedule, &prof.cost, &CostParams::default(), None);
        let b = predict_barrier_cost(&tuned.schedule, &flipped.cost, &CostParams::default(), None);
        assert_ne!(a.barrier_cost, b.barrier_cost, "asymmetry must matter");
        assert!(verify::is_barrier(&tuned_flipped.schedule));
    }

    #[test]
    fn exact_scoring_never_predicts_worse_than_paper_rule() {
        // The exact score evaluates the real composed cost of each local
        // choice, so the final full-schedule prediction can only improve
        // (or tie) relative to the ×2 approximation.
        for machine in [
            MachineSpec::dual_quad_cluster(8),
            MachineSpec::dual_hex_cluster(10),
        ] {
            let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
            let paper = tune_hybrid(&prof, &TunerConfig::default());
            let exact = tune_hybrid(
                &prof,
                &TunerConfig {
                    score_exact: true,
                    ..TunerConfig::default()
                },
            );
            assert!(verify::is_barrier(&exact.schedule));
            assert!(
                exact.predicted_cost <= paper.predicted_cost * 1.0001,
                "{}: exact {} vs paper-rule {}",
                machine.name,
                exact.predicted_cost,
                paper.predicted_cost
            );
        }
    }

    #[test]
    fn subset_tuning_synchronizes_only_members() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = profile(&machine, &RankMapping::Block, 16);
        let members = vec![0, 2, 8, 10, 12];
        let tuned = tune_hybrid_for(&prof, &members, &TunerConfig::default());
        assert!(verify::synchronizes_subset(&tuned.schedule, &members));
        assert!(!verify::is_barrier(&tuned.schedule));
    }

    #[test]
    fn local_subspace_scores_match_embedded_scores() {
        // The guard behind the P >= 1024 scoring fast path: pricing a
        // candidate in the participants-only subspace must be
        // bit-identical to pricing it embedded in the full rank space.
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = profile(&machine, &RankMapping::Block, 16);
        let participants = vec![1, 3, 5, 9, 11, 13];
        assert!(is_ascending(&participants));
        let local = local_costs(&prof.cost, &participants);
        for exact in [false, true] {
            let cfg = TunerConfig {
                score_exact: exact,
                ..TunerConfig::default()
            };
            let mut eval = CostEvaluator::new(cfg.cost_params);
            eval.rebind(&prof.cost);
            for &alg in &cfg.candidates {
                if !alg.applicable(participants.len()) {
                    continue;
                }
                for is_root in [false, true] {
                    let fast = score_candidate(
                        alg,
                        &participants,
                        is_root,
                        &prof.cost,
                        Some(&local),
                        &cfg,
                        &mut eval,
                    );
                    let slow = score_candidate(
                        alg,
                        &participants,
                        is_root,
                        &prof.cost,
                        None,
                        &cfg,
                        &mut eval,
                    );
                    assert_eq!(
                        fast.to_bits(),
                        slow.to_bits(),
                        "{alg:?} is_root={is_root} exact={exact}: local {fast} vs embedded {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn unsorted_members_use_fallback_and_stay_deterministic() {
        // A non-ascending member list disables the subspace fast path;
        // the embedded fallback must still tune a valid subset barrier,
        // and reusing a warm evaluator must not change the result.
        let machine = MachineSpec::dual_quad_cluster(2);
        let prof = profile(&machine, &RankMapping::Block, 16);
        let shuffled = vec![13, 1, 9, 5, 3, 11];
        let cfg = TunerConfig::default();
        let cold = tune_hybrid_costs(&prof.cost, &shuffled, &cfg);
        assert!(verify::synchronizes_subset(&cold.schedule, &shuffled));
        let mut eval = CostEvaluator::new(cfg.cost_params);
        let first = tune_hybrid_costs_with(&prof.cost, &shuffled, &cfg, &mut eval);
        let warm = tune_hybrid_costs_with(&prof.cost, &shuffled, &cfg, &mut eval);
        assert_eq!(cold.schedule.stages(), first.schedule.stages());
        assert_eq!(first.schedule.stages(), warm.schedule.stages());
        assert_eq!(cold.predicted_cost.to_bits(), warm.predicted_cost.to_bits());
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn empty_members_panics() {
        let machine = MachineSpec::new(1, 1, 2);
        let prof = profile(&machine, &RankMapping::Block, 2);
        tune_hybrid_for(&prof, &[], &TunerConfig::default());
    }
}
