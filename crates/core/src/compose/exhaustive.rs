//! Bounded exhaustive search for optimal barriers (§VII-B).
//!
//! The paper notes the alternative to its greedy construction: "it is
//! possible to find a loose upper bound on the number of stages in an
//! optimal algorithm, and potentially search the entire space of
//! admissible matrix sequences for the best solution. Even though it may
//! be feasible, however, this approach is quite computationally
//! demanding" — and leaves it unexplored. This module explores it, for
//! the small rank counts where it is tractable, primarily to quantify
//! how far the greedy hybrids sit from optimal.
//!
//! ## Search space
//!
//! The search is restricted to **Eq. 1 (arrival-mode) stages in which
//! every rank sends at most one signal**, keeping the per-stage branching
//! factor at `P^P` instead of `2^(P²−P)`. Dissemination, butterfly and
//! tree patterns live inside this space; the linear barrier's
//! multi-target Eq. 2 departure does not, so the result is the optimum of
//! the restricted class, not of all admissible matrix sequences —
//! consistent with the paper's remark that the full space "would examine
//! a large range of algorithms which are quite obviously far from
//! optimal".
//!
//! ## Algorithm
//!
//! Branch-and-bound over (knowledge state, per-rank ready times):
//!
//! * a state is the pair `(K, ready)` from Eq. 3 and the cost
//!   recurrence;
//! * the stage bound comes from the best known solution (seeded with the
//!   greedy hybrid's schedule, so the search only improves on it);
//! * dominated states (same knowledge, pointwise-later ready vector and
//!   not fewer remaining stages) are pruned via a per-knowledge table;
//! * stages are enumerated per rank as "send to j or stay idle",
//!   deduplicated by canonical form.

use crate::cost::CostParams;
use crate::schedule::{BarrierSchedule, Stage};
use hbar_matrix::BoolMatrix;
use hbar_topo::cost::{CostMatrices, SendMode};
use rayon::prelude::*;
use std::collections::HashMap;

/// Limits for the exhaustive search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Hard cap on schedule length (stages). The greedy seed usually
    /// tightens this immediately.
    pub max_stages: usize,
    /// Cost-model options (must match the greedy's for fair comparison).
    pub cost_params: CostParams,
    /// Upper bound on total states expanded. The budget is checkpointed
    /// at wave boundaries (see `parallel`): every branch in a wave may
    /// spend up to the budget remaining when its wave began, so the
    /// total can overshoot by at most a factor of the fixed wave width —
    /// but the accounting is deterministic and thread-independent.
    pub max_expansions: usize,
    /// Search the first-stage branches on worker threads. Branches are
    /// processed in fixed-width waves; each branch starts from the
    /// incumbent bound and budget recorded at its wave boundary and owns
    /// its dominance table, so outcomes are pure functions of the wave
    /// inputs. Waves are reduced in branch order with strict-`<`
    /// improvement, so the winning schedule is bit-identical to a
    /// sequential run.
    pub parallel: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_stages: 6,
            cost_params: CostParams::default(),
            max_expansions: 2_000_000,
            parallel: true,
        }
    }
}

/// Result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best barrier found (verified).
    pub schedule: BarrierSchedule,
    /// Its predicted cost.
    pub cost: f64,
    /// States expanded during the search.
    pub expansions: usize,
    /// True if the search ran to completion (the result is optimal
    /// within the restricted space); false if it hit `max_expansions`.
    pub complete: bool,
}

/// Searches for a minimum-predicted-cost barrier over all ranks of
/// `cost`, within the one-signal-per-rank-per-stage space.
///
/// `seed` optionally provides an initial incumbent (e.g. the greedy
/// hybrid); its cost prunes the search from the start.
///
/// # Panics
/// Panics if `cost` covers fewer than 2 ranks.
pub fn search_optimal_barrier(
    cost: &CostMatrices,
    cfg: &SearchConfig,
    seed: Option<&BarrierSchedule>,
) -> SearchResult {
    let p = cost.p();
    assert!(p >= 2, "need at least two ranks, got {p}");

    let mut best_cost = f64::INFINITY;
    let mut best_schedule: Option<BarrierSchedule> = None;
    if let Some(s) = seed {
        assert_eq!(s.n(), p, "seed schedule rank count mismatch");
        let pred = crate::cost::predict_barrier_cost(s, cost, &cfg.cost_params, None);
        best_cost = pred.barrier_cost;
        best_schedule = Some(s.clone());
    }
    // Internal incumbent: the dissemination pattern lies inside the
    // restricted space (arrival stages, one signal per rank per stage),
    // so its cost is a sound upper bound that gives every branch strong
    // pruning even without a caller seed. Skipped when it would break
    // the stage cap.
    let members: Vec<usize> = (0..p).collect();
    let diss = BarrierSchedule::from_arrival_matrices(
        p,
        crate::algorithms::Algorithm::Dissemination.arrival_embedded(p, &members),
    );
    if diss.len() <= cfg.max_stages {
        let diss_cost =
            crate::cost::predict_barrier_cost(&diss, cost, &cfg.cost_params, None).barrier_cost;
        if diss_cost < best_cost {
            best_cost = diss_cost;
            best_schedule = Some(diss);
        }
    }

    let k0 = BoolMatrix::identity(p);
    let ready0 = vec![0.0; p];
    let mut expansions = 0usize;
    let mut truncated = false;
    let mut found: Option<(f64, Vec<BoolMatrix>)> = None;

    if cfg.max_stages > 0 {
        // Partition the space by first stage and process the branches in
        // fixed-width waves. Every branch in a wave starts from the
        // incumbent bound and the expansion budget recorded at the wave
        // boundary and owns its dominance table, so each outcome is a
        // pure function of (cost, cfg, bound, budget, first stage) —
        // identical whether the wave runs sequentially or on worker
        // threads. Folding the incumbent between waves (in branch order,
        // strict-`<` improvement: the first branch attaining the global
        // minimum wins) recovers most of the pruning a single shared
        // incumbent would give, without any cross-thread state.
        const WAVE: usize = 16;
        let first_stages = stage_candidates(&k0, p);
        let mut start = 0;
        while start < first_stages.len() {
            if expansions >= cfg.max_expansions {
                truncated = true;
                break;
            }
            let wave = &first_stages[start..(start + WAVE).min(first_stages.len())];
            start += wave.len();
            let bound = best_cost;
            let budget = cfg.max_expansions - expansions;
            let run_branch = |stage: &BoolMatrix| {
                let mut searcher = Searcher {
                    p,
                    cost,
                    cfg,
                    budget,
                    best_cost: bound,
                    best_stages: Vec::new(),
                    best_from_search: false,
                    expansions: 0,
                    dominance: HashMap::new(),
                    truncated: false,
                    targets: Vec::new(),
                };
                searcher.try_stage(&k0, &ready0, &mut Vec::new(), stage.clone());
                BranchOutcome {
                    cost: searcher.best_cost,
                    stages: searcher.best_stages,
                    found: searcher.best_from_search,
                    expansions: searcher.expansions,
                    truncated: searcher.truncated,
                }
            };
            let outcomes: Vec<BranchOutcome> = if cfg.parallel && wave.len() > 1 {
                wave.par_iter().map(run_branch).collect()
            } else {
                wave.iter().map(run_branch).collect()
            };
            for o in outcomes {
                expansions = expansions.saturating_add(o.expansions);
                truncated |= o.truncated;
                if o.found && o.cost < best_cost {
                    best_cost = o.cost;
                    found = Some((o.cost, o.stages));
                }
            }
        }
    }

    let (schedule, cost_value) = if let Some((found_cost, stages)) = found {
        let mut sched = BarrierSchedule::new(p);
        for m in &stages {
            sched.push(Stage::arrival(m.clone()));
        }
        (sched, found_cost)
    } else {
        let sched = best_schedule.expect("either a seed or a found solution must exist");
        (sched, best_cost)
    };
    debug_assert!(schedule.is_barrier(), "search produced a non-barrier");
    SearchResult {
        schedule,
        cost: cost_value,
        expansions,
        complete: !truncated,
    }
}

/// Outcome of searching one first-stage branch.
struct BranchOutcome {
    cost: f64,
    stages: Vec<BoolMatrix>,
    found: bool,
    expansions: usize,
    truncated: bool,
}

/// All admissible one-signal-per-rank stages under knowledge `k`, in
/// mixed-radix enumeration order (rank 0's choice varies fastest). Ranks
/// only send to targets that would gain knowledge from them.
fn stage_candidates(k: &BoolMatrix, p: usize) -> Vec<BoolMatrix> {
    let mut choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(p);
    for i in 0..p {
        let mut c: Vec<Option<usize>> = vec![None];
        for j in 0..p {
            if i == j {
                continue;
            }
            // Sending i→j is useful iff i knows something j lacks.
            let useful = (0..p).any(|a| k.get(a, i) && !k.get(a, j));
            if useful {
                c.push(Some(j));
            }
        }
        choices.push(c);
    }

    let mut out = Vec::new();
    let mut pick = vec![0usize; p];
    loop {
        let mut stage = BoolMatrix::zeros(p);
        let mut any = false;
        for (i, &ci) in pick.iter().enumerate() {
            if let Some(j) = choices[i][ci] {
                stage.set(i, j, true);
                any = true;
            }
        }
        if any {
            out.push(stage);
        }
        // Advance the mixed-radix counter.
        let mut idx = 0;
        loop {
            if idx == p {
                return out;
            }
            pick[idx] += 1;
            if pick[idx] < choices[idx].len() {
                break;
            }
            pick[idx] = 0;
            idx += 1;
        }
    }
}

struct Searcher<'a> {
    p: usize,
    cost: &'a CostMatrices,
    cfg: &'a SearchConfig,
    /// Expansion budget for this branch: the global budget remaining at
    /// the wave boundary this branch was launched from.
    budget: usize,
    best_cost: f64,
    best_stages: Vec<BoolMatrix>,
    best_from_search: bool,
    expansions: usize,
    /// Per knowledge-state: the cheapest ready-vectors seen (pareto set).
    dominance: HashMap<Vec<u64>, Vec<Vec<f64>>>,
    truncated: bool,
    /// Scratch for per-sender target lists; reused across every candidate
    /// stage instead of collecting a fresh `Vec` per row per stage.
    targets: Vec<usize>,
}

impl Searcher<'_> {
    /// Canonical key of a knowledge matrix (its raw words).
    fn key(&self, k: &BoolMatrix) -> Vec<u64> {
        (0..self.p).flat_map(|i| k.row(i).iter().copied()).collect()
    }

    /// Returns true if `ready` is dominated by a recorded vector for the
    /// same knowledge (pointwise ≤); records `ready` otherwise.
    fn dominated(&mut self, key: Vec<u64>, ready: &[f64]) -> bool {
        let entry = self.dominance.entry(key).or_default();
        for seen in entry.iter() {
            if seen.iter().zip(ready).all(|(a, b)| a <= &(b + 1e-15)) {
                return true;
            }
        }
        // Drop vectors the new one dominates, then record it.
        entry.retain(|seen| {
            !ready
                .iter()
                .zip(seen.iter())
                .all(|(a, b)| a <= &(b + 1e-15))
        });
        entry.push(ready.to_vec());
        false
    }

    fn expand(&mut self, k: &BoolMatrix, ready: &[f64], stages: &mut Vec<BoolMatrix>) {
        if self.expansions >= self.budget {
            self.truncated = true;
            return;
        }
        self.expansions += 1;

        if k.is_all_true() {
            let cost = ready.iter().copied().fold(0.0f64, f64::max);
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best_stages = stages.clone();
                self.best_from_search = true;
            }
            return;
        }
        if stages.len() >= self.cfg.max_stages {
            return;
        }
        // Lower bound: even one more free stage cannot finish before the
        // current latest-ready rank plus the cheapest remaining signal.
        let frontier = ready.iter().copied().fold(0.0f64, f64::max);
        if frontier >= self.best_cost {
            return;
        }

        // Depth-first over one-signal-per-rank stages, in the shared
        // enumeration order.
        for stage in stage_candidates(k, self.p) {
            self.try_stage(k, ready, stages, stage);
        }
    }

    fn try_stage(
        &mut self,
        k: &BoolMatrix,
        ready: &[f64],
        stages: &mut Vec<BoolMatrix>,
        stage: BoolMatrix,
    ) {
        // Apply the cost recurrence for this single stage. `next_ready` and
        // `inbound` stay live across the recursive `expand` below, so they
        // cannot share one scratch; the target list can, taken for the
        // duration of the non-recursive part.
        let mut next_ready = ready.to_vec();
        let mut inbound: Vec<Vec<(f64, usize)>> = vec![Vec::new(); self.p];
        let mut targets = std::mem::take(&mut self.targets);
        for i in 0..self.p {
            stage.row_targets_into(i, &mut targets);
            if targets.is_empty() {
                continue;
            }
            next_ready[i] = ready[i] + self.cost.send_set_cost(i, &targets, SendMode::General);
            for (kk, &j) in targets.iter().enumerate() {
                let at = ready[i] + self.cost.arrival_offset(i, &targets, kk, SendMode::General);
                inbound[j].push((at, i));
            }
        }
        self.targets = targets;
        for (j, mut msgs) in inbound.into_iter().enumerate() {
            if msgs.is_empty() {
                continue;
            }
            msgs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let mut t = f64::NEG_INFINITY;
            for (at, src) in msgs {
                t = if self.cfg.cost_params.receiver_processing {
                    t.max(at) + self.cost.l[(src, j)]
                } else {
                    t.max(at)
                };
            }
            next_ready[j] = next_ready[j].max(t);
        }
        // Bound.
        let frontier = next_ready.iter().copied().fold(0.0f64, f64::max);
        if frontier >= self.best_cost {
            return;
        }
        // Knowledge update (Eq. 3): clone K and accumulate the flow on
        // top, instead of materializing the product separately.
        let mut next_k = k.clone();
        k.and_or_accumulate_into(&stage, &mut next_k);
        if next_k == *k {
            return; // useless stage (shouldn't happen given choice pruning)
        }
        let key = self.key(&next_k);
        if self.dominated(key, &next_ready) {
            return;
        }
        stages.push(stage);
        self.expand(&next_k, &next_ready, stages);
        stages.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::compose::{tune_hybrid_costs, TunerConfig};
    use crate::cost::predict_barrier_cost;
    use crate::verify;
    use hbar_matrix::DenseMatrix;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn uniform(p: usize) -> CostMatrices {
        CostMatrices {
            o: DenseMatrix::from_fn(p, |i, j| if i == j { 0.1 } else { 10.0 }),
            l: DenseMatrix::from_fn(p, |i, j| if i == j { 0.0 } else { 1.0 }),
        }
    }

    #[test]
    fn two_ranks_optimum_is_single_exchange() {
        let cost = uniform(2);
        let result = search_optimal_barrier(&cost, &SearchConfig::default(), None);
        assert!(result.complete);
        assert!(result.schedule.is_barrier());
        // One stage, both directions: the dissemination pattern.
        assert_eq!(result.schedule.len(), 1);
        assert_eq!(result.schedule.total_signals(), 2);
    }

    #[test]
    fn search_never_loses_to_algorithms_in_its_space() {
        // Dissemination and the tree are one-signal-per-rank-per-stage
        // patterns with Eq. 1 stages throughout (when departure stages
        // are re-priced as General) — i.e. inside the search space, so
        // the complete search must match or beat them. The linear
        // barrier's multi-target Eq. 2 departure is *outside* the space
        // and is not compared.
        for p in [3usize, 4] {
            let cost = uniform(p);
            let result = search_optimal_barrier(&cost, &SearchConfig::default(), None);
            assert!(result.complete, "p={p}");
            let params = CostParams::default();
            let members: Vec<usize> = (0..p).collect();
            for alg in [Algorithm::Dissemination, Algorithm::Tree] {
                // Re-price every stage as a General-mode arrival stage.
                let general = BarrierSchedule::from_arrival_matrices(
                    p,
                    alg.full_schedule(p, &members)
                        .stages()
                        .iter()
                        .map(|s| s.matrix.clone())
                        .collect(),
                );
                let known = predict_barrier_cost(&general, &cost, &params, None).barrier_cost;
                assert!(
                    result.cost <= known + 1e-12,
                    "p={p} {alg}: search {} > known {known}",
                    result.cost
                );
            }
        }
    }

    #[test]
    fn seeding_with_greedy_only_improves() {
        let machine = MachineSpec::new(1, 2, 2);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let members: Vec<usize> = (0..4).collect();
        let greedy = tune_hybrid_costs(&prof.cost, &members, &TunerConfig::default());
        let result =
            search_optimal_barrier(&prof.cost, &SearchConfig::default(), Some(&greedy.schedule));
        assert!(result.schedule.is_barrier());
        assert!(
            result.cost <= greedy.predicted_cost + 1e-15,
            "search {} vs greedy {}",
            result.cost,
            greedy.predicted_cost
        );
    }

    #[test]
    fn found_schedules_verify_and_respect_stage_cap() {
        let cost = uniform(4);
        let cfg = SearchConfig {
            max_stages: 3,
            ..SearchConfig::default()
        };
        let result = search_optimal_barrier(&cost, &cfg, None);
        assert!(result.schedule.is_barrier());
        assert!(result.schedule.len() <= 3);
    }

    #[test]
    fn expansion_cap_reports_incomplete() {
        let cost = uniform(5);
        let cfg = SearchConfig {
            max_expansions: 50,
            ..SearchConfig::default()
        };
        // Seed so a valid incumbent exists even when truncated.
        let members: Vec<usize> = (0..5).collect();
        let seed = Algorithm::Dissemination.full_schedule(5, &members);
        let result = search_optimal_barrier(&cost, &cfg, Some(&seed));
        assert!(!result.complete);
        assert!(result.schedule.is_barrier());
    }

    #[test]
    fn heterogeneous_costs_steer_the_optimum() {
        // 4 ranks: {0,1} and {2,3} are cheap pairs; cross pairs are 100x.
        // Two structures compete: the textbook local-gather → one cross
        // exchange → local-broadcast (2 crossings, but the cross exchange
        // waits behind the local gather), and a concurrent pattern that
        // launches all cross messages at t=0 (4 crossings that overlap).
        // The search discovers the latter is cheaper — a genuinely
        // non-obvious schedule the greedy composer never considers.
        let p = 4;
        let local = |i: usize, j: usize| (i < 2) == (j < 2);
        let cost = CostMatrices {
            o: DenseMatrix::from_fn(p, |i, j| {
                if i == j {
                    0.01
                } else if local(i, j) {
                    1.0
                } else {
                    100.0
                }
            }),
            l: DenseMatrix::from_fn(p, |i, j| {
                if i == j {
                    0.0
                } else if local(i, j) {
                    0.1
                } else {
                    10.0
                }
            }),
        };
        let result = search_optimal_barrier(&cost, &SearchConfig::default(), None);
        assert!(result.complete);
        assert!(result.schedule.is_barrier());
        // It must beat the textbook hierarchical structure...
        let mut textbook = BarrierSchedule::new(p);
        textbook.push(Stage::arrival(BoolMatrix::from_edges(p, &[(1, 0), (3, 2)])));
        textbook.push(Stage::arrival(BoolMatrix::from_edges(p, &[(0, 2), (2, 0)])));
        textbook.push(Stage::arrival(BoolMatrix::from_edges(p, &[(0, 1), (2, 3)])));
        assert!(verify::is_barrier(&textbook));
        let textbook_cost =
            predict_barrier_cost(&textbook, &cost, &CostParams::default(), None).barrier_cost;
        assert!(
            result.cost <= textbook_cost + 1e-12,
            "search {} > textbook {textbook_cost}",
            result.cost
        );
        // ...and cannot use fewer than 2 slow-link crossings (information
        // must flow both ways across the boundary).
        let cross_signals: usize = result
            .schedule
            .stages()
            .iter()
            .flat_map(|s| s.matrix.edges())
            .filter(|&(i, j)| !local(i, j))
            .count();
        assert!(cross_signals >= 2, "{}", result.schedule);
    }
}
