//! Barrier schedules: ordered sequences of incidence-matrix stages.
//!
//! §V-A of the paper: "we choose to represent an overall algorithm as a
//! sequence of steps 0, 1, …, k, in which each process may signal any
//! combination of other processes, where the signals sent in each step
//! must be received before subsequent steps can begin."
//!
//! Each [`Stage`] carries its incidence matrix plus the [`SendMode`] the
//! cost model should apply: arrival phases use Eq. 1 (receivers may still
//! be computing), departure phases use Eq. 2 (receivers are known to block
//! inside the barrier already).

use hbar_matrix::BoolMatrix;
use hbar_topo::cost::SendMode;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// One step of a barrier: who signals whom, and under which cost equation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    pub matrix: BoolMatrix,
    pub mode: SendMode,
}

impl Stage {
    /// An arrival-phase stage (Eq. 1 cost).
    pub fn arrival(matrix: BoolMatrix) -> Self {
        Stage {
            matrix,
            mode: SendMode::General,
        }
    }

    /// A departure-phase stage (Eq. 2 cost).
    pub fn departure(matrix: BoolMatrix) -> Self {
        Stage {
            matrix,
            mode: SendMode::ReceiversAwaiting,
        }
    }
}

/// A [`Stage`] lowered to compressed sparse row form: the active senders
/// and their ascending target lists, materialized once per stage so hot
/// prediction loops never re-collect `row_iter` per call.
#[derive(Clone, Debug)]
pub struct CompiledStage {
    /// Cost equation of the source stage.
    pub mode: SendMode,
    senders: Vec<usize>,
    target_offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl CompiledStage {
    fn compile(stage: &Stage) -> Self {
        let n = stage.matrix.n();
        let mut senders = Vec::new();
        let mut target_offsets = vec![0];
        let mut targets = Vec::new();
        let mut row = Vec::new();
        for i in 0..n {
            stage.matrix.row_targets_into(i, &mut row);
            if row.is_empty() {
                continue;
            }
            senders.push(i);
            targets.extend_from_slice(&row);
            target_offsets.push(targets.len());
        }
        CompiledStage {
            mode: stage.mode,
            senders,
            target_offsets,
            targets,
        }
    }

    /// Ranks with at least one outgoing signal, ascending.
    pub fn senders(&self) -> &[usize] {
        &self.senders
    }

    /// Ascending targets of the `k`-th active sender.
    pub fn targets_of(&self, k: usize) -> &[usize] {
        &self.targets[self.target_offsets[k]..self.target_offsets[k + 1]]
    }

    /// Iterates `(sender, targets)` pairs in ascending sender order.
    pub fn sends(&self) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        self.senders
            .iter()
            .enumerate()
            .map(move |(k, &i)| (i, self.targets_of(k)))
    }

    /// Bytes of heap behind the CSR vectors.
    pub fn heap_bytes(&self) -> usize {
        (self.senders.capacity() + self.target_offsets.capacity() + self.targets.capacity())
            * std::mem::size_of::<usize>()
    }
}

/// A complete signal pattern for `n` processes.
///
/// Carries a lazily compiled CSR view of its stages (see
/// [`Self::compiled`]); the cache never participates in equality,
/// cloning, or serialization, and every mutation resets it.
pub struct BarrierSchedule {
    n: usize,
    stages: Vec<Stage>,
    compiled: OnceLock<Vec<CompiledStage>>,
}

impl Clone for BarrierSchedule {
    fn clone(&self) -> Self {
        BarrierSchedule {
            n: self.n,
            stages: self.stages.clone(),
            compiled: OnceLock::new(),
        }
    }
}

impl fmt::Debug for BarrierSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierSchedule")
            .field("n", &self.n)
            .field("stages", &self.stages)
            .finish()
    }
}

impl PartialEq for BarrierSchedule {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.stages == other.stages
    }
}

impl Eq for BarrierSchedule {}

impl Serialize for BarrierSchedule {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("stages".to_string(), self.stages.to_value()),
        ])
    }
}

impl Deserialize for BarrierSchedule {
    fn from_value(value: &serde::Value) -> Result<Self, String> {
        Ok(BarrierSchedule {
            n: Deserialize::from_value(serde::__field(value, "n", "BarrierSchedule")?)?,
            stages: Deserialize::from_value(serde::__field(value, "stages", "BarrierSchedule")?)?,
            compiled: OnceLock::new(),
        })
    }
}

impl BarrierSchedule {
    /// An empty schedule over `n` processes.
    pub fn new(n: usize) -> Self {
        BarrierSchedule {
            n,
            stages: Vec::new(),
            compiled: OnceLock::new(),
        }
    }

    /// Builds from arrival-phase matrices (all stages get Eq. 1 mode).
    pub fn from_arrival_matrices(n: usize, matrices: Vec<BoolMatrix>) -> Self {
        let mut s = Self::new(n);
        for m in matrices {
            s.push(Stage::arrival(m));
        }
        s
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the schedule has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The CSR-compiled stages, materialized on first use and cached
    /// until the next mutation. Compilation walks matrix rows a whole
    /// word at a time ([`BoolMatrix::row_targets_into`]), so repeated
    /// cost predictions over an unchanged schedule allocate nothing and
    /// never re-scan the bitsets.
    pub fn compiled(&self) -> &[CompiledStage] {
        self.compiled
            .get_or_init(|| self.stages.iter().map(CompiledStage::compile).collect())
    }

    /// Just the incidence matrices, in execution order.
    pub fn matrices(&self) -> Vec<&BoolMatrix> {
        self.stages.iter().map(|s| &s.matrix).collect()
    }

    /// Bytes of heap this schedule holds: the stage vector, every
    /// stage's packed incidence words, and — when materialized — the
    /// compiled CSR cache's sender/offset/target vectors. Cache budgets
    /// that retain schedules must charge this, not
    /// `size_of::<BarrierSchedule>()`; at P = 4096 one stage's matrix
    /// alone is 2 MiB against a 56-byte struct.
    pub fn heap_bytes(&self) -> usize {
        let stages = self.stages.capacity() * std::mem::size_of::<Stage>()
            + self
                .stages
                .iter()
                .map(|s| s.matrix.heap_bytes())
                .sum::<usize>();
        let compiled = self.compiled.get().map_or(0, |c| {
            c.capacity() * std::mem::size_of::<CompiledStage>()
                + c.iter().map(CompiledStage::heap_bytes).sum::<usize>()
        });
        stages + compiled
    }

    /// Appends a stage.
    ///
    /// # Panics
    /// Panics on dimension mismatch or if any process signals itself.
    pub fn push(&mut self, stage: Stage) {
        assert_eq!(stage.matrix.n(), self.n, "stage dimension mismatch");
        if let Some(i) = stage.matrix.first_self_loop() {
            panic!("rank {i} signals itself");
        }
        self.compiled.take();
        self.stages.push(stage);
    }

    /// Appends all stages of `other`.
    pub fn append(&mut self, other: &BarrierSchedule) {
        assert_eq!(other.n, self.n, "schedule dimension mismatch");
        self.compiled.take();
        for s in &other.stages {
            self.stages.push(s.clone());
        }
    }

    /// Appends all stages of `other`, taking ownership — [`Self::append`]
    /// without cloning each stage matrix.
    pub fn append_owned(&mut self, other: BarrierSchedule) {
        assert_eq!(other.n, self.n, "schedule dimension mismatch");
        self.compiled.take();
        self.stages.extend(other.stages);
    }

    /// Total number of signals across all stages.
    pub fn total_signals(&self) -> usize {
        self.stages.iter().map(|s| s.matrix.popcount()).sum()
    }

    /// The departure sequence implied by this arrival sequence: the same
    /// matrices transposed, applied in reverse order (paper §V-B), marked
    /// with Eq. 2 mode. `skip_last` drops that many trailing arrival stages
    /// from the transposition — used when the root level is a dissemination
    /// barrier, whose stages require no departure (§VII-B).
    pub fn departure_reversed(&self, skip_last: usize) -> BarrierSchedule {
        assert!(
            skip_last <= self.stages.len(),
            "cannot skip {skip_last} of {} stages",
            self.stages.len()
        );
        let mut out = BarrierSchedule::new(self.n);
        let take = self.stages.len() - skip_last;
        for s in self.stages[..take].iter().rev() {
            out.push(Stage::departure(s.matrix.transpose()));
        }
        out
    }

    /// Removes stages whose matrices are entirely zero ("eliminate no-op
    /// transmission steps", §VII-C), returning how many were removed.
    pub fn strip_noop_stages(&mut self) -> usize {
        self.compiled.take();
        let before = self.stages.len();
        self.stages.retain(|s| !s.matrix.is_zero());
        before - self.stages.len()
    }

    /// ORs `other`'s stages into this schedule starting at stage
    /// `offset`, extending this schedule if needed. Both operands must
    /// agree on stage modes where they overlap. This is the "merge shorter
    /// sequences with longer ones as early as possible" operation of
    /// §VII-B: concurrent local barriers are embedded into a single global
    /// stage sequence aligned at their first stage.
    ///
    /// # Panics
    /// Panics if overlapping stages disagree on mode, or if the merged
    /// matrices would have a rank signalling itself.
    pub fn merge_overlay(&mut self, other: &BarrierSchedule, offset: usize) {
        assert_eq!(other.n, self.n, "schedule dimension mismatch");
        self.compiled.take();
        for (k, s) in other.stages.iter().enumerate() {
            let idx = offset + k;
            if idx < self.stages.len() {
                assert_eq!(
                    self.stages[idx].mode, s.mode,
                    "mode mismatch merging stage {k} at offset {offset}"
                );
                self.stages[idx].matrix.or_assign(&s.matrix);
            } else {
                // Pad with empty stages if the offset skips past the end.
                while self.stages.len() < idx {
                    self.stages.push(Stage {
                        matrix: BoolMatrix::zeros(self.n),
                        mode: s.mode,
                    });
                }
                self.stages.push(s.clone());
            }
        }
    }

    /// ORs an arrival stage given over local ranks `0..members.len()`
    /// into stage `idx`, mapping local rank `a` to global rank
    /// `members[a]` and extending the schedule with empty arrival stages
    /// as needed. Equivalent to [`Self::merge_overlay`] of a schedule
    /// holding `local.embed(n, members)`, but writes only the embedded
    /// signals — the hierarchical composer's stages are zero outside one
    /// cluster's rows, so materializing and scanning the full `n × n`
    /// embedding per tree node dominated tuning at large P.
    ///
    /// # Panics
    /// Panics if stage `idx` exists with departure mode, if `members`
    /// maps two local ranks to one global rank (a rank would signal
    /// itself), or if an index is out of range.
    pub fn or_embed_arrival(&mut self, idx: usize, local: &BoolMatrix, members: &[usize]) {
        assert_eq!(local.n(), members.len(), "local stage / member mismatch");
        self.compiled.take();
        while self.stages.len() <= idx {
            self.stages.push(Stage::arrival(BoolMatrix::zeros(self.n)));
        }
        let stage = &mut self.stages[idx];
        assert_eq!(
            stage.mode,
            SendMode::General,
            "arrival signals merged into a departure stage {idx}"
        );
        for a in 0..local.n() {
            let src = members[a];
            for b in local.row_iter(a) {
                let dst = members[b];
                assert_ne!(src, dst, "rank {src} signals itself");
                stage.matrix.set(src, dst, true);
            }
        }
    }

    /// The ranks that participate (send or receive) in any stage.
    pub fn participants(&self) -> Vec<usize> {
        let mut active = vec![false; self.n];
        // Receivers of a stage are the union of its rows; OR the rows into
        // one scratch row instead of walking individual edges.
        let mut union: Vec<u64> = Vec::new();
        for s in &self.stages {
            union.clear();
            union.resize(self.n.div_ceil(64).max(1), 0);
            for (i, is_active) in active.iter_mut().enumerate() {
                let row = s.matrix.row(i);
                if row.iter().any(|&w| w != 0) {
                    *is_active = true;
                    for (u, &w) in union.iter_mut().zip(row) {
                        *u |= w;
                    }
                }
            }
            for (w_idx, &word) in union.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let j = w_idx * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    active[j] = true;
                }
            }
        }
        (0..self.n).filter(|&r| active[r]).collect()
    }

    /// Verifies the schedule synchronizes all `n` processes (Eq. 3).
    pub fn is_barrier(&self) -> bool {
        crate::verify::is_barrier(self)
    }
}

impl fmt::Display for BarrierSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BarrierSchedule over {} ranks, {} stages:",
            self.n,
            self.stages.len()
        )?;
        for (k, s) in self.stages.iter().enumerate() {
            let mode = match s.mode {
                SendMode::General => "arrival",
                SendMode::ReceiversAwaiting => "departure",
            };
            writeln!(f, "S{k} ({mode}, {} signals):", s.matrix.popcount())?;
            writeln!(f, "{}", s.matrix)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(n: usize) -> BarrierSchedule {
        let mut s0 = BoolMatrix::zeros(n);
        for i in 1..n {
            s0.set(i, 0, true);
        }
        let s1 = s0.transpose();
        let mut sched = BarrierSchedule::new(n);
        sched.push(Stage::arrival(s0));
        sched.push(Stage::departure(s1));
        sched
    }

    #[test]
    fn push_and_accessors() {
        let sched = linear(4);
        assert_eq!(sched.n(), 4);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.total_signals(), 6);
        assert_eq!(sched.stages()[0].mode, SendMode::General);
        assert_eq!(sched.stages()[1].mode, SendMode::ReceiversAwaiting);
    }

    #[test]
    #[should_panic(expected = "signals itself")]
    fn self_signal_rejected() {
        let mut sched = BarrierSchedule::new(3);
        let mut m = BoolMatrix::zeros(3);
        m.set(1, 1, true);
        sched.push(Stage::arrival(m));
    }

    #[test]
    fn departure_reversed_transposes_in_reverse() {
        let mut sched = BarrierSchedule::new(4);
        let a = BoolMatrix::from_edges(4, &[(1, 0), (3, 2)]);
        let b = BoolMatrix::from_edges(4, &[(2, 0)]);
        sched.push(Stage::arrival(a.clone()));
        sched.push(Stage::arrival(b.clone()));
        let dep = sched.departure_reversed(0);
        assert_eq!(dep.len(), 2);
        assert_eq!(dep.stages()[0].matrix, b.transpose());
        assert_eq!(dep.stages()[1].matrix, a.transpose());
        assert!(dep
            .stages()
            .iter()
            .all(|s| s.mode == SendMode::ReceiversAwaiting));
    }

    #[test]
    fn departure_reversed_can_skip_root_stages() {
        let mut sched = BarrierSchedule::new(4);
        let a = BoolMatrix::from_edges(4, &[(1, 0)]);
        let b = BoolMatrix::from_edges(4, &[(0, 1), (1, 0)]); // "root dissemination"
        sched.push(Stage::arrival(a.clone()));
        sched.push(Stage::arrival(b));
        let dep = sched.departure_reversed(1);
        assert_eq!(dep.len(), 1);
        assert_eq!(dep.stages()[0].matrix, a.transpose());
    }

    #[test]
    fn strip_noop_removes_empty_stages() {
        let mut sched = BarrierSchedule::new(3);
        sched.push(Stage::arrival(BoolMatrix::zeros(3)));
        sched.push(Stage::arrival(BoolMatrix::from_edges(3, &[(1, 0)])));
        sched.push(Stage::arrival(BoolMatrix::zeros(3)));
        assert_eq!(sched.strip_noop_stages(), 2);
        assert_eq!(sched.len(), 1);
    }

    #[test]
    fn merge_overlay_aligns_at_offset_zero() {
        // A 1-stage linear arrival merges into the first of 3 tree stages
        // (the Fig. 10 situation).
        let mut long = BarrierSchedule::new(6);
        long.push(Stage::arrival(BoolMatrix::from_edges(6, &[(1, 0)])));
        long.push(Stage::arrival(BoolMatrix::from_edges(6, &[(2, 0)])));
        long.push(Stage::arrival(BoolMatrix::from_edges(6, &[(3, 0)])));
        let mut short = BarrierSchedule::new(6);
        short.push(Stage::arrival(BoolMatrix::from_edges(6, &[(5, 4)])));
        long.merge_overlay(&short, 0);
        assert_eq!(long.len(), 3);
        assert!(
            long.stages()[0].matrix.get(5, 4),
            "short stage embedded early"
        );
        assert!(long.stages()[0].matrix.get(1, 0));
        assert!(!long.stages()[1].matrix.get(5, 4));
    }

    #[test]
    fn merge_overlay_extends_when_longer() {
        let mut a = BarrierSchedule::new(4);
        a.push(Stage::arrival(BoolMatrix::from_edges(4, &[(1, 0)])));
        let mut b = BarrierSchedule::new(4);
        b.push(Stage::arrival(BoolMatrix::from_edges(4, &[(3, 2)])));
        b.push(Stage::arrival(BoolMatrix::from_edges(4, &[(2, 0)])));
        a.merge_overlay(&b, 0);
        assert_eq!(a.len(), 2);
        assert!(a.stages()[0].matrix.get(1, 0) && a.stages()[0].matrix.get(3, 2));
        assert!(a.stages()[1].matrix.get(2, 0));
    }

    #[test]
    fn merge_overlay_with_offset_pads() {
        let mut a = BarrierSchedule::new(3);
        let mut b = BarrierSchedule::new(3);
        b.push(Stage::arrival(BoolMatrix::from_edges(3, &[(1, 0)])));
        a.merge_overlay(&b, 2);
        assert_eq!(a.len(), 3);
        assert!(a.stages()[0].matrix.is_zero());
        assert!(a.stages()[1].matrix.is_zero());
        assert!(a.stages()[2].matrix.get(1, 0));
    }

    #[test]
    #[should_panic(expected = "mode mismatch")]
    fn merge_overlay_mode_conflict_panics() {
        let mut a = BarrierSchedule::new(3);
        a.push(Stage::arrival(BoolMatrix::from_edges(3, &[(1, 0)])));
        let mut b = BarrierSchedule::new(3);
        b.push(Stage::departure(BoolMatrix::from_edges(3, &[(2, 0)])));
        a.merge_overlay(&b, 0);
    }

    #[test]
    fn or_embed_arrival_matches_merge_overlay_of_embed() {
        // A 3-rank local tree stage lifted onto global ranks {1, 4, 5} of
        // an 8-rank system, at offset 2 — via both the materializing path
        // and the direct-write path.
        let members = [1usize, 4, 5];
        let local = BoolMatrix::from_edges(3, &[(1, 0), (2, 0)]);
        let mut via_overlay = BarrierSchedule::new(8);
        let mut embedded = BarrierSchedule::new(8);
        embedded.push(Stage::arrival(local.embed(8, &members)));
        via_overlay.merge_overlay(&embedded, 2);
        let mut direct = BarrierSchedule::new(8);
        direct.or_embed_arrival(2, &local, &members);
        assert_eq!(direct.len(), 3);
        for (a, b) in direct.stages().iter().zip(via_overlay.stages()) {
            assert_eq!(a, b);
        }
        // ORing into an existing stage unions rather than replaces.
        direct.or_embed_arrival(2, &BoolMatrix::from_edges(2, &[(1, 0)]), &[6, 7]);
        assert!(direct.stages()[2].matrix.get(7, 6));
        assert!(direct.stages()[2].matrix.get(4, 1));
    }

    #[test]
    #[should_panic(expected = "departure stage")]
    fn or_embed_arrival_rejects_departure_stage() {
        let mut sched = BarrierSchedule::new(4);
        sched.push(Stage::departure(BoolMatrix::from_edges(4, &[(0, 1)])));
        sched.or_embed_arrival(0, &BoolMatrix::from_edges(2, &[(1, 0)]), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "signals itself")]
    fn or_embed_arrival_rejects_duplicate_members() {
        let mut sched = BarrierSchedule::new(4);
        sched.or_embed_arrival(0, &BoolMatrix::from_edges(2, &[(1, 0)]), &[2, 2]);
    }

    #[test]
    fn append_owned_matches_append() {
        let mut a = linear(4);
        let mut b = a.clone();
        let extra =
            BarrierSchedule::from_arrival_matrices(4, vec![BoolMatrix::from_edges(4, &[(3, 1)])]);
        a.append(&extra);
        b.append_owned(extra.clone());
        assert_eq!(a.stages(), b.stages());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn participants_lists_active_ranks() {
        let mut sched = BarrierSchedule::new(6);
        sched.push(Stage::arrival(BoolMatrix::from_edges(6, &[(1, 0), (4, 3)])));
        assert_eq!(sched.participants(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn linear_schedule_is_barrier() {
        assert!(linear(5).is_barrier());
        let mut arrival_only = BarrierSchedule::new(5);
        let mut s0 = BoolMatrix::zeros(5);
        for i in 1..5 {
            s0.set(i, 0, true);
        }
        arrival_only.push(Stage::arrival(s0));
        assert!(!arrival_only.is_barrier());
    }

    #[test]
    fn compiled_matches_row_iter() {
        let sched = linear(5);
        let c = sched.compiled();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].senders(), &[1, 2, 3, 4]);
        assert_eq!(c[0].mode, SendMode::General);
        for (k, &i) in c[0].senders().iter().enumerate() {
            let expect: Vec<usize> = sched.stages()[0].matrix.row_iter(i).collect();
            assert_eq!(c[0].targets_of(k), expect.as_slice());
        }
        assert_eq!(c[1].senders(), &[0]);
        assert_eq!(c[1].targets_of(0), &[1, 2, 3, 4]);
        assert_eq!(c[1].mode, SendMode::ReceiversAwaiting);
        let sends: Vec<(usize, Vec<usize>)> =
            c[0].sends().map(|(i, ts)| (i, ts.to_vec())).collect();
        assert_eq!(sends.len(), 4);
        assert!(sends.iter().all(|(_, ts)| ts == &[0]));
    }

    #[test]
    fn mutation_invalidates_compiled_cache() {
        let mut sched = linear(5);
        assert_eq!(sched.compiled().len(), 2);
        sched.push(Stage::arrival(BoolMatrix::from_edges(5, &[(2, 3)])));
        assert_eq!(sched.compiled().len(), 3);
        let mut overlay = BarrierSchedule::new(5);
        overlay.push(Stage::arrival(BoolMatrix::from_edges(5, &[(4, 2)])));
        sched.merge_overlay(&overlay, 2);
        assert!(sched.compiled()[2]
            .sends()
            .any(|(i, ts)| i == 4 && ts == [2]));
        let mut tail = BarrierSchedule::new(5);
        tail.push(Stage::arrival(BoolMatrix::zeros(5)));
        sched.append(&tail);
        assert_eq!(sched.compiled().len(), 4);
        sched.strip_noop_stages();
        assert_eq!(sched.compiled().len(), 3);
    }

    #[test]
    fn clone_equality_and_serde_ignore_cache() {
        let sched = linear(4);
        let _ = sched.compiled(); // populate the cache
        let copy = sched.clone();
        assert_eq!(copy, sched);
        let back = BarrierSchedule::from_value(&sched.to_value()).expect("round trip");
        assert_eq!(back, sched);
        assert!(back.is_barrier());
    }

    #[test]
    fn heap_bytes_follows_stages_and_compiled_cache() {
        let mut sched = BarrierSchedule::new(256);
        assert_eq!(sched.heap_bytes(), 0, "empty schedule holds no heap");
        let mut m = BoolMatrix::zeros(256);
        for i in 1..256 {
            m.set(i, 0, true);
        }
        sched.push(Stage::arrival(m));
        let base = sched.heap_bytes();
        // One 256×256 stage packs 256 rows × 4 words × 8 bytes of bitset.
        assert!(base >= 256 * 4 * 8, "bitset storage uncounted: {base}");
        let _ = sched.compiled();
        let with_csr = sched.heap_bytes();
        assert!(with_csr > base, "compiled CSR cache uncounted");
        // A mutation drops the CSR cache; accounting must follow.
        sched.push(Stage::arrival(BoolMatrix::zeros(256)));
        assert!(
            sched.heap_bytes() < with_csr + 256 * 4 * 8,
            "stale CSR share still counted after invalidation"
        );
    }

    #[test]
    fn display_mentions_modes() {
        let text = format!("{}", linear(3));
        assert!(text.contains("arrival"));
        assert!(text.contains("departure"));
    }
}
