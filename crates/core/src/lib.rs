//! Algorithmic model and adaptive tuner for barrier synthesis.
//!
//! This crate is the primary contribution of Meyer & Elster (IPDPS 2011),
//! rebuilt in Rust:
//!
//! * [`schedule`] — barriers as sequences of boolean incidence matrices
//!   (`S_0 … S_k`, §V-A), with the transposition/reversal and embedding
//!   operations the hierarchical composer needs;
//! * [`verify`] — the Eq. 3 knowledge-closure test that a stage sequence
//!   actually synchronizes all participants;
//! * [`algorithms`] — the paper's three component algorithms (linear,
//!   dissemination, binary tree, §V-B) plus the generalizations suggested
//!   as future work (k-ary trees, binomial tree, butterfly);
//! * [`cost`] — the layered critical-path cost model coupling schedules to
//!   measured `O`/`L` matrices via Eq. 1 / Eq. 2 (§VI);
//! * [`clustering`] — sparse-spatial-centers rank clustering and the
//!   recursive cluster tree (§VII-A);
//! * [`compose`] — the greedy hierarchical hybrid construction (§VII-B);
//! * [`codegen`] — compilation of schedules into flattened per-rank
//!   programs (the role of the paper's generated, hard-coded C barriers),
//!   plus C and Rust source emitters;
//! * [`adaptive`] — the §VIII future-work scheme: estimating when
//!   re-tuning under changed conditions amortizes over the remaining
//!   synchronizations.

pub mod adaptive;
pub mod algorithms;
pub mod clustering;
pub mod codegen;
pub mod compose;
pub mod cost;
pub mod schedule;
pub mod verify;

pub use algorithms::Algorithm;
pub use compose::{tune_hybrid, TunedBarrier, TunerConfig};
pub use cost::{
    cost_fingerprint, predict_barrier_cost, CostParams, Prediction, COST_FINGERPRINT_VERSION,
};
pub use schedule::{BarrierSchedule, Stage};
