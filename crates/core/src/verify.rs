//! Barrier verification via the Eq. 3 knowledge closure.
//!
//! "The signal pattern encoded in the sequence S₀, S₁, …, S_k represents a
//! barrier if and only if all elements of K_k are non-zero" (§V-A), where
//! `K_a = K_{a-1} + K_{a-1} · S_a` starting from the identity.

use crate::schedule::BarrierSchedule;
#[cfg(test)]
use hbar_matrix::BoolMatrix;
use hbar_matrix::{ClosureWorkspace, KnowledgeTrace};

/// True iff `schedule` synchronizes all of its processes.
pub fn is_barrier(schedule: &BarrierSchedule) -> bool {
    is_barrier_with(schedule, &mut ClosureWorkspace::new())
}

/// Allocation-free [`is_barrier`] against a caller-owned workspace, with
/// early exit once every row of the knowledge matrix saturates.
pub fn is_barrier_with(schedule: &BarrierSchedule, ws: &mut ClosureWorkspace) -> bool {
    ws.is_barrier(schedule.n(), schedule.stages().iter().map(|s| &s.matrix))
}

/// The full per-stage knowledge trace of a schedule.
pub fn trace(schedule: &BarrierSchedule) -> KnowledgeTrace {
    let mut t = KnowledgeTrace::new();
    trace_into(schedule, &mut t);
    t
}

/// Reusable-buffer mode of [`trace`]: recomputes the trace into `t`,
/// reusing every state matrix a previous trace left behind (and never
/// cloning the schedule's stage matrices).
pub fn trace_into(schedule: &BarrierSchedule, t: &mut KnowledgeTrace) {
    t.recompute(schedule.n(), schedule.stages().iter().map(|s| &s.matrix));
}

/// A human-readable explanation of why a schedule fails to be a barrier:
/// for each rank pair `(i, j)` where `j` never learns of `i`'s arrival,
/// one entry. Empty when the schedule is a valid barrier.
pub fn missing_knowledge(schedule: &BarrierSchedule) -> Vec<(usize, usize)> {
    let k = trace(schedule);
    let last = k.last();
    let mut missing = Vec::new();
    for i in 0..schedule.n() {
        for j in 0..schedule.n() {
            if !last.get(i, j) {
                missing.push((i, j));
            }
        }
    }
    missing
}

/// Checks that a schedule is a barrier *for a subset* of ranks: all
/// members' arrivals must become known to all members (non-members may be
/// untouched). Used to validate local barriers over clusters before they
/// are composed into a full-system pattern.
pub fn synchronizes_subset(schedule: &BarrierSchedule, members: &[usize]) -> bool {
    synchronizes_subset_with(schedule, members, &mut ClosureWorkspace::new())
}

/// Allocation-free [`synchronizes_subset`] against a caller-owned
/// workspace.
pub fn synchronizes_subset_with(
    schedule: &BarrierSchedule,
    members: &[usize],
    ws: &mut ClosureWorkspace,
) -> bool {
    let last = ws.closure(schedule.n(), schedule.stages().iter().map(|s| &s.matrix));
    members
        .iter()
        .all(|&i| members.iter().all(|&j| last.get(i, j)))
}

/// Counts the stages a rank actively participates in (sends or receives),
/// which is its number of communication rounds after no-op elimination.
pub fn active_stage_count(schedule: &BarrierSchedule, rank: usize) -> usize {
    schedule
        .stages()
        .iter()
        .filter(|s| s.matrix.row_popcount(rank) > 0 || s.matrix.col_any(rank))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Stage;

    fn dissemination(n: usize) -> BarrierSchedule {
        let mut sched = BarrierSchedule::new(n);
        let mut step = 1;
        while step < n {
            let mut m = BoolMatrix::zeros(n);
            for i in 0..n {
                m.set(i, (i + step) % n, true);
            }
            sched.push(Stage::arrival(m));
            step *= 2;
        }
        sched
    }

    #[test]
    fn dissemination_verifies_for_many_sizes() {
        for n in [2, 3, 4, 5, 7, 8, 9, 16, 22, 60, 64, 120] {
            assert!(is_barrier(&dissemination(n)), "n={n}");
        }
    }

    #[test]
    fn truncated_dissemination_fails_with_witnesses() {
        let mut sched = dissemination(8);
        // Remove the last stage: no longer a barrier.
        let stages: Vec<Stage> = sched.stages()[..2].to_vec();
        sched = BarrierSchedule::new(8);
        for s in stages {
            sched.push(s);
        }
        assert!(!is_barrier(&sched));
        let missing = missing_knowledge(&sched);
        assert!(!missing.is_empty());
        // After offsets 1,2 each rank knows the previous 3 ranks' arrivals;
        // rank 0's arrival cannot have reached rank 4 (distance 4 forward).
        assert!(missing.contains(&(0, 4)));
    }

    #[test]
    fn subset_synchronization() {
        // A local linear barrier over ranks {2, 5, 7} of a 9-rank system.
        let n = 9;
        let members = [2, 5, 7];
        let mut s0 = BoolMatrix::zeros(n);
        s0.set(5, 2, true);
        s0.set(7, 2, true);
        let s1 = s0.transpose();
        let mut sched = BarrierSchedule::new(n);
        sched.push(Stage::arrival(s0));
        sched.push(Stage::departure(s1));
        assert!(synchronizes_subset(&sched, &members));
        assert!(!is_barrier(&sched), "non-members are not synchronized");
        assert!(!synchronizes_subset(&sched, &[2, 5, 7, 8]));
    }

    #[test]
    fn active_stage_count_ignores_idle_stages() {
        let n = 4;
        let mut sched = BarrierSchedule::new(n);
        sched.push(Stage::arrival(BoolMatrix::from_edges(n, &[(1, 0)])));
        sched.push(Stage::arrival(BoolMatrix::from_edges(n, &[(2, 0)])));
        sched.push(Stage::arrival(BoolMatrix::from_edges(n, &[(3, 2)])));
        assert_eq!(active_stage_count(&sched, 0), 2);
        assert_eq!(active_stage_count(&sched, 1), 1);
        assert_eq!(active_stage_count(&sched, 2), 2);
        assert_eq!(active_stage_count(&sched, 3), 1);
    }

    #[test]
    fn empty_schedule_is_barrier_only_for_single_rank() {
        assert!(is_barrier(&BarrierSchedule::new(1)));
        assert!(!is_barrier(&BarrierSchedule::new(2)));
    }

    #[test]
    fn workspace_variants_match_plain_ones() {
        let mut ws = ClosureWorkspace::new();
        let mut t = KnowledgeTrace::new();
        for n in [2, 8, 60, 120] {
            let full = dissemination(n);
            let mut truncated = BarrierSchedule::new(n);
            for s in &full.stages()[..full.len() - 1] {
                truncated.push(s.clone());
            }
            for sched in [&full, &truncated] {
                assert_eq!(is_barrier_with(sched, &mut ws), is_barrier(sched));
                trace_into(sched, &mut t);
                assert_eq!(t.last(), trace(sched).last());
                let members: Vec<usize> = (0..n).step_by(3).collect();
                assert_eq!(
                    synchronizes_subset_with(sched, &members, &mut ws),
                    synchronizes_subset(sched, &members)
                );
            }
        }
    }
}
