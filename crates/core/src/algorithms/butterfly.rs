//! Butterfly (pairwise-exchange) barrier (extension).
//!
//! For `p = 2^m` participants, stage `s` pairs each rank `i` with
//! `i XOR 2^s`; both send, so after `m` stages everyone holds complete
//! knowledge — like dissemination, no departure phase is needed. Compared
//! to dissemination it doubles per-stage traffic on the same links but
//! keeps exchanges symmetric, which some fabrics reward; the cost model
//! decides whether that is ever profitable here.

use hbar_matrix::BoolMatrix;

/// All stages of the butterfly barrier over local ranks `0..p`.
/// Returns no stages when `p < 2`.
///
/// # Panics
/// Panics if `p` is not a power of two (use
/// [`Algorithm::applicable`](crate::Algorithm::applicable) to pre-check).
pub fn butterfly_full(p: usize) -> Vec<BoolMatrix> {
    if p < 2 {
        return Vec::new();
    }
    assert!(
        p.is_power_of_two(),
        "butterfly requires a power-of-two participant count, got {p}"
    );
    let mut stages = Vec::new();
    let mut bit = 1usize;
    while bit < p {
        let mut m = BoolMatrix::zeros(p);
        for i in 0..p {
            m.set(i, i ^ bit, true);
        }
        stages.push(m);
        bit <<= 1;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::knowledge_closure;

    #[test]
    fn stages_are_symmetric_exchanges() {
        for stage in butterfly_full(8) {
            assert_eq!(stage, stage.transpose());
            for i in 0..8 {
                assert_eq!(stage.row_popcount(i), 1);
            }
        }
    }

    #[test]
    fn synchronizes_fully_without_departure() {
        for p in [2, 4, 8, 16, 64] {
            let k = knowledge_closure(p, &butterfly_full(p));
            assert!(k.is_all_true(), "p={p}");
        }
    }

    #[test]
    fn stage_count_is_log2() {
        assert_eq!(butterfly_full(2).len(), 1);
        assert_eq!(butterfly_full(16).len(), 4);
        assert_eq!(butterfly_full(128).len(), 7);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        butterfly_full(6);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(butterfly_full(0).is_empty());
        assert!(butterfly_full(1).is_empty());
    }
}
