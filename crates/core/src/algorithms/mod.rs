//! Component barrier algorithms in incidence-matrix form.
//!
//! §V-B of the paper selects three building blocks spanning the design
//! space: the *linear* barrier (simplicity), the *binary tree* barrier
//! (the widely used hierarchical method, Fig. 4), and the *dissemination*
//! barrier (participant-count neutral, no explicit departure phase).
//! The paper's future work asks to "generalize … with respect to
//! algorithms employed as components"; we add k-ary trees and the
//! butterfly (pairwise-exchange) pattern.
//!
//! Every generator produces **arrival phases** over a local index space
//! `0..p` with local rank 0 as the root, and is lifted onto global ranks
//! with [`Algorithm::arrival_embedded`]. Departure phases are always
//! derived by the schedule-level transposition (see
//! [`BarrierSchedule::departure_reversed`]); algorithms that synchronize
//! fully in their arrival phases ([`Algorithm::needs_departure`] == false)
//! skip it when used standalone or at the root of a hierarchy.

mod butterfly;
mod dissemination;
mod kary;
mod linear;
mod tree;

pub use butterfly::butterfly_full;
pub use dissemination::{dissemination_full, nway_dissemination_full};
pub use kary::kary_arrival;
pub use linear::linear_arrival;
pub use tree::tree_arrival;

use crate::schedule::{BarrierSchedule, Stage};
use hbar_matrix::BoolMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered set of global ranks an algorithm instance runs over; the
/// first member acts as the root/representative.
pub type RankSet = Vec<usize>;

/// The component algorithms available to the tuner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// All ranks signal a master; the master signals everyone back (Fig. 2).
    Linear,
    /// The textbook binary-tree barrier of Fig. 4: pairs combine with
    /// doubling strides, `⌈log₂ p⌉` arrival stages (binomial structure).
    Tree,
    /// `⌈log₂ p⌉` stages of `i → (i + 2^s) mod p` (Fig. 3). Arrival phases
    /// alone synchronize everyone; no departure needed standalone.
    Dissemination,
    /// Heap-shaped k-ary tree reduction (extension; `KAry(2)` is the
    /// pointer-heap binary tree, distinct from [`Algorithm::Tree`]'s
    /// stride-doubling pairing).
    KAry(usize),
    /// Pairwise exchange on hypercube edges (extension; power-of-two
    /// participant counts only). Fully synchronizing like dissemination.
    Butterfly,
    /// n-way dissemination from Hoefler et al.'s survey (the paper's
    /// reference [7]): `⌈log_w P⌉` stages of `w − 1` signals each
    /// (extension; `NWay(2)` coincides with [`Algorithm::Dissemination`]).
    NWay(usize),
}

impl Algorithm {
    /// The paper's three building blocks, in its order of presentation.
    pub const PAPER_SET: [Algorithm; 3] =
        [Algorithm::Linear, Algorithm::Dissemination, Algorithm::Tree];

    /// The extended candidate set including the future-work algorithms.
    pub fn extended_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Linear,
            Algorithm::Dissemination,
            Algorithm::Tree,
            Algorithm::KAry(2),
            Algorithm::KAry(4),
            Algorithm::Butterfly,
            Algorithm::NWay(3),
            Algorithm::NWay(4),
        ]
    }

    /// One-letter tag used in figures ("D", "T", "L") and derived labels.
    pub fn tag(&self) -> String {
        match self {
            Algorithm::Linear => "L".into(),
            Algorithm::Tree => "T".into(),
            Algorithm::Dissemination => "D".into(),
            Algorithm::KAry(k) => format!("K{k}"),
            Algorithm::Butterfly => "B".into(),
            Algorithm::NWay(w) => format!("D{w}"),
        }
    }

    /// Whether this algorithm can be generated for `p` participants.
    pub fn applicable(&self, p: usize) -> bool {
        match self {
            Algorithm::Butterfly => p.is_power_of_two(),
            Algorithm::KAry(k) => *k >= 2,
            Algorithm::NWay(w) => *w >= 2,
            _ => true,
        }
    }

    /// Whether a departure phase is required for non-participants of the
    /// arrival root to learn of completion. Dissemination and butterfly
    /// leave *every* participant fully informed after arrival.
    pub fn needs_departure(&self) -> bool {
        !matches!(
            self,
            Algorithm::Dissemination | Algorithm::Butterfly | Algorithm::NWay(_)
        )
    }

    /// Arrival-phase matrices over local ranks `0..p` (root = 0).
    ///
    /// # Panics
    /// Panics if the algorithm is not applicable to `p` participants.
    pub fn arrival_local(&self, p: usize) -> Vec<BoolMatrix> {
        assert!(self.applicable(p), "{self:?} not applicable to p={p}");
        match self {
            Algorithm::Linear => linear_arrival(p),
            Algorithm::Tree => tree_arrival(p),
            Algorithm::Dissemination => dissemination_full(p),
            Algorithm::KAry(k) => kary_arrival(p, *k),
            Algorithm::Butterfly => butterfly_full(p),
            Algorithm::NWay(w) => nway_dissemination_full(p, *w),
        }
    }

    /// Arrival-phase matrices over global ranks, for the participant set
    /// `members` embedded in an `n`-rank system (root = `members[0]`).
    pub fn arrival_embedded(&self, n: usize, members: &[usize]) -> Vec<BoolMatrix> {
        self.arrival_local(members.len())
            .into_iter()
            .map(|m| m.embed(n, members))
            .collect()
    }

    /// A complete standalone barrier schedule for `members` within an
    /// `n`-rank system: arrival phases plus (if needed) the transposed
    /// departure phases in reverse order.
    pub fn full_schedule(&self, n: usize, members: &[usize]) -> BarrierSchedule {
        let mut sched = BarrierSchedule::new(n);
        for m in self.arrival_embedded(n, members) {
            sched.push(Stage::arrival(m));
        }
        if self.needs_departure() {
            let dep = sched.departure_reversed(0);
            sched.append(&dep);
        }
        sched
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Linear => write!(f, "linear"),
            Algorithm::Tree => write!(f, "tree"),
            Algorithm::Dissemination => write!(f, "dissemination"),
            Algorithm::KAry(k) => write!(f, "{k}-ary tree"),
            Algorithm::Butterfly => write!(f, "butterfly"),
            Algorithm::NWay(w) => write!(f, "{w}-way dissemination"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn all_algorithms_yield_valid_barriers() {
        for p in [1usize, 2, 3, 4, 5, 8, 13, 22, 32] {
            for alg in Algorithm::extended_set() {
                if !alg.applicable(p) {
                    continue;
                }
                let members: Vec<usize> = (0..p).collect();
                let sched = alg.full_schedule(p, &members);
                assert!(
                    verify::is_barrier(&sched),
                    "{alg} is not a barrier for p={p}:\n{sched}"
                );
            }
        }
    }

    #[test]
    fn subset_barriers_synchronize_members_only() {
        let members = vec![3, 1, 6, 9];
        for alg in [
            Algorithm::Linear,
            Algorithm::Tree,
            Algorithm::Dissemination,
            Algorithm::Butterfly,
        ] {
            let sched = alg.full_schedule(12, &members);
            assert!(verify::synchronizes_subset(&sched, &members), "{alg}");
            assert!(
                !verify::is_barrier(&sched),
                "{alg} must not touch outsiders"
            );
        }
    }

    #[test]
    fn stage_counts_match_paper() {
        // Linear: 2 stages. Tree: 2·⌈log₂p⌉. Dissemination: ⌈log₂p⌉.
        let members: Vec<usize> = (0..22).collect();
        assert_eq!(Algorithm::Linear.full_schedule(22, &members).len(), 2);
        assert_eq!(Algorithm::Tree.full_schedule(22, &members).len(), 10);
        assert_eq!(
            Algorithm::Dissemination.full_schedule(22, &members).len(),
            5
        );
        let m64: Vec<usize> = (0..64).collect();
        assert_eq!(Algorithm::Dissemination.full_schedule(64, &m64).len(), 6);
        assert_eq!(Algorithm::Butterfly.full_schedule(64, &m64).len(), 6);
    }

    #[test]
    fn butterfly_rejects_non_powers_of_two() {
        assert!(!Algorithm::Butterfly.applicable(6));
        assert!(Algorithm::Butterfly.applicable(8));
    }

    #[test]
    fn paper_set_is_d_t_l() {
        let tags: Vec<String> = Algorithm::PAPER_SET.iter().map(|a| a.tag()).collect();
        assert_eq!(tags, vec!["L", "D", "T"]);
    }

    #[test]
    fn signal_counts_linear_vs_tree() {
        // Linear sends 2(p−1) signals; tree also sends 2(p−1): every
        // non-root has exactly one parent edge, transposed once.
        let members: Vec<usize> = (0..16).collect();
        assert_eq!(
            Algorithm::Linear
                .full_schedule(16, &members)
                .total_signals(),
            30
        );
        assert_eq!(
            Algorithm::Tree.full_schedule(16, &members).total_signals(),
            30
        );
        // Dissemination sends p·⌈log₂p⌉.
        assert_eq!(
            Algorithm::Dissemination
                .full_schedule(16, &members)
                .total_signals(),
            16 * 4
        );
    }

    #[test]
    fn single_member_is_empty_schedule() {
        for alg in Algorithm::extended_set() {
            let sched = alg.full_schedule(5, &[2]);
            assert_eq!(sched.total_signals(), 0, "{alg}");
        }
    }
}
