//! The linear barrier (Fig. 2 of the paper).
//!
//! "The linear barrier uses a master rank to count arrivals, and signal
//! departure to every rank when the count is complete." Its arrival phase
//! is a single stage in which every non-master signals the master.

use hbar_matrix::BoolMatrix;

/// Arrival phase of the linear barrier over local ranks `0..p`, master 0:
/// one stage, or none when `p < 2`.
pub fn linear_arrival(p: usize) -> Vec<BoolMatrix> {
    if p < 2 {
        return Vec::new();
    }
    let mut s0 = BoolMatrix::zeros(p);
    for i in 1..p {
        s0.set(i, 0, true);
    }
    vec![s0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_fig2() {
        // Figure 2, |P| = 4: rows 1..3 have a single 1 in column 0.
        let stages = linear_arrival(4);
        assert_eq!(stages.len(), 1);
        let expected = BoolMatrix::from_rows(&[
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
            vec![true, false, false, false],
        ]);
        assert_eq!(stages[0], expected);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(linear_arrival(0).is_empty());
        assert!(linear_arrival(1).is_empty());
        let two = linear_arrival(2);
        assert_eq!(two.len(), 1);
        assert!(two[0].get(1, 0));
        assert_eq!(two[0].popcount(), 1);
    }

    #[test]
    fn signal_count_is_p_minus_one() {
        for p in 2..20 {
            assert_eq!(linear_arrival(p)[0].popcount(), p - 1);
        }
    }
}
