//! The dissemination barrier (Fig. 3 of the paper).
//!
//! "The dissemination barrier proceeds in ⌈log₂ P⌉ stages. For each stage
//! s, each participant i signals j = (i + 2^s) mod P." After the last
//! stage every participant knows of every arrival, so there is no
//! departure phase — the property that makes it attractive at the root of
//! a hierarchy (§VII-B).

use hbar_matrix::BoolMatrix;

/// All stages of the dissemination barrier over local ranks `0..p`.
/// Returns no stages when `p < 2`.
pub fn dissemination_full(p: usize) -> Vec<BoolMatrix> {
    if p < 2 {
        return Vec::new();
    }
    let mut stages = Vec::new();
    let mut step = 1usize;
    while step < p {
        let mut m = BoolMatrix::zeros(p);
        for i in 0..p {
            m.set(i, (i + step) % p, true);
        }
        stages.push(m);
        step *= 2;
    }
    stages
}

/// The n-way generalization from Hoefler et al.'s barrier survey (the
/// paper's reference [7]): in stage `s`, each rank signals the `w − 1`
/// ranks at offsets `j · wˢ` for `j = 1 … w−1`, completing in
/// `⌈log_w P⌉` stages. `w = 2` is exactly [`dissemination_full`].
///
/// Fewer stages trade against more signals per stage — on fabrics where
/// per-stage startup (`O`) dominates, a wider fan can win; the cost
/// model arbitrates.
///
/// # Panics
/// Panics if `w < 2`.
pub fn nway_dissemination_full(p: usize, w: usize) -> Vec<hbar_matrix::BoolMatrix> {
    assert!(w >= 2, "fan-out must be at least 2, got {w}");
    if p < 2 {
        return Vec::new();
    }
    let mut stages = Vec::new();
    let mut step = 1usize;
    while step < p {
        let mut m = hbar_matrix::BoolMatrix::zeros(p);
        for i in 0..p {
            for j in 1..w {
                let offset = j * step;
                if offset < p {
                    let dst = (i + offset) % p;
                    if dst != i {
                        m.set(i, dst, true);
                    }
                }
            }
        }
        stages.push(m);
        step *= w;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::knowledge_closure;

    #[test]
    fn matches_paper_fig3() {
        // Figure 3, |P| = 4: stage 0 signals i+1 mod 4, stage 1 signals i+2 mod 4.
        let stages = dissemination_full(4);
        assert_eq!(stages.len(), 2);
        let s0 = BoolMatrix::from_rows(&[
            vec![false, true, false, false],
            vec![false, false, true, false],
            vec![false, false, false, true],
            vec![true, false, false, false],
        ]);
        let s1 = BoolMatrix::from_rows(&[
            vec![false, false, true, false],
            vec![false, false, false, true],
            vec![true, false, false, false],
            vec![false, true, false, false],
        ]);
        assert_eq!(stages[0], s0);
        assert_eq!(stages[1], s1);
    }

    #[test]
    fn stage_count_is_ceil_log2() {
        for (p, expect) in [
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (64, 6),
            (120, 7),
        ] {
            assert_eq!(dissemination_full(p).len(), expect, "p={p}");
        }
    }

    #[test]
    fn arrival_alone_synchronizes_everyone() {
        for p in [2, 3, 5, 6, 7, 12, 22] {
            let k = knowledge_closure(p, &dissemination_full(p));
            assert!(k.is_all_true(), "p={p}");
        }
    }

    #[test]
    fn every_rank_sends_exactly_once_per_stage() {
        for stage in dissemination_full(11) {
            for i in 0..11 {
                assert_eq!(stage.row_popcount(i), 1);
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(dissemination_full(0).is_empty());
        assert!(dissemination_full(1).is_empty());
    }

    #[test]
    fn nway_with_w2_equals_dissemination() {
        for p in [2usize, 5, 8, 13] {
            assert_eq!(
                nway_dissemination_full(p, 2),
                dissemination_full(p),
                "p={p}"
            );
        }
    }

    #[test]
    fn nway_synchronizes_fully_in_logw_stages() {
        for (p, w, expect_stages) in [
            (9usize, 3usize, 2usize),
            (27, 3, 3),
            (16, 4, 2),
            (10, 3, 3),
            (64, 4, 3),
        ] {
            let stages = nway_dissemination_full(p, w);
            assert_eq!(stages.len(), expect_stages, "p={p} w={w}");
            let k = knowledge_closure(p, &stages);
            assert!(k.is_all_true(), "p={p} w={w}");
        }
    }

    #[test]
    fn nway_sends_at_most_w_minus_1_per_stage() {
        for stage in nway_dissemination_full(20, 4) {
            for i in 0..20 {
                assert!(stage.row_popcount(i) <= 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fan-out must be at least 2")]
    fn nway_rejects_w1() {
        nway_dissemination_full(4, 1);
    }
}
