//! Heap-shaped k-ary tree reduction (extension beyond the paper's three
//! building blocks, per its future-work call to generalize the component
//! set).
//!
//! Ranks form an implicit heap: the parent of `i > 0` is `(i − 1) / k`.
//! Arrival proceeds level by level from the deepest: all ranks at depth
//! `d` signal their parents in the same stage. Wider trees trade stage
//! count against per-parent fan-in — exactly the kind of trade-off the
//! cost model can arbitrate per cluster.

use hbar_matrix::BoolMatrix;

/// Arrival phases of the k-ary heap tree over local ranks `0..p`, root 0.
/// Returns no stages when `p < 2`.
///
/// # Panics
/// Panics if `k < 2`.
pub fn kary_arrival(p: usize, k: usize) -> Vec<BoolMatrix> {
    assert!(k >= 2, "arity must be at least 2, got {k}");
    if p < 2 {
        return Vec::new();
    }
    // Depth of each rank in the implicit heap.
    let mut depth = vec![0usize; p];
    for i in 1..p {
        depth[i] = depth[(i - 1) / k] + 1;
    }
    let max_depth = *depth.iter().max().expect("p >= 2");
    let mut stages = Vec::with_capacity(max_depth);
    for d in (1..=max_depth).rev() {
        let mut m = BoolMatrix::zeros(p);
        for (i, &di) in depth.iter().enumerate().skip(1) {
            if di == d {
                m.set(i, (i - 1) / k, true);
            }
        }
        stages.push(m);
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::knowledge_closure;

    #[test]
    fn binary_heap_seven_ranks() {
        // Heap of 7: depth 2 = {3,4,5,6} signal {1,1,2,2}; depth 1 = {1,2} signal 0.
        let stages = kary_arrival(7, 2);
        assert_eq!(stages.len(), 2);
        assert!(stages[0].get(3, 1) && stages[0].get(4, 1));
        assert!(stages[0].get(5, 2) && stages[0].get(6, 2));
        assert!(stages[1].get(1, 0) && stages[1].get(2, 0));
    }

    #[test]
    fn arrival_concentrates_knowledge_at_root() {
        for (p, k) in [(2, 2), (9, 2), (10, 3), (22, 4), (17, 8)] {
            let kmat = knowledge_closure(p, &kary_arrival(p, k));
            for i in 0..p {
                assert!(kmat.get(i, 0), "p={p} k={k}: root missing {i}");
            }
        }
    }

    #[test]
    fn wider_arity_means_fewer_stages() {
        let p = 40;
        let s2 = kary_arrival(p, 2).len();
        let s4 = kary_arrival(p, 4).len();
        let s8 = kary_arrival(p, 8).len();
        assert!(s2 > s4 && s4 > s8, "{s2} {s4} {s8}");
    }

    #[test]
    fn high_arity_degenerates_to_linear() {
        // With k ≥ p−1 every non-root is a direct child of the root.
        let stages = kary_arrival(6, 5);
        assert_eq!(stages.len(), 1);
        for i in 1..6 {
            assert!(stages[0].get(i, 0));
        }
    }

    #[test]
    #[should_panic(expected = "arity must be at least 2")]
    fn arity_one_panics() {
        kary_arrival(4, 1);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(kary_arrival(0, 2).is_empty());
        assert!(kary_arrival(1, 2).is_empty());
    }
}
