//! The binary tree barrier (Fig. 4 of the paper).
//!
//! "The tree barrier embodies the familiar textbook algorithm which
//! proceeds by collecting and dispatching signals in a binary tree
//! pattern of 2·⌈log₂ P⌉ stages." Arrival stage `s` combines blocks of
//! size `2^s`: every rank `i` with `i mod 2^(s+1) == 2^s` signals
//! `i − 2^s` (a binomial-tree reduction towards rank 0). The departure
//! phases are the transposed arrival stages in reverse order.

use hbar_matrix::BoolMatrix;

/// Arrival phases (⌈log₂ p⌉ stages) of the binary tree barrier over local
/// ranks `0..p`, root 0. Returns no stages when `p < 2`.
pub fn tree_arrival(p: usize) -> Vec<BoolMatrix> {
    if p < 2 {
        return Vec::new();
    }
    let mut stages = Vec::new();
    let mut half = 1usize;
    while half < p {
        let mut m = BoolMatrix::zeros(p);
        let mut i = half;
        while i < p {
            if i % (half * 2) == half {
                m.set(i, i - half, true);
            }
            i += half * 2;
        }
        stages.push(m);
        half *= 2;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::knowledge_closure;

    #[test]
    fn matches_paper_fig4() {
        // Figure 4, |P| = 4: S0 has 1→0 and 3→2; S1 has 2→0.
        let stages = tree_arrival(4);
        assert_eq!(stages.len(), 2);
        let s0 = BoolMatrix::from_rows(&[
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![false, false, false, false],
            vec![false, false, true, false],
        ]);
        let s1 = BoolMatrix::from_rows(&[
            vec![false, false, false, false],
            vec![false, false, false, false],
            vec![true, false, false, false],
            vec![false, false, false, false],
        ]);
        assert_eq!(stages[0], s0);
        assert_eq!(stages[1], s1);
    }

    #[test]
    fn stage_count_is_ceil_log2() {
        for (p, expect) in [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (22, 5), (64, 6)] {
            assert_eq!(tree_arrival(p).len(), expect, "p={p}");
        }
    }

    #[test]
    fn arrival_concentrates_all_knowledge_at_root() {
        for p in [2, 3, 5, 7, 8, 22, 33] {
            let k = knowledge_closure(p, &tree_arrival(p));
            for i in 0..p {
                assert!(k.get(i, 0), "p={p}: root missing arrival of {i}");
            }
        }
    }

    #[test]
    fn every_non_root_sends_exactly_once_total() {
        let p = 22;
        let stages = tree_arrival(p);
        let mut sends = vec![0usize; p];
        for s in &stages {
            for (i, _) in s.edges() {
                sends[i] += 1;
            }
        }
        assert_eq!(sends[0], 0);
        assert!(sends[1..].iter().all(|&c| c == 1), "{sends:?}");
    }

    #[test]
    fn odd_sizes_route_stragglers_correctly() {
        // p = 5: stage 0: 1→0, 3→2; stage 1: 2→0; stage 2: 4→0.
        let stages = tree_arrival(5);
        assert_eq!(stages.len(), 3);
        assert!(stages[0].get(1, 0) && stages[0].get(3, 2));
        assert!(stages[1].get(2, 0));
        assert!(stages[2].get(4, 0));
    }

    #[test]
    fn degenerate_sizes() {
        assert!(tree_arrival(0).is_empty());
        assert!(tree_arrival(1).is_empty());
    }
}
