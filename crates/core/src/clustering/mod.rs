//! Rank clustering over the topological metric (§VII-A).
//!
//! "A common, important observation … is that the layers of the
//! interconnect divide processes into closely coupled subsets, separated
//! by remote links which are orders of magnitude slower than local
//! communication." The paper discovers those subsets with sparse spatial
//! centers (SSS) clustering, which only requires a metric space — the
//! reason the topological profile is kept symmetric.

mod sss;
mod tree;

pub use sss::{
    sss_clusters, try_sss_clusters, try_sss_clusters_with, ClusterError, SssScratch,
    SSS_DEFAULT_SPARSENESS,
};
pub use tree::{build_cluster_tree, try_build_cluster_tree, ClusterNode};
