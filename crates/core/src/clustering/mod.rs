//! Rank clustering over the topological metric (§VII-A).
//!
//! "A common, important observation … is that the layers of the
//! interconnect divide processes into closely coupled subsets, separated
//! by remote links which are orders of magnitude slower than local
//! communication." The paper discovers those subsets with sparse spatial
//! centers (SSS) clustering, which only requires a metric space — the
//! reason the topological profile is kept symmetric.
//!
//! Alongside the rank clustering lives its profiling-side dual
//! ([`pairs`](self)): exact equivalence classing of *pairs* by feature
//! vector, which the decomposed profiling sweep uses to measure one
//! representative per class instead of all `|P|²` pairs.

mod pairs;
mod sss;
mod tree;

pub use pairs::{classify_pairs, splitmix64, ClassingConfig, DiagClass, PairClass, PairClassing};
pub use sss::{
    sss_clusters, try_sss_clusters, try_sss_clusters_with, ClusterError, SssScratch,
    SSS_DEFAULT_SPARSENESS,
};
pub use tree::{build_cluster_tree, try_build_cluster_tree, ClusterNode};
