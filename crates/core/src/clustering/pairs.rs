//! Feature-vector equivalence classing of profiling pairs.
//!
//! The `|P|(|P|−1)/2` pairwise benchmarks of §IV-A are embarrassingly
//! decomposable, and on hierarchical machines massively redundant: two
//! pairs whose [`PairFeatures`] agree traverse the same interconnect
//! resources and are statistically exchangeable, so measuring one
//! representative per class (plus a few validation probes) recovers the
//! full matrices. This is the Parsimon pattern — cluster the work items
//! into equivalence classes, simulate one representative per class, fan
//! the representatives out — applied to machine profiling instead of
//! network paths; it lives next to the SSS rank clustering because both
//! are "group, then treat the group by its exemplar" machinery.
//!
//! The classing itself is exact (hash on the feature vector), so the only
//! approximation error is within-class measurement scatter, which the
//! sweep estimates from the probes and bounds in its report.

use hbar_topo::features::{PairFeatureExtractor, PairFeatures, RankFeatures};
use hbar_topo::machine::MachineSpec;
use std::collections::HashMap;

/// SplitMix64 finalizer: the standard 64-bit avalanche mix. Used both for
/// decorrelating per-pair noise sub-seeds and for the deterministic
/// reservoir sampling of validation probes.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One equivalence class of off-diagonal pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct PairClass {
    /// The shared feature vector.
    pub features: PairFeatures,
    /// Rank pair measured on the class's behalf: the first member in scan
    /// order, which makes the choice deterministic and, for singleton
    /// classes, the pair itself.
    pub representative: (u32, u32),
    /// Number of member pairs (including the representative).
    pub members: usize,
    /// Deterministically reservoir-sampled members (excluding the
    /// representative) whose independent measurements estimate the
    /// within-class scatter.
    pub probes: Vec<(u32, u32)>,
}

/// One equivalence class of diagonal (`O_ii`) measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagClass {
    /// The shared feature vector.
    pub features: RankFeatures,
    /// Rank measured on the class's behalf.
    pub representative: u32,
    /// Number of member ranks.
    pub members: usize,
    /// Reservoir-sampled validation ranks (excluding the representative).
    pub probes: Vec<u32>,
}

/// The complete classing of a `P`-rank placement's profiling work.
#[derive(Clone, Debug, Default)]
pub struct PairClassing {
    /// Off-diagonal classes, in first-appearance (scan) order.
    pub pair_classes: Vec<PairClass>,
    /// Diagonal classes, in first-appearance order.
    pub diag_classes: Vec<DiagClass>,
    /// Total off-diagonal pairs scanned.
    pub total_pairs: usize,
    pair_index: HashMap<PairFeatures, u32>,
    diag_index: HashMap<RankFeatures, u32>,
}

/// Tuning knobs for [`classify_pairs`].
#[derive(Clone, Copy, Debug)]
pub struct ClassingConfig {
    /// Measure each unordered pair once and mirror (the paper's
    /// symmetric-link assumption); `false` classes ordered pairs.
    pub symmetric: bool,
    /// Validation probes sampled per class (0 disables validation; classes
    /// with fewer members than probes keep every member).
    pub probes_per_class: usize,
    /// Seed of the deterministic probe reservoir.
    pub probe_seed: u64,
}

impl Default for ClassingConfig {
    fn default() -> Self {
        ClassingConfig {
            symmetric: true,
            probes_per_class: 4,
            probe_seed: 0,
        }
    }
}

/// Deterministic reservoir sampler: keeps a uniform-without-replacement
/// sample of `capacity` items from a stream, with acceptance decisions
/// driven by SplitMix64 of the item ordinal instead of an RNG object, so
/// the same stream always yields the same sample.
struct Reservoir<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    seed: u64,
}

impl<T> Reservoir<T> {
    fn new(capacity: usize, seed: u64) -> Self {
        Reservoir {
            items: Vec::with_capacity(capacity.min(8)),
            capacity,
            seen: 0,
            seed,
        }
    }

    fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        // Classic algorithm R with a counter-mode hash as the uniform draw.
        let r = splitmix64(self.seed ^ self.seen) % self.seen;
        if (r as usize) < self.capacity {
            self.items[r as usize] = item;
        }
    }
}

impl PairClassing {
    /// Index of the class containing a pair with these features, if the
    /// classing saw one. Scatter uses this to map every matrix entry back
    /// to its class estimate.
    pub fn pair_class_index(&self, features: &PairFeatures) -> Option<usize> {
        self.pair_index.get(features).map(|&i| i as usize)
    }

    /// Index of the diagonal class with these features.
    pub fn diag_class_index(&self, features: &RankFeatures) -> Option<usize> {
        self.diag_index.get(features).map(|&i| i as usize)
    }

    /// Total measurements the clustered sweep will run (representatives
    /// plus probes, pairs plus diagonals), before any adaptive growth.
    pub fn measurement_count(&self) -> usize {
        self.pair_classes
            .iter()
            .map(|c| 1 + c.probes.len())
            .sum::<usize>()
            + self
                .diag_classes
                .iter()
                .map(|c| 1 + c.probes.len())
                .sum::<usize>()
    }

    /// `true` when every class has exactly one member — the regime in
    /// which the clustered sweep is the exhaustive sweep.
    pub fn is_singleton(&self) -> bool {
        self.pair_classes.iter().all(|c| c.members == 1)
            && self.diag_classes.iter().all(|c| c.members == 1)
    }
}

/// Classes every profiling pair (and every diagonal) of a `p`-rank
/// placement by its feature vector.
///
/// Scan order is the exhaustive sweep's enumeration order — `i` outer,
/// `j` inner — so representatives (first member seen) are deterministic
/// and independent of thread count.
///
/// # Panics
/// Panics if `p < 2` or `cores` does not cover `p` ranks.
pub fn classify_pairs(
    machine: &MachineSpec,
    cores: &[usize],
    p: usize,
    extractor: &dyn PairFeatureExtractor,
    cfg: &ClassingConfig,
) -> PairClassing {
    assert!(p >= 2, "classing needs at least two ranks, got {p}");
    assert!(
        cores.len() >= p,
        "placement covers {} ranks, need {p}",
        cores.len()
    );
    let mut classing = PairClassing::default();
    let mut reservoirs: Vec<Reservoir<(u32, u32)>> = Vec::new();
    let offer = |classing: &mut PairClassing,
                 reservoirs: &mut Vec<Reservoir<(u32, u32)>>,
                 i: usize,
                 j: usize| {
        let f = extractor.pair_features(machine, (i, j), (cores[i], cores[j]));
        classing.total_pairs += 1;
        match classing.pair_index.get(&f) {
            Some(&idx) => {
                let idx = idx as usize;
                classing.pair_classes[idx].members += 1;
                reservoirs[idx].offer((i as u32, j as u32));
            }
            None => {
                let idx = classing.pair_classes.len() as u32;
                classing.pair_index.insert(f, idx);
                classing.pair_classes.push(PairClass {
                    features: f,
                    representative: (i as u32, j as u32),
                    members: 1,
                    probes: Vec::new(),
                });
                reservoirs.push(Reservoir::new(
                    cfg.probes_per_class,
                    splitmix64(cfg.probe_seed ^ (idx as u64)),
                ));
            }
        }
    };
    if cfg.symmetric {
        for i in 0..p {
            for j in (i + 1)..p {
                offer(&mut classing, &mut reservoirs, i, j);
            }
        }
    } else {
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    offer(&mut classing, &mut reservoirs, i, j);
                }
            }
        }
    }
    for (class, reservoir) in classing.pair_classes.iter_mut().zip(reservoirs) {
        class.probes = reservoir.items;
    }

    let mut diag_reservoirs: Vec<Reservoir<u32>> = Vec::new();
    for (i, &core) in cores.iter().enumerate().take(p) {
        let f = extractor.rank_features(machine, i, core);
        match classing.diag_index.get(&f) {
            Some(&idx) => {
                let idx = idx as usize;
                classing.diag_classes[idx].members += 1;
                diag_reservoirs[idx].offer(i as u32);
            }
            None => {
                let idx = classing.diag_classes.len() as u32;
                classing.diag_index.insert(f, idx);
                classing.diag_classes.push(DiagClass {
                    features: f,
                    representative: i as u32,
                    members: 1,
                    probes: Vec::new(),
                });
                diag_reservoirs.push(Reservoir::new(
                    cfg.probes_per_class,
                    splitmix64(cfg.probe_seed ^ 0xD1A6_0000 ^ (idx as u64)),
                ));
            }
        }
    }
    for (class, reservoir) in classing.diag_classes.iter_mut().zip(diag_reservoirs) {
        class.probes = reservoir.items;
    }
    classing
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_topo::features::{ExactExtractor, TopologyExtractor};
    use hbar_topo::mapping::RankMapping;

    fn classing_for(
        machine: &MachineSpec,
        p: usize,
        extractor: &dyn PairFeatureExtractor,
        cfg: &ClassingConfig,
    ) -> PairClassing {
        let cores = RankMapping::Block.place(machine, p);
        classify_pairs(machine, &cores, p, extractor, cfg)
    }

    #[test]
    fn homogeneous_cluster_collapses_to_link_classes() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let classing = classing_for(
            &machine,
            32,
            &TopologyExtractor::default(),
            &ClassingConfig::default(),
        );
        // Two same-socket classes (socket identity is kept for
        // asymmetric-NUMA future-proofing) + cross-socket + inter-node.
        assert_eq!(classing.pair_classes.len(), 4);
        assert_eq!(classing.diag_classes.len(), 2, "one class per socket");
        assert_eq!(classing.total_pairs, 32 * 31 / 2);
        let members: usize = classing.pair_classes.iter().map(|c| c.members).sum();
        assert_eq!(members, classing.total_pairs, "partition covers all pairs");
        assert!(!classing.is_singleton());
    }

    #[test]
    fn exact_extractor_yields_singletons() {
        let machine = MachineSpec::new(2, 1, 2);
        let classing = classing_for(
            &machine,
            4,
            &ExactExtractor::default(),
            &ClassingConfig::default(),
        );
        assert_eq!(classing.pair_classes.len(), 6);
        assert!(classing.is_singleton());
        assert!(classing.pair_classes.iter().all(|c| c.probes.is_empty()));
        // Measurement count equals the exhaustive sweep's workload.
        assert_eq!(classing.measurement_count(), 6 + 4);
    }

    #[test]
    fn representative_is_first_member_in_scan_order() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let classing = classing_for(
            &machine,
            16,
            &TopologyExtractor::default(),
            &ClassingConfig::default(),
        );
        let same_socket = classing
            .pair_classes
            .iter()
            .find(|c| c.features.hop_signature == 0)
            .unwrap();
        assert_eq!(same_socket.representative, (0, 1));
        // Block placement on a dual-quad: 0..3 socket 0, 4..7 socket 1.
        let cross = classing
            .pair_classes
            .iter()
            .find(|c| c.features.socket_relation == (0, 1))
            .unwrap();
        assert_eq!(cross.representative, (0, 4));
    }

    #[test]
    fn probes_exclude_representative_and_stay_in_class() {
        let machine = MachineSpec::dual_hex_cluster(4);
        let cores = RankMapping::RoundRobin.place(&machine, 48);
        let ex = TopologyExtractor::default();
        let classing = classify_pairs(&machine, &cores, 48, &ex, &ClassingConfig::default());
        for class in &classing.pair_classes {
            assert!(class.probes.len() <= 4);
            assert!(class.probes.len() < class.members);
            for &(i, j) in &class.probes {
                assert_ne!((i, j), class.representative);
                let f = ex.pair_features(
                    &machine,
                    (i as usize, j as usize),
                    (cores[i as usize], cores[j as usize]),
                );
                assert_eq!(f, class.features, "probe left its class");
            }
        }
    }

    #[test]
    fn probe_selection_is_deterministic() {
        let machine = MachineSpec::dual_quad_cluster(8);
        let a = classing_for(
            &machine,
            64,
            &TopologyExtractor::default(),
            &ClassingConfig::default(),
        );
        let b = classing_for(
            &machine,
            64,
            &TopologyExtractor::default(),
            &ClassingConfig::default(),
        );
        assert_eq!(a.pair_classes, b.pair_classes);
        // A different probe seed moves the probes but not the classes.
        let c = classing_for(
            &machine,
            64,
            &TopologyExtractor::default(),
            &ClassingConfig {
                probe_seed: 99,
                ..ClassingConfig::default()
            },
        );
        assert_eq!(a.pair_classes.len(), c.pair_classes.len());
        assert!(a
            .pair_classes
            .iter()
            .zip(&c.pair_classes)
            .all(|(x, y)| x.representative == y.representative));
        assert!(a
            .pair_classes
            .iter()
            .zip(&c.pair_classes)
            .any(|(x, y)| x.probes != y.probes));
    }

    #[test]
    fn asymmetric_mode_classes_ordered_pairs() {
        let machine = MachineSpec::new(1, 2, 1);
        let classing = classing_for(
            &machine,
            2,
            &ExactExtractor::default(),
            &ClassingConfig {
                symmetric: false,
                ..ClassingConfig::default()
            },
        );
        assert_eq!(classing.total_pairs, 2);
        assert_eq!(classing.pair_classes.len(), 2);
    }

    #[test]
    fn class_lookup_round_trips() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let cores = RankMapping::Block.place(&machine, 16);
        let ex = TopologyExtractor::default();
        let classing = classify_pairs(&machine, &cores, 16, &ex, &ClassingConfig::default());
        for (idx, class) in classing.pair_classes.iter().enumerate() {
            assert_eq!(classing.pair_class_index(&class.features), Some(idx));
        }
        for (idx, class) in classing.diag_classes.iter().enumerate() {
            assert_eq!(classing.diag_class_index(&class.features), Some(idx));
        }
    }

    #[test]
    fn splitmix_decorrelates_adjacent_inputs() {
        // Adjacent inputs (the old `i * p + j` failure mode) must land far
        // apart: check no two of 4096 consecutive outputs share low 32 bits.
        let mut seen = std::collections::HashSet::new();
        for k in 0..4096u64 {
            assert!(seen.insert(splitmix64(k) as u32), "collision at {k}");
        }
    }
}
