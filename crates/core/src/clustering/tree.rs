//! Recursive cluster trees.
//!
//! "The outcome of the clustering process is a representation of the
//! topology as a tree, with more closely connected clusters towards the
//! leaves. The topology of our test systems result in a two-level
//! hierarchy, but the tree construction works with any number of levels."
//!
//! [`build_cluster_tree`] recursively applies SSS, re-anchoring the
//! admission threshold to each subset's own diameter. Recursion stops when
//! a subset does not split, or splits into all singletons (a uniform
//! subset has no cluster structure — SSS then makes every point a center).
//! On the paper's machines this yields node clusters at the top and socket
//! clusters inside each node — the hierarchy whose lowest level the paper
//! observes in Fig. 9 but leaves unexploited because its measured noise
//! floor hides socket-level differences; with a noise-free metric we keep
//! the extra level, and the composer works "with any number of levels".

use super::sss::{try_sss_clusters_with, ClusterError, SssScratch};
use hbar_topo::metric::DistanceMetric;

/// A node of the cluster tree. The representative of any cluster is its
/// first member (`members[0]`); child clusters preserve member order, so
/// the overall root's representative is the globally first rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterNode {
    /// Global ranks in this cluster, in discovery order.
    pub members: Vec<usize>,
    /// Sub-clusters; empty for a leaf.
    pub children: Vec<ClusterNode>,
}

impl ClusterNode {
    /// The cluster's representative rank.
    pub fn representative(&self) -> usize {
        self.members[0]
    }

    /// True if this cluster was not subdivided.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Height of the tree (a leaf has height 0).
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.height() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total number of clusters in the tree (including this one).
    pub fn cluster_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ClusterNode::cluster_count)
            .sum::<usize>()
    }

    /// Depth-first traversal, parents before children.
    pub fn walk(&self, f: &mut impl FnMut(&ClusterNode, usize)) {
        self.walk_depth(f, 0);
    }

    fn walk_depth(&self, f: &mut impl FnMut(&ClusterNode, usize), depth: usize) {
        f(self, depth);
        for c in &self.children {
            c.walk_depth(f, depth + 1);
        }
    }

    /// A compact indented rendering for logs and the Fig. 10 walkthrough.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.walk(&mut |node, depth| {
            out.push_str(&"  ".repeat(depth));
            if node.is_leaf() {
                out.push_str(&format!("leaf {:?}\n", node.members));
            } else {
                out.push_str(&format!(
                    "cluster rep={} size={} children={}\n",
                    node.representative(),
                    node.members.len(),
                    node.children.len()
                ));
            }
        });
        out
    }
}

/// Builds the cluster tree over `members` by recursive SSS clustering.
///
/// At every level the admission threshold is `sparseness × diameter(set)`
/// of the set being clustered; recursion stops when SSS does not split the
/// set further, when a cluster is a single rank, or at `max_depth`.
///
/// # Panics
/// Panics if `members` is empty or the metric yields a non-finite
/// distance (use [`try_build_cluster_tree`] for a typed error).
pub fn build_cluster_tree(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    max_depth: usize,
) -> ClusterNode {
    try_build_cluster_tree(metric, members, sparseness, max_depth).unwrap_or_else(|e| panic!("{e}"))
}

/// [`build_cluster_tree`] with metric validation. One SSS scratch is
/// threaded through the whole recursion, so the tree build allocates the
/// nearest-center arrays once regardless of depth.
pub fn try_build_cluster_tree(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    max_depth: usize,
) -> Result<ClusterNode, ClusterError> {
    let mut scratch = SssScratch::default();
    build_level(metric, members, sparseness, max_depth, &mut scratch)
}

fn build_level(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    max_depth: usize,
    scratch: &mut SssScratch,
) -> Result<ClusterNode, ClusterError> {
    assert!(!members.is_empty(), "cannot build a tree over zero members");
    let mut root = ClusterNode {
        members: members.to_vec(),
        children: Vec::new(),
    };
    if members.len() == 1 || max_depth == 0 {
        return Ok(root);
    }
    let diameter = metric.diameter_of(members);
    if diameter <= 0.0 {
        return Ok(root);
    }
    let clusters = try_sss_clusters_with(metric, members, sparseness, diameter, scratch)?;
    if clusters.len() <= 1 || clusters.len() == members.len() {
        // No split, or a uniform set degenerating into all-singletons:
        // either way there is no cluster structure to exploit.
        return Ok(root);
    }
    root.children = clusters
        .into_iter()
        .map(|cl| build_level(metric, &cl, sparseness, max_depth - 1, scratch))
        .collect::<Result<_, _>>()?;
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::SSS_DEFAULT_SPARSENESS;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn metric_for(machine: &MachineSpec, mapping: &RankMapping, p: usize) -> DistanceMetric {
        let prof = TopologyProfile::from_ground_truth_for(machine, mapping, p);
        DistanceMetric::from_costs(&prof.cost)
    }

    #[test]
    fn paper_systems_give_node_then_socket_hierarchy() {
        // With per-level diameters, 35% splits nodes at the top level and
        // sockets inside each node; socket members are then uniform.
        let machine = MachineSpec::dual_quad_cluster(4);
        let metric = metric_for(&machine, &RankMapping::Block, 32);
        let tree = build_cluster_tree(
            &metric,
            &(0..32).collect::<Vec<_>>(),
            SSS_DEFAULT_SPARSENESS,
            8,
        );
        assert_eq!(tree.children.len(), 4, "one child per node");
        for node_cluster in &tree.children {
            assert_eq!(node_cluster.members.len(), 8);
            // Inside a node, the cross-socket gap exceeds 35% of the
            // node-local diameter, so sockets split too.
            assert_eq!(node_cluster.children.len(), 2);
            for socket in &node_cluster.children {
                assert_eq!(socket.members.len(), 4);
                assert!(socket.is_leaf(), "uniform socket must not subdivide");
            }
        }
        assert_eq!(tree.height(), 2);
    }

    #[test]
    fn representative_is_first_member_everywhere() {
        let machine = MachineSpec::dual_quad_cluster(3);
        let metric = metric_for(&machine, &RankMapping::RoundRobin, 22);
        let tree = build_cluster_tree(
            &metric,
            &(0..22).collect::<Vec<_>>(),
            SSS_DEFAULT_SPARSENESS,
            8,
        );
        assert_eq!(tree.representative(), 0);
        tree.walk(&mut |node, _| {
            assert_eq!(node.representative(), node.members[0]);
            if !node.is_leaf() {
                assert_eq!(node.children[0].representative(), node.representative());
            }
        });
    }

    #[test]
    fn children_partition_parent_members() {
        let machine = MachineSpec::dual_hex_cluster(5);
        let metric = metric_for(&machine, &RankMapping::RoundRobin, 60);
        let tree = build_cluster_tree(
            &metric,
            &(0..60).collect::<Vec<_>>(),
            SSS_DEFAULT_SPARSENESS,
            8,
        );
        tree.walk(&mut |node, _| {
            if !node.is_leaf() {
                let mut union: Vec<usize> = node
                    .children
                    .iter()
                    .flat_map(|c| c.members.iter().copied())
                    .collect();
                union.sort_unstable();
                let mut expect = node.members.clone();
                expect.sort_unstable();
                assert_eq!(union, expect);
            }
        });
    }

    #[test]
    fn single_rank_tree_is_leaf() {
        let machine = MachineSpec::new(1, 1, 2);
        let metric = metric_for(&machine, &RankMapping::Block, 2);
        let tree = build_cluster_tree(&metric, &[1], 0.35, 8);
        assert!(tree.is_leaf());
        assert_eq!(tree.cluster_count(), 1);
    }

    #[test]
    fn max_depth_zero_prevents_subdivision() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let metric = metric_for(&machine, &RankMapping::Block, 16);
        let tree = build_cluster_tree(&metric, &(0..16).collect::<Vec<_>>(), 0.35, 0);
        assert!(tree.is_leaf());
    }

    #[test]
    fn render_mentions_representatives() {
        let machine = MachineSpec::dual_quad_cluster(2);
        let metric = metric_for(&machine, &RankMapping::Block, 16);
        let tree = build_cluster_tree(&metric, &(0..16).collect::<Vec<_>>(), 0.35, 8);
        let text = tree.render();
        assert!(text.contains("rep=0"));
        assert!(text.contains("leaf"));
    }
}
