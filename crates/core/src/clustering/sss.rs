//! Sparse spatial centers (SSS) clustering.
//!
//! Following Brisaboa et al. (SOFSEM 2008), as used by the paper: scan the
//! points in order; the first point becomes a center ("with rank 0 as a
//! member of the first cluster"); each subsequent point becomes a new
//! center iff its distance to every existing center exceeds
//! `sparseness × diameter`, and otherwise joins its nearest center's
//! cluster. The paper uses a sparseness parameter of 35 % of the diameter,
//! which yields node-level granularity on both of its test systems.

use hbar_topo::metric::DistanceMetric;

/// The paper's sparseness parameter: 35 % of the point-set diameter.
pub const SSS_DEFAULT_SPARSENESS: f64 = 0.35;

/// Clusters `members` (global ranks) by SSS over `metric`.
///
/// `diameter` is the reference diameter multiplied by `sparseness` to get
/// the center-admission threshold. Pass the *global* diameter to reproduce
/// the paper's two-level outcome (local distances never re-split); pass
/// `metric.diameter_of(members)` to re-scale per level and refine further.
///
/// Returns the clusters in center-discovery order; each cluster's first
/// element is its center. Every cluster is non-empty and the union is
/// exactly `members` (order within a cluster follows the input order).
///
/// # Panics
/// Panics if `members` is empty or `sparseness` is not in `(0, 1]`.
pub fn sss_clusters(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    diameter: f64,
) -> Vec<Vec<usize>> {
    assert!(!members.is_empty(), "cannot cluster zero members");
    assert!(
        sparseness > 0.0 && sparseness <= 1.0,
        "sparseness must be in (0, 1], got {sparseness}"
    );
    let threshold = sparseness * diameter;
    let mut centers: Vec<usize> = vec![members[0]];
    let mut clusters: Vec<Vec<usize>> = vec![vec![members[0]]];
    for &m in &members[1..] {
        // Nearest existing center.
        let (best_idx, best_dist) = centers
            .iter()
            .enumerate()
            .map(|(ci, &c)| (ci, metric.dist(c, m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one center");
        if best_dist > threshold {
            centers.push(m);
            clusters.push(vec![m]);
        } else {
            clusters[best_idx].push(m);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::DenseMatrix;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn cluster_machine(machine: &MachineSpec, mapping: &RankMapping, p: usize) -> Vec<Vec<usize>> {
        let prof = TopologyProfile::from_ground_truth_for(machine, mapping, p);
        let metric = DistanceMetric::from_costs(&prof.cost);
        sss_clusters(
            &metric,
            &(0..p).collect::<Vec<_>>(),
            SSS_DEFAULT_SPARSENESS,
            metric.diameter(),
        )
    }

    #[test]
    fn paper_parameters_yield_node_granularity_block() {
        // Cluster A fully populated, block mapping: 8 clusters of 8 ranks.
        let machine = MachineSpec::dual_quad_cluster(8);
        let clusters = cluster_machine(&machine, &RankMapping::Block, 64);
        assert_eq!(clusters.len(), 8);
        for (ci, cl) in clusters.iter().enumerate() {
            assert_eq!(cl.len(), 8, "cluster {ci}: {cl:?}");
            let expect: Vec<usize> = (ci * 8..(ci + 1) * 8).collect();
            assert_eq!(cl, &expect);
        }
    }

    #[test]
    fn paper_parameters_yield_node_granularity_round_robin() {
        // 22 ranks round-robin over 3 nodes (the Fig. 10 case): clusters
        // must group ranks by node, i.e. by r mod 3.
        let machine = MachineSpec::dual_quad_cluster(8);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 22);
        assert_eq!(clusters.len(), 3);
        for cl in &clusters {
            let node = cl[0] % 3;
            assert!(cl.iter().all(|&r| r % 3 == node), "{cl:?}");
        }
        // Rank 0 seeds the first cluster.
        assert_eq!(clusters[0][0], 0);
    }

    #[test]
    fn hex_cluster_node_granularity() {
        let machine = MachineSpec::dual_hex_cluster(10);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 120);
        assert_eq!(clusters.len(), 10);
        assert!(clusters.iter().all(|c| c.len() == 12));
    }

    #[test]
    fn lower_sparseness_refines_to_sockets() {
        // "Further lowering the sparseness parameter can refine the
        // clustering to cores on a chip" — on a single node, a threshold
        // below the cross-socket distance splits the two sockets.
        let machine = MachineSpec::dual_quad_cluster(1);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let metric = DistanceMetric::from_costs(&prof.cost);
        let members: Vec<usize> = (0..8).collect();
        let coarse = sss_clusters(&metric, &members, 1.0, metric.diameter());
        assert_eq!(coarse.len(), 1);
        let fine = sss_clusters(&metric, &members, 0.3, metric.diameter());
        assert_eq!(fine.len(), 2);
        assert_eq!(fine[0], vec![0, 1, 2, 3]);
        assert_eq!(fine[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn union_is_input_and_clusters_disjoint() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 27);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..27).collect::<Vec<_>>());
    }

    #[test]
    fn single_member_single_cluster() {
        let d = DenseMatrix::new(1);
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(d);
        let clusters = sss_clusters(&metric, &[0], 0.35, 0.0);
        assert_eq!(clusters, vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "cannot cluster zero members")]
    fn empty_members_panics() {
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(DenseMatrix::new(0));
        sss_clusters(&metric, &[], 0.35, 1.0);
    }

    #[test]
    #[should_panic(expected = "sparseness must be in")]
    fn invalid_sparseness_panics() {
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(DenseMatrix::new(2));
        sss_clusters(&metric, &[0, 1], 0.0, 1.0);
    }
}
