//! Sparse spatial centers (SSS) clustering.
//!
//! Following Brisaboa et al. (SOFSEM 2008), as used by the paper: scan the
//! points in order; the first point becomes a center ("with rank 0 as a
//! member of the first cluster"); each subsequent point becomes a new
//! center iff its distance to every existing center exceeds
//! `sparseness × diameter`, and otherwise joins its nearest center's
//! cluster. The paper uses a sparseness parameter of 35 % of the diameter,
//! which yields node-level granularity on both of its test systems.

use hbar_topo::metric::DistanceMetric;
use std::fmt;

/// The paper's sparseness parameter: 35 % of the point-set diameter.
pub const SSS_DEFAULT_SPARSENESS: f64 = 0.35;

/// Typed failure of SSS clustering over an invalid metric.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// A distance consulted during seeding was NaN or infinite. The
    /// admission comparison is meaningless for such metrics (and the
    /// reference `min_by` formulation panicked on NaN mid-scan).
    NonFiniteDistance { from: usize, to: usize, value: f64 },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NonFiniteDistance { from, to, value } => write!(
                f,
                "non-finite distance {value} between ranks {from} and {to}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Reusable scratch for [`try_sss_clusters_with`]: the maintained
/// nearest-center arrays. One instance threaded through a tune amortizes
/// the allocations across every level of the cluster tree.
#[derive(Clone, Debug, Default)]
pub struct SssScratch {
    /// Per point (by position in `members`): distance to its nearest
    /// admitted center so far.
    min_dist: Vec<f64>,
    /// Per point: cluster index of that nearest center. Stored as `f64`
    /// so the absorb scan updates both arrays with uniform-width selects
    /// (the index is always an exactly representable small integer).
    nearest: Vec<f64>,
    /// Decompression buffer for class-compressed metrics (see
    /// [`DistanceMetric::row_into`]); untouched for dense metrics, and
    /// reused across every center of every tree level once grown.
    row_buf: Vec<f64>,
}

/// Clusters `members` (global ranks) by SSS over `metric`.
///
/// `diameter` is the reference diameter multiplied by `sparseness` to get
/// the center-admission threshold. Pass the *global* diameter to reproduce
/// the paper's two-level outcome (local distances never re-split); pass
/// `metric.diameter_of(members)` to re-scale per level and refine further.
///
/// Returns the clusters in center-discovery order; each cluster's first
/// element is its center. Every cluster is non-empty and the union is
/// exactly `members` (order within a cluster follows the input order).
///
/// # Panics
/// Panics if `members` is empty, if `sparseness` is not in `(0, 1]`, or if
/// the metric yields a non-finite distance (use [`try_sss_clusters`] for a
/// typed error instead).
pub fn sss_clusters(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    diameter: f64,
) -> Vec<Vec<usize>> {
    try_sss_clusters(metric, members, sparseness, diameter).unwrap_or_else(|e| panic!("{e}"))
}

/// [`sss_clusters`] with metric validation: non-finite distances surface
/// as a [`ClusterError`] instead of a panic.
pub fn try_sss_clusters(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    diameter: f64,
) -> Result<Vec<Vec<usize>>, ClusterError> {
    try_sss_clusters_with(
        metric,
        members,
        sparseness,
        diameter,
        &mut SssScratch::default(),
    )
}

/// [`try_sss_clusters`] against caller-owned scratch.
///
/// The classic SSS scan recomputes the distance from each point to every
/// existing center — O(P·k) *distance evaluations per point*. Maintaining
/// each point's nearest admitted center instead makes admission a single
/// array lookup, and each admitted center costs one contiguous metric-row
/// scan over the points after it: O(P·k) work overall for k centers.
pub fn try_sss_clusters_with(
    metric: &DistanceMetric,
    members: &[usize],
    sparseness: f64,
    diameter: f64,
    scratch: &mut SssScratch,
) -> Result<Vec<Vec<usize>>, ClusterError> {
    assert!(!members.is_empty(), "cannot cluster zero members");
    assert!(
        sparseness > 0.0 && sparseness <= 1.0,
        "sparseness must be in (0, 1], got {sparseness}"
    );
    let threshold = sparseness * diameter;
    let m = members.len();
    scratch.min_dist.clear();
    scratch.min_dist.resize(m, f64::INFINITY);
    scratch.nearest.clear();
    scratch.nearest.resize(m, 0.0);
    // Consecutive-rank member sets (the whole machine, block clusters) let
    // the absorb scan walk the metric row as a plain slice.
    let consecutive = members.windows(2).all(|w| w[1] == w[0] + 1);
    let mut clusters: Vec<Vec<usize>> = vec![vec![members[0]]];
    absorb_center(metric, members, consecutive, 0, 0, scratch)?;
    for idx in 1..m {
        if scratch.min_dist[idx] > threshold {
            clusters.push(vec![members[idx]]);
            absorb_center(
                metric,
                members,
                consecutive,
                idx,
                clusters.len() - 1,
                scratch,
            )?;
        } else {
            clusters[scratch.nearest[idx] as usize].push(members[idx]);
        }
    }
    Ok(clusters)
}

/// Folds a newly admitted center into the nearest-center arrays: one
/// contiguous metric-row scan over the points after it.
///
/// The update is branchless (compare + two same-width selects) so the
/// compiler can vectorize it; non-finite distances are detected by OR-ing
/// the raw exponent bits and located by a cold re-scan only when the
/// all-ones exponent pattern appeared. `<=` in the select keeps a later
/// center on ties, matching `Iterator::min_by` (which keeps the last
/// minimal element) in the reference scan.
fn absorb_center(
    metric: &DistanceMetric,
    members: &[usize],
    consecutive: bool,
    center_pos: usize,
    cluster_idx: usize,
    scratch: &mut SssScratch,
) -> Result<(), ClusterError> {
    let center = members[center_pos];
    // Destructure so the decompression borrow (`row_buf`) and the update
    // borrows (`min_dist`/`nearest`) split disjointly.
    let SssScratch {
        min_dist,
        nearest,
        row_buf,
    } = scratch;
    let row = metric.row_into(center, row_buf);
    let tail = &members[center_pos + 1..];
    let min_dist = &mut min_dist[center_pos + 1..];
    let nearest = &mut nearest[center_pos + 1..];
    let ci = cluster_idx as f64;
    // NaN/±inf carry an all-ones exponent; OR-ing the raw bits keeps the
    // check off the critical path (a false positive — finite distances
    // whose exponents only OR to all-ones — merely triggers the re-scan).
    let mut bits_or = 0u64;
    if consecutive && !tail.is_empty() {
        let r = &row[tail[0]..tail[0] + tail.len()];
        for ((&d, md), ne) in r.iter().zip(min_dist.iter_mut()).zip(nearest.iter_mut()) {
            bits_or |= d.to_bits();
            let closer = d <= *md;
            *md = if closer { d } else { *md };
            *ne = if closer { ci } else { *ne };
        }
    } else {
        for ((&p, md), ne) in tail.iter().zip(min_dist.iter_mut()).zip(nearest.iter_mut()) {
            let d = row[p];
            bits_or |= d.to_bits();
            let closer = d <= *md;
            *md = if closer { d } else { *md };
            *ne = if closer { ci } else { *ne };
        }
    }
    if bits_or >> 52 & 0x7ff == 0x7ff {
        // Cold path: locate the first offending pair in scan order.
        for &p in tail {
            let d = row[p];
            if !d.is_finite() {
                return Err(ClusterError::NonFiniteDistance {
                    from: center,
                    to: p,
                    value: d,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbar_matrix::DenseMatrix;
    use hbar_topo::machine::MachineSpec;
    use hbar_topo::mapping::RankMapping;
    use hbar_topo::profile::TopologyProfile;

    fn cluster_machine(machine: &MachineSpec, mapping: &RankMapping, p: usize) -> Vec<Vec<usize>> {
        let prof = TopologyProfile::from_ground_truth_for(machine, mapping, p);
        let metric = DistanceMetric::from_costs(&prof.cost);
        sss_clusters(
            &metric,
            &(0..p).collect::<Vec<_>>(),
            SSS_DEFAULT_SPARSENESS,
            metric.diameter(),
        )
    }

    #[test]
    fn paper_parameters_yield_node_granularity_block() {
        // Cluster A fully populated, block mapping: 8 clusters of 8 ranks.
        let machine = MachineSpec::dual_quad_cluster(8);
        let clusters = cluster_machine(&machine, &RankMapping::Block, 64);
        assert_eq!(clusters.len(), 8);
        for (ci, cl) in clusters.iter().enumerate() {
            assert_eq!(cl.len(), 8, "cluster {ci}: {cl:?}");
            let expect: Vec<usize> = (ci * 8..(ci + 1) * 8).collect();
            assert_eq!(cl, &expect);
        }
    }

    #[test]
    fn paper_parameters_yield_node_granularity_round_robin() {
        // 22 ranks round-robin over 3 nodes (the Fig. 10 case): clusters
        // must group ranks by node, i.e. by r mod 3.
        let machine = MachineSpec::dual_quad_cluster(8);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 22);
        assert_eq!(clusters.len(), 3);
        for cl in &clusters {
            let node = cl[0] % 3;
            assert!(cl.iter().all(|&r| r % 3 == node), "{cl:?}");
        }
        // Rank 0 seeds the first cluster.
        assert_eq!(clusters[0][0], 0);
    }

    #[test]
    fn hex_cluster_node_granularity() {
        let machine = MachineSpec::dual_hex_cluster(10);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 120);
        assert_eq!(clusters.len(), 10);
        assert!(clusters.iter().all(|c| c.len() == 12));
    }

    #[test]
    fn lower_sparseness_refines_to_sockets() {
        // "Further lowering the sparseness parameter can refine the
        // clustering to cores on a chip" — on a single node, a threshold
        // below the cross-socket distance splits the two sockets.
        let machine = MachineSpec::dual_quad_cluster(1);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::Block);
        let metric = DistanceMetric::from_costs(&prof.cost);
        let members: Vec<usize> = (0..8).collect();
        let coarse = sss_clusters(&metric, &members, 1.0, metric.diameter());
        assert_eq!(coarse.len(), 1);
        let fine = sss_clusters(&metric, &members, 0.3, metric.diameter());
        assert_eq!(fine.len(), 2);
        assert_eq!(fine[0], vec![0, 1, 2, 3]);
        assert_eq!(fine[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn union_is_input_and_clusters_disjoint() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let clusters = cluster_machine(&machine, &RankMapping::RoundRobin, 27);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..27).collect::<Vec<_>>());
    }

    #[test]
    fn single_member_single_cluster() {
        let d = DenseMatrix::new(1);
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(d);
        let clusters = sss_clusters(&metric, &[0], 0.35, 0.0);
        assert_eq!(clusters, vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "cannot cluster zero members")]
    fn empty_members_panics() {
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(DenseMatrix::new(0));
        sss_clusters(&metric, &[], 0.35, 1.0);
    }

    #[test]
    #[should_panic(expected = "sparseness must be in")]
    fn invalid_sparseness_panics() {
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(DenseMatrix::new(2));
        sss_clusters(&metric, &[0, 1], 0.0, 1.0);
    }

    #[test]
    fn non_finite_distance_is_a_typed_error() {
        // Regression: the min_by formulation panicked with a bare
        // "finite distances" expect on NaN. Both NaN and inf must now
        // surface as ClusterError, naming the offending pair.
        for bad in [f64::NAN, f64::INFINITY] {
            let mut d = DenseMatrix::filled(3, 1.0);
            d[(0, 2)] = bad;
            d[(2, 0)] = bad;
            let metric = hbar_topo::metric::DistanceMetric::from_matrix(d);
            let err = try_sss_clusters(&metric, &[0, 1, 2], 0.35, 1.0)
                .expect_err("non-finite distance must not cluster");
            let ClusterError::NonFiniteDistance { from, to, value } = err;
            assert_eq!((from, to), (0, 2));
            assert!(!value.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "non-finite distance")]
    fn panicking_wrapper_reports_non_finite() {
        let mut d = DenseMatrix::filled(2, 1.0);
        d[(0, 1)] = f64::NAN;
        d[(1, 0)] = f64::NAN;
        let metric = hbar_topo::metric::DistanceMetric::from_matrix(d);
        sss_clusters(&metric, &[0, 1], 0.35, 1.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let machine = MachineSpec::dual_quad_cluster(4);
        let prof = TopologyProfile::from_ground_truth(&machine, &RankMapping::RoundRobin);
        let metric = DistanceMetric::from_costs(&prof.cost);
        let mut scratch = SssScratch::default();
        for p in [5, 32, 17, 32] {
            let members: Vec<usize> = (0..p).collect();
            let dia = metric.diameter_of(&members);
            let reused = try_sss_clusters_with(&metric, &members, 0.35, dia, &mut scratch).unwrap();
            assert_eq!(reused, sss_clusters(&metric, &members, 0.35, dia));
        }
    }
}
