//! The shared measurement core behind every performance claim.
//!
//! Hunold & Carpen-Amarie ("MPI Benchmarking Revisited") document how
//! fragile a bare median-of-N is: no dispersion, no stopping rule, no
//! record of what was run. This crate is the repo's answer, used by both
//! the `*-perf` regression harnesses in `hbar-bench` and the decomposed
//! profiling sweep in `hbar-simnet`, so the distributed sweep and the
//! perf harness share one statistics implementation:
//!
//! * [`estimators`] — robust point estimators: [`median`],
//!   [`trimmed_mean`], [`mad`] (and the plain [`mean`]). The median is
//!   bit-compatible with the sweep's historical implementation (total
//!   order via `partial_cmp`, even-length average), which is what lets
//!   `hbar-simnet::sweep` delegate here without perturbing frozen
//!   profiles.
//! * [`ci`] — nonparametric order-statistic confidence intervals for
//!   the median ([`median_ci`]) and deterministic-seeded percentile
//!   bootstrap intervals for arbitrary estimators ([`bootstrap_ci`]).
//! * [`stopping`] — the one stopping rule ([`StoppingRule`]): grow the
//!   repetition count while the relative dispersion exceeds a target,
//!   up to a bounded number of growth rounds; and the sequential
//!   measurement driver ([`measure_adaptive`]) that runs a sampling
//!   closure until the CI is tight or the rep budget is spent.
//! * [`outliers`] — MAD-based modified-z-score flagging. Outliers are
//!   *flagged and counted, never silently dropped*: the estimators are
//!   robust, so dropping would only hide evidence.
//! * [`estimate`] — [`Estimate`], the interval summary every
//!   `BENCH_*.json` row now carries instead of a bare scalar.
//! * [`manifest`] — [`RunManifest`], the reproducibility record (git
//!   revision, seed, schedule/topology descriptors, machine config, rep
//!   policy, estimator settings) stamped into every benchmark document.

pub mod ci;
pub mod estimate;
pub mod estimators;
pub mod manifest;
pub mod outliers;
pub mod stopping;

pub use ci::{bootstrap_ci, median_ci, median_ci_indices, Interval};
pub use estimate::{ratio_interval, Estimate};
pub use estimators::{mad, mean, median, trimmed_mean};
pub use manifest::{peak_rss_bytes, EstimatorSettings, HostInfo, RunManifest, SCHEMA_VERSION};
pub use outliers::{flag_outliers, outlier_count, DEFAULT_OUTLIER_THRESHOLD};
pub use stopping::{measure_adaptive, rel_spread, AdaptiveConfig, StoppingRule};
