//! The shared stopping rule and the sequential adaptive measurement
//! driver.
//!
//! Two consumers, one rule:
//!
//! * the decomposed profiling sweep (`hbar-simnet::sweep`) asks
//!   [`StoppingRule::should_grow`] after each growth round, feeding it
//!   the within-class [`rel_spread`];
//! * the `*-perf` harnesses run [`measure_adaptive`], which keeps
//!   drawing timing samples until the median's nonparametric CI is
//!   relatively tight or the rep budget is spent.

use crate::ci::median_ci;
use crate::estimate::Estimate;
use crate::estimators::median;

/// Relative dispersion of samples about their median:
/// `max_i |x_i − median| / max(|median|, ε)`; `0` for fewer than two
/// samples (a singleton has no scatter evidence).
///
/// This is, operation for operation, the spread the decomposed sweep has
/// always computed — delegating the sweep here is bit-neutral.
///
/// # Panics
/// Panics on NaN samples.
pub fn rel_spread(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = median(xs);
    let denom = m.abs().max(1e-300);
    xs.iter().map(|x| (x - m).abs() / denom).fold(0.0, f64::max)
}

/// Grow-until-tight: repetitions grow while the relative dispersion
/// exceeds `rel_tol`, for at most `max_rounds` growth rounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoppingRule {
    /// Relative dispersion above which another growth round is taken.
    pub rel_tol: f64,
    /// Bound on growth rounds (each round doubles repetitions in the
    /// sweep); `0` disables growth entirely.
    pub max_rounds: u32,
}

impl StoppingRule {
    /// Whether a sample set with dispersion `spread` warrants growing
    /// the repetition count.
    pub fn should_grow(&self, spread: f64) -> bool {
        spread > self.rel_tol
    }

    /// Whether round `round` (0-based: the round about to *start*) is
    /// still within the growth budget.
    pub fn round_allowed(&self, round: u32) -> bool {
        round <= self.max_rounds
    }
}

/// Policy of the sequential measurement driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Samples always drawn before the first convergence check.
    pub min_reps: usize,
    /// Hard budget; the driver never draws more samples than this.
    pub max_reps: usize,
    /// Stop when the median CI's half-width, relative to the median,
    /// drops to this or below.
    pub rel_half_width_target: f64,
    /// CI confidence level.
    pub confidence: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_reps: 5,
            max_reps: 100,
            rel_half_width_target: 0.05,
            confidence: 0.95,
        }
    }
}

impl AdaptiveConfig {
    /// A config with the given bounds and the default 5% half-width
    /// target at 95% confidence.
    pub fn with_budget(min_reps: usize, max_reps: usize) -> Self {
        AdaptiveConfig {
            min_reps,
            max_reps,
            ..AdaptiveConfig::default()
        }
    }
}

/// Runs `sample` repeatedly — each call returns one measurement — until
/// the nonparametric median CI is relatively tight
/// ([`AdaptiveConfig::rel_half_width_target`]) or
/// [`AdaptiveConfig::max_reps`] samples have been drawn, then summarizes
/// the whole sample into an [`Estimate`]. Growth between convergence
/// checks is geometric (half the current count again, at least one), so
/// the check overhead stays logarithmic in the final rep count.
///
/// Always terminates within `max_reps` calls to `sample`, and always
/// draws at least `min(min_reps, max_reps)` (but no fewer than one).
///
/// # Panics
/// Panics if `sample` returns NaN or `confidence ∉ (0, 1)`.
pub fn measure_adaptive<F: FnMut() -> f64>(cfg: &AdaptiveConfig, mut sample: F) -> Estimate {
    let floor = cfg.min_reps.clamp(1, cfg.max_reps.max(1));
    let mut xs: Vec<f64> = (0..floor).map(|_| sample()).collect();
    loop {
        let iv = median_ci(&xs, cfg.confidence);
        let m = median(&xs);
        if iv.rel_half_width(m) <= cfg.rel_half_width_target || xs.len() >= cfg.max_reps {
            return Estimate::from_samples(&xs, cfg.confidence, cfg.rel_half_width_target);
        }
        // Reachable only while xs.len() < max_reps, so the clamp range
        // is never empty.
        let grow = (xs.len() / 2).clamp(1, cfg.max_reps - xs.len());
        xs.extend((0..grow).map(|_| sample()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_spread_matches_sweep_arithmetic() {
        assert_eq!(rel_spread(&[5.0]), 0.0);
        // median 10, worst |dev| 2 → 0.2.
        assert_eq!(rel_spread(&[8.0, 10.0, 12.0]), 0.2);
        // Zero median is ε-guarded, not a division by zero.
        assert!(rel_spread(&[-1.0, 0.0, 1.0]).is_finite());
    }

    #[test]
    fn stopping_rule_thresholds() {
        let rule = StoppingRule {
            rel_tol: 0.05,
            max_rounds: 2,
        };
        assert!(rule.should_grow(0.0501));
        assert!(!rule.should_grow(0.05));
        assert!(rule.round_allowed(2));
        assert!(!rule.round_allowed(3));
    }

    #[test]
    fn adaptive_stops_early_on_constant_samples() {
        let mut calls = 0usize;
        let est = measure_adaptive(&AdaptiveConfig::with_budget(5, 1000), || {
            calls += 1;
            3.25
        });
        assert_eq!(calls, 5, "constant samples converge at the floor");
        assert_eq!(est.n, 5);
        assert!(est.converged);
        assert_eq!(est.median, 3.25);
    }

    #[test]
    fn adaptive_exhausts_budget_on_hopeless_noise() {
        let mut k = 0u32;
        let cfg = AdaptiveConfig {
            min_reps: 4,
            max_reps: 33,
            rel_half_width_target: 1e-9,
            confidence: 0.95,
        };
        let est = measure_adaptive(&cfg, || {
            k += 1;
            f64::from(k % 17) + 1.0
        });
        assert_eq!(est.n, 33, "budget is a hard ceiling");
        assert!(!est.converged);
    }
}
