//! Robust point estimators over `f64` samples.
//!
//! All estimators take unsorted slices and are total-order safe for any
//! finite input; NaN samples panic (a NaN measurement is a harness bug,
//! not a statistic).

/// Sorts a copy of `xs` ascending under the `partial_cmp` total order.
///
/// # Panics
/// Panics if any sample is NaN.
pub(crate) fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    v
}

/// The sample median: middle order statistic, or the mean of the two
/// middle order statistics for even lengths.
///
/// This reproduces, operation for operation, the median the decomposed
/// profiling sweep has always computed — `sort_unstable_by(partial_cmp)`
/// then `(x[n/2-1] + x[n/2]) / 2` — so delegating the sweep here is
/// bit-neutral.
///
/// # Panics
/// Panics on an empty slice or NaN samples.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of an empty sample");
    let v = sorted(xs);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// The arithmetic mean.
///
/// # Panics
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The symmetric trimmed mean: drops `⌊trim · n⌋` samples from each end
/// of the sorted sample and averages the rest. `trim` must be in
/// `[0, 0.5)`; `trim = 0` is the plain mean. If trimming would discard
/// everything (tiny `n`), falls back to the median.
///
/// # Panics
/// Panics on an empty slice, NaN samples, or `trim ∉ [0, 0.5)`.
pub fn trimmed_mean(xs: &[f64], trim: f64) -> f64 {
    assert!(!xs.is_empty(), "trimmed mean of an empty sample");
    assert!(
        (0.0..0.5).contains(&trim),
        "trim fraction {trim} outside [0, 0.5)"
    );
    let v = sorted(xs);
    let drop = (trim * v.len() as f64).floor() as usize;
    let kept = &v[drop..v.len() - drop];
    if kept.is_empty() {
        return median(xs);
    }
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// The median absolute deviation about the median (raw, no consistency
/// constant): `median(|x_i − median(x)|)`. Multiply by 1.4826 to
/// estimate a normal σ; the raw value is what the outlier flagging and
/// the BENCH documents record.
///
/// # Panics
/// Panics on an empty slice or NaN samples.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_matches_sweep_semantics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    fn trimmed_mean_closed_form() {
        // 20% of 5 trims one sample per end: mean of [2, 3, 4].
        assert_eq!(trimmed_mean(&[5.0, 1.0, 3.0, 2.0, 4.0], 0.2), 3.0);
        // trim = 0 is the mean.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 3.0], 0.0), 2.0);
    }

    #[test]
    fn mad_closed_form() {
        // median 3, |devs| = [2, 1, 0, 1, 2] → median 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[2.0, 2.0, 2.0]), 0.0);
    }
}
