//! MAD-based outlier flagging.
//!
//! Outliers are *flagged and counted, never dropped*: every estimator in
//! this crate is robust, so the flags exist to make contaminated runs
//! visible in the BENCH documents, not to launder them.

use crate::estimators::{mad, median};

/// The conventional modified-z-score cutoff (Iglewicz & Hoaglin).
pub const DEFAULT_OUTLIER_THRESHOLD: f64 = 3.5;

/// Flags each sample whose modified z-score
/// `0.6745 · |x − median| / MAD` exceeds `threshold`. With a zero MAD
/// (at least half the samples identical) any sample not equal to the
/// median is flagged — the distribution is degenerate, so *any*
/// deviation is surprising.
///
/// # Panics
/// Panics on an empty slice or NaN samples.
pub fn flag_outliers(xs: &[f64], threshold: f64) -> Vec<bool> {
    let m = median(xs);
    let d = mad(xs);
    xs.iter()
        .map(|x| {
            if d == 0.0 {
                *x != m
            } else {
                0.6745 * (x - m).abs() / d > threshold
            }
        })
        .collect()
}

/// Number of samples [`flag_outliers`] marks at the
/// [`DEFAULT_OUTLIER_THRESHOLD`].
pub fn outlier_count(xs: &[f64]) -> usize {
    flag_outliers(xs, DEFAULT_OUTLIER_THRESHOLD)
        .iter()
        .filter(|&&b| b)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_a_gross_spike_only() {
        let xs = [1.0, 1.02, 0.98, 1.01, 0.99, 50.0];
        let flags = flag_outliers(&xs, DEFAULT_OUTLIER_THRESHOLD);
        assert_eq!(flags, vec![false, false, false, false, false, true]);
        assert_eq!(outlier_count(&xs), 1);
    }

    #[test]
    fn degenerate_mad_flags_any_deviation() {
        let xs = [2.0, 2.0, 2.0, 2.0, 7.0];
        assert_eq!(outlier_count(&xs), 1);
        assert_eq!(outlier_count(&[3.0, 3.0, 3.0]), 0);
    }
}
