//! [`Estimate`] — the interval summary that replaces bare scalars in
//! every `BENCH_*.json` row.

use crate::ci::{median_ci, Interval};
use crate::estimators::{mad, median, trimmed_mean};
use crate::outliers::outlier_count;
use serde::{Deserialize, Serialize};

/// Trim fraction of the reported trimmed mean (10% per side).
pub const TRIM_FRACTION: f64 = 0.1;

/// A point estimate with dispersion, interval, and provenance counts.
/// All time-valued fields are in the units of the underlying samples
/// (seconds for the perf harnesses).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Samples the estimate was computed over.
    pub n: usize,
    /// Sample median — the headline point estimate.
    pub median: f64,
    /// Lower bound of the nonparametric median CI.
    pub ci_lo: f64,
    /// Upper bound of the nonparametric median CI.
    pub ci_hi: f64,
    /// CI confidence level (e.g. 0.95).
    pub confidence: f64,
    /// CI half-width relative to `|median|`.
    pub rel_half_width: f64,
    /// 10%-per-side trimmed mean, as a robust cross-check on the median.
    pub trimmed_mean: f64,
    /// Raw median absolute deviation (dispersion).
    pub mad: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Samples flagged by the modified-z-score rule (flagged, not
    /// dropped).
    pub outliers: usize,
    /// Whether the relative half-width met the adaptive target (false
    /// means the rep budget was exhausted first — the estimate is still
    /// honest, just wider than asked).
    pub converged: bool,
}

impl Estimate {
    /// Summarizes `xs` at `confidence`, marking convergence against
    /// `rel_half_width_target`.
    ///
    /// # Panics
    /// Panics on an empty slice or NaN samples.
    pub fn from_samples(xs: &[f64], confidence: f64, rel_half_width_target: f64) -> Estimate {
        let m = median(xs);
        let iv = median_ci(xs, confidence);
        let rel = iv.rel_half_width(m);
        Estimate {
            n: xs.len(),
            median: m,
            ci_lo: iv.lo,
            ci_hi: iv.hi,
            confidence,
            rel_half_width: rel,
            trimmed_mean: trimmed_mean(xs, TRIM_FRACTION),
            mad: mad(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            outliers: outlier_count(xs),
            converged: rel <= rel_half_width_target,
        }
    }

    /// The CI as an [`Interval`].
    pub fn interval(&self) -> Interval {
        Interval {
            lo: self.ci_lo,
            hi: self.ci_hi,
        }
    }
}

/// Conservative interval for the ratio `num / den` (e.g. a speedup
/// `before / after`) from the operands' CIs: the ratio of a positive
/// numerator interval against a positive denominator interval is
/// bracketed by `[num.lo / den.hi, num.hi / den.lo]`.
///
/// # Panics
/// Panics unless both intervals are strictly positive (timings are).
pub fn ratio_interval(num: &Estimate, den: &Estimate) -> Interval {
    assert!(
        num.ci_lo > 0.0 && den.ci_lo > 0.0,
        "ratio interval needs strictly positive operands"
    );
    Interval {
        lo: num.ci_lo / den.ci_hi,
        hi: num.ci_hi / den.ci_lo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_is_internally_consistent() {
        let xs: Vec<f64> = (1..=21).map(f64::from).collect();
        let e = Estimate::from_samples(&xs, 0.95, 0.05);
        assert_eq!(e.n, 21);
        assert_eq!(e.median, 11.0);
        assert!(e.ci_lo <= e.median && e.median <= e.ci_hi);
        assert_eq!((e.min, e.max), (1.0, 21.0));
        assert_eq!(e.outliers, 0);
        assert_eq!(e.converged, e.rel_half_width <= 0.05);
    }

    #[test]
    fn speedup_interval_brackets_the_point_ratio() {
        let before: Vec<f64> = (0..15).map(|i| 2.0 + 0.01 * f64::from(i)).collect();
        let after: Vec<f64> = (0..15).map(|i| 1.0 + 0.01 * f64::from(i)).collect();
        let b = Estimate::from_samples(&before, 0.95, 0.05);
        let a = Estimate::from_samples(&after, 0.95, 0.05);
        let iv = ratio_interval(&b, &a);
        let point = b.median / a.median;
        assert!(iv.lo <= point && point <= iv.hi);
    }
}
